"""Static analysis and lint for circuits and taint schemes.

The linter fails fast — before a multi-minute CEGAR/BMC run — on
structural problems (combinational loops, undriven signals, width
mismatches), taint-scheme inconsistencies (dangling references,
unrealisable granularities, taint-network loops), and, with SAT
backing, semantic problems (unsound custom handlers, vacuous monitors,
instrumentation that perturbs the DUV).

Entry points:

- :func:`lint` — run the rule families over a circuit (+ optional
  scheme) and return a :class:`LintReport`.
- :func:`lint_instrumented` — semantic checks over an
  :class:`~repro.taint.instrument.InstrumentedDesign`.
- ``python -m repro lint <design>`` — the CLI front-end.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.lint.diagnostics import (
    Diagnostic,
    LintError,
    LintReport,
    Severity,
    SourceMap,
)
from repro.lint.rules import (
    RULES,
    LintConfig,
    LintContext,
    LintRule,
    iter_rules,
    register_rule,
    run_rules,
)
# Importing the rule modules populates the registry.
from repro.lint.structural import find_combinational_loops, invariant_diagnostics
from repro.lint.semantic import lint_equivalence, lint_instrumented, lint_monitors
from repro.lint import dataflow as _dataflow  # noqa: F401
from repro.lint.waivers import (
    WAIVERS_FILENAME,
    WaiverError,
    find_waivers_file,
    load_waivers,
)

__all__ = [
    "Diagnostic",
    "LintConfig",
    "LintContext",
    "LintError",
    "LintReport",
    "LintRule",
    "RULES",
    "Severity",
    "SourceMap",
    "WAIVERS_FILENAME",
    "WaiverError",
    "find_combinational_loops",
    "find_waivers_file",
    "load_waivers",
    "invariant_diagnostics",
    "iter_rules",
    "lint",
    "lint_equivalence",
    "lint_instrumented",
    "lint_monitors",
    "register_rule",
    "run_rules",
]


def lint(
    circuit,
    scheme=None,
    config: Optional[LintConfig] = None,
    source_map: Optional[SourceMap] = None,
    categories: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the registered lint rules over ``circuit``.

    Args:
        circuit: The :class:`~repro.hdl.circuit.Circuit` to analyse.
        scheme: Optional :class:`~repro.taint.space.TaintScheme`;
            scheme-consistency and semantic rules run only when given.
        config: Per-run :class:`LintConfig` (rule selection, severity
            overrides, waivers, SAT budgets).
        source_map: Optional :class:`SourceMap` resolving derived
            (per-bit) names back to hierarchical source paths.
        categories: Restrict to these rule categories; by default all
            structural, dataflow and scheme rules run, plus semantic
            rules when ``config.semantic`` and a scheme is present.
    """
    config = config or LintConfig()
    if categories is None:
        categories = ["structural", "dataflow", "scheme"]
        if config.semantic and scheme is not None:
            categories.append("semantic")
    ctx = LintContext(circuit, scheme=scheme, config=config, source_map=source_map)
    return run_rules(ctx, iter_rules(categories=categories))

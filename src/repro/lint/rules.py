"""Rule framework: config, context, registry, and the lint driver.

A rule is a small object with a stable ``id`` that inspects a
:class:`LintContext` and yields :class:`Diagnostic` findings.  Rules
register themselves into a module-level registry via
:func:`register_rule`; per-run behaviour (enable/disable, severity
overrides, waivers) comes from a :class:`LintConfig`.

Writing a custom rule::

    from repro.lint import LintRule, register_rule, Severity

    @register_rule
    class NoWideAdders(LintRule):
        id = "no-wide-adders"
        severity = Severity.WARNING
        category = "structural"

        def run(self, ctx):
            for cell in ctx.circuit.cells:
                if cell.op is CellOp.ADD and cell.out.width > 64:
                    yield self.diag(ctx, f"{cell.out.width}-bit adder",
                                    path=cell.out.name, module=cell.module)
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.hdl.circuit import Circuit
from repro.lint.diagnostics import Diagnostic, LintReport, Severity, SourceMap


@dataclass
class LintConfig:
    """Per-run lint configuration.

    Attributes:
        disabled: Rule ids to skip entirely.
        enabled_only: When set, run only these rule ids.
        severity_overrides: Rule id -> severity replacing the default.
        waivers: ``(rule_id, path_glob)`` pairs; matching findings are
            kept but downgraded to INFO and marked waived (an explicit,
            visible acknowledgement rather than silence).
        semantic: Run SAT-backed semantic rules (custom-handler
            soundness checks) when a scheme is provided.
        exhaustive_bits: Custom-handler soundness is checked by
            exhaustive enumeration when the probed module's free input
            bits fit in this budget; otherwise a SAT miter is used.
        sat_conflicts: Conflict budget per semantic SAT query (UNKNOWN
            results become INFO diagnostics instead of blocking).
        equivalence_bound: BMC depth for instrumentation-equivalence
            spot checks.
    """

    disabled: Set[str] = field(default_factory=set)
    enabled_only: Optional[Set[str]] = None
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    waivers: Tuple[Tuple[str, str], ...] = ()
    semantic: bool = True
    exhaustive_bits: int = 12
    sat_conflicts: int = 50_000
    equivalence_bound: int = 3

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.disabled:
            return False
        if self.enabled_only is not None and rule_id not in self.enabled_only:
            return False
        return True

    def waived(self, diagnostic: Diagnostic) -> bool:
        path = diagnostic.path or ""
        for rule_id, pattern in self.waivers:
            if rule_id == diagnostic.rule and fnmatch.fnmatchcase(path, pattern):
                return True
        return False

    def apply(self, diagnostic: Diagnostic) -> Diagnostic:
        """Apply severity overrides and waivers to one finding."""
        override = self.severity_overrides.get(diagnostic.rule)
        if override is not None:
            diagnostic = diagnostic.with_severity(override)
        if self.waived(diagnostic):
            diagnostic = diagnostic.as_waived()
        return diagnostic


class LintContext:
    """Everything a rule may inspect, with shared lazily-built indexes."""

    def __init__(
        self,
        circuit: Circuit,
        scheme=None,
        config: Optional[LintConfig] = None,
        source_map: Optional[SourceMap] = None,
    ) -> None:
        self.circuit = circuit
        self.scheme = scheme
        self.config = config or LintConfig()
        self.source_map = source_map or SourceMap()
        self._producer: Optional[Dict[str, object]] = None
        self._consumers: Optional[Dict[str, List[object]]] = None
        self._module_paths: Optional[Set[str]] = None

    @property
    def producer_of(self) -> Dict[str, object]:
        """Output signal name -> producing cell (built from the cell list
        itself so multiply-driven signals are still observable)."""
        if self._producer is None:
            self._producer = {}
            for cell in self.circuit.cells:
                self._producer.setdefault(cell.out.name, cell)
        return self._producer

    @property
    def consumers_of(self) -> Dict[str, List[object]]:
        if self._consumers is None:
            index: Dict[str, List[object]] = {}
            for cell in self.circuit.cells:
                for sig in cell.ins:
                    index.setdefault(sig.name, []).append(cell)
            self._consumers = index
        return self._consumers

    @property
    def module_paths(self) -> Set[str]:
        if self._module_paths is None:
            self._module_paths = self.circuit.module_paths()
        return self._module_paths

    def module_exists(self, path: str) -> bool:
        """True when ``path`` is (an ancestor of) a module in the design."""
        if path in self.module_paths:
            return True
        prefix = path + "."
        return any(p.startswith(prefix) for p in self.module_paths)

    def resolve(self, name: str) -> str:
        return self.source_map.resolve(name)


class LintRule:
    """Base class for lint rules.

    Attributes:
        id: Stable rule identifier (kebab-case).
        severity: Default severity of this rule's findings.
        category: ``"structural"`` (pure graph analysis), ``"scheme"``
            (taint-scheme/circuit consistency) or ``"semantic"``
            (SAT-backed).
        invariant: True for rules enforcing :meth:`Circuit.validate`
            invariants — these are what ``validate()`` delegates to.
        requires_scheme: Rule is skipped when no scheme is in context.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    category: str = "structural"
    invariant: bool = False
    requires_scheme: bool = False
    description: str = ""

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        ctx: LintContext,
        message: str,
        path: Optional[str] = None,
        module: str = "",
        fix_hint: Optional[str] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.id,
            severity=severity or self.severity,
            message=message,
            path=path,
            module=module,
            fix_hint=fix_hint,
        )


#: The global rule registry: rule id -> rule instance.
RULES: Dict[str, LintRule] = {}


def register_rule(rule_cls):
    """Class decorator adding a rule (by instance) to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} must define an id")
    if rule.id in RULES and type(RULES[rule.id]) is not rule_cls:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    RULES[rule.id] = rule
    return rule_cls


def iter_rules(
    categories: Optional[Sequence[str]] = None,
    invariant_only: bool = False,
) -> List[LintRule]:
    rules = [
        rule for rule in RULES.values()
        if (categories is None or rule.category in categories)
        and (not invariant_only or rule.invariant)
    ]
    return sorted(rules, key=lambda r: r.id)


def run_rules(
    ctx: LintContext,
    rules: Iterable[LintRule],
) -> LintReport:
    """Run ``rules`` over ``ctx`` and collect a report."""
    report = LintReport(ctx.circuit.name, source_map=ctx.source_map)
    for rule in rules:
        if not ctx.config.rule_enabled(rule.id):
            continue
        if rule.requires_scheme and ctx.scheme is None:
            continue
        for diagnostic in rule.run(ctx):
            report.add(ctx.config.apply(diagnostic))
    report.sort()
    return report

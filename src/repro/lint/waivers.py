"""Committed waiver files.

A waiver acknowledges a known finding without silencing the rule: the
finding is kept, downgraded to INFO, and marked ``waived``.  Ad-hoc
waivers come from the CLI (``--waive RULE:GLOB``); *committed* waivers
live in a ``lint-waivers.toml`` checked into the repository so every
entry carries a reason and survives across runs and tools::

    [[waivers]]
    rule = "stuck-register"
    path = "*"
    reason = "d == q registers model symbolic state (secrets, ROMs)"

``rule`` is a lint rule id, ``path`` an ``fnmatch`` glob over the
finding's anchor path, and ``reason`` a mandatory justification — a
waiver without a reason is a config error, not a default.
"""

from __future__ import annotations

import tomllib
from pathlib import Path
from typing import List, Optional, Tuple, Union

#: Canonical file name looked up by :func:`find_waivers_file`.
WAIVERS_FILENAME = "lint-waivers.toml"


class WaiverError(ValueError):
    """A waivers file is malformed (missing keys, wrong types)."""


def load_waivers(path: Union[str, Path]) -> Tuple[Tuple[str, str], ...]:
    """Parse a ``lint-waivers.toml`` into ``LintConfig.waivers`` pairs.

    Returns ``(rule_id, path_glob)`` tuples in file order.  Raises
    :class:`WaiverError` on missing/empty ``rule``, ``path`` or
    ``reason`` keys so silent waivers cannot creep in.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        try:
            doc = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise WaiverError(f"{path}: invalid TOML: {exc}") from exc
    entries = doc.get("waivers", [])
    if not isinstance(entries, list):
        raise WaiverError(f"{path}: 'waivers' must be an array of tables")
    pairs: List[Tuple[str, str]] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise WaiverError(f"{path}: waivers[{index}] is not a table")
        for key in ("rule", "path", "reason"):
            value = entry.get(key)
            if not isinstance(value, str) or not value.strip():
                raise WaiverError(
                    f"{path}: waivers[{index}] needs a non-empty "
                    f"string {key!r}"
                )
        unknown = set(entry) - {"rule", "path", "reason"}
        if unknown:
            raise WaiverError(
                f"{path}: waivers[{index}] has unknown key(s) "
                f"{', '.join(sorted(unknown))}"
            )
        pairs.append((entry["rule"], entry["path"]))
    return tuple(pairs)


def find_waivers_file(start: Union[str, Path, None] = None) -> Optional[Path]:
    """Nearest ``lint-waivers.toml`` in ``start`` or an ancestor."""
    directory = Path(start or Path.cwd()).resolve()
    for candidate in (directory, *directory.parents):
        path = candidate / WAIVERS_FILENAME
        if path.is_file():
            return path
    return None

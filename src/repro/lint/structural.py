"""Structural lint rules: pure graph analysis over a :class:`Circuit`.

The *invariant* subset (width consistency, driver discipline,
combinational loops) is exactly what :meth:`Circuit.validate` enforces
— ``validate()`` delegates here so there is one source of truth.  The
remaining rules flag likely-unintended structure (dead logic, constant
registers, foldable cells) and, when a :class:`TaintScheme` is in
context, scheme/circuit consistency and taint-network loops that only
appear once custom module handlers wire input taints straight to
output taints.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.hdl.cells import Cell, CellOp, CellValidationError, validate_cell
from repro.hdl.circuit import Circuit
from repro.hdl.signals import SignalKind
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import (
    RULES,
    LintContext,
    LintRule,
    iter_rules,
    register_rule,
    run_rules,
)


# ---------------------------------------------------------------------------
# invariant rules (the Circuit.validate contract)
# ---------------------------------------------------------------------------

@register_rule
class WidthMismatchRule(LintRule):
    """Cell arity/width consistency (delegates to ``validate_cell``)."""

    id = "width-mismatch"
    severity = Severity.ERROR
    category = "structural"
    invariant = True
    description = "cell arity or operand widths are inconsistent"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for cell in ctx.circuit.cells:
            try:
                validate_cell(cell)
            except CellValidationError as exc:
                yield self.diag(ctx, str(exc), path=cell.out.name,
                                module=cell.module,
                                fix_hint="adjust operand widths or insert zext/sext")


@register_rule
class MultiplyDrivenRule(LintRule):
    id = "multiply-driven"
    severity = Severity.ERROR
    category = "structural"
    invariant = True
    description = "a signal is driven by more than one cell"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        seen: Dict[str, Cell] = {}
        for cell in ctx.circuit.cells:
            first = seen.get(cell.out.name)
            if first is not None:
                yield self.diag(
                    ctx,
                    f"signal driven by both {first.op.value} and {cell.op.value} cells",
                    path=cell.out.name, module=cell.module,
                    fix_hint="every WIRE/OUTPUT must have exactly one driver",
                )
            else:
                seen[cell.out.name] = cell


@register_rule
class IllegalDriverRule(LintRule):
    id = "illegal-driver"
    severity = Severity.ERROR
    category = "structural"
    invariant = True
    description = "a cell drives an INPUT or REG signal"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for cell in ctx.circuit.cells:
            if cell.out.kind in (SignalKind.INPUT, SignalKind.REG):
                yield self.diag(
                    ctx,
                    f"{cell.out.kind.value} signal is driven by a {cell.op.value} cell",
                    path=cell.out.name, module=cell.module,
                    fix_hint="registers update through their Register entry, "
                             "inputs through the environment",
                )


@register_rule
class UndrivenSignalRule(LintRule):
    id = "undriven-signal"
    severity = Severity.ERROR
    category = "structural"
    invariant = True
    description = "WIRE/OUTPUT without a driver, or dangling register wiring"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        circuit = ctx.circuit
        produced = ctx.producer_of
        registered = {reg.q.name for reg in circuit.registers}
        for sig in circuit.signals.values():
            if sig.kind in (SignalKind.WIRE, SignalKind.OUTPUT) and sig.name not in produced:
                yield self.diag(ctx, f"{sig.kind.value} has no driver",
                                path=sig.name, module=sig.module,
                                fix_hint="drive it with a cell or change its kind")
            if sig.kind is SignalKind.REG and sig.name not in registered:
                yield self.diag(ctx, "REG signal has no Register entry",
                                path=sig.name, module=sig.module,
                                fix_hint="add_register() the signal or make it a WIRE")
        for reg in circuit.registers:
            if reg.d.name not in circuit.signals:
                yield self.diag(
                    ctx,
                    f"register next-value {reg.d.name!r} is not a signal of the circuit",
                    path=reg.q.name, module=reg.q.module,
                )
        for cell in circuit.cells:
            for sig in cell.ins:
                if sig.name not in circuit.signals:
                    yield self.diag(
                        ctx,
                        f"cell references unknown signal {sig.name!r}",
                        path=cell.out.name, module=cell.module,
                    )


@register_rule
class CombLoopRule(LintRule):
    id = "comb-loop"
    severity = Severity.ERROR
    category = "structural"
    invariant = True
    description = "combinational cycle in the cell graph"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for cycle in find_combinational_loops(ctx.circuit):
            rendered = " -> ".join(ctx.resolve(name) for name in cycle + (cycle[0],))
            yield self.diag(
                ctx,
                f"combinational loop: {rendered}",
                path=cycle[0],
                fix_hint="break the cycle with a register",
            )


def find_combinational_loops(circuit: Circuit) -> List[Tuple[str, ...]]:
    """All combinational cycles (one representative per SCC).

    Runs Kahn's algorithm to peel acyclic cells, then extracts one
    concrete cycle from each strongly connected component that remains.
    """
    producer: Dict[str, int] = {}
    for idx, cell in enumerate(circuit.cells):
        producer.setdefault(cell.out.name, idx)
    consumers: Dict[int, List[int]] = {}
    indegree = [0] * len(circuit.cells)
    for idx, cell in enumerate(circuit.cells):
        for sig in cell.ins:
            src = producer.get(sig.name)
            if src is not None and src != idx:
                consumers.setdefault(src, []).append(idx)
                indegree[idx] += 1
            elif src == idx:
                # direct self-loop (out feeds its own input)
                consumers.setdefault(src, []).append(idx)
                indegree[idx] += 1
    ready = [i for i, d in enumerate(indegree) if d == 0]
    while ready:
        idx = ready.pop()
        for consumer in consumers.get(idx, ()):  # noqa: B020
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    stuck = {i for i, d in enumerate(indegree) if d > 0}
    cycles: List[Tuple[str, ...]] = []
    remaining = set(stuck)
    while remaining:
        # Walk producer edges inside the stuck set until a repeat: that
        # repeat closes one concrete cycle.
        start = next(iter(remaining))
        path: List[int] = []
        position: Dict[int, int] = {}
        node = start
        while node not in position:
            position[node] = len(path)
            path.append(node)
            node = next(
                (producer[s.name] for s in circuit.cells[node].ins
                 if producer.get(s.name) in remaining),
                None,
            )
            if node is None:
                break
        if node is None:
            remaining.difference_update(path)
            continue
        cycle_nodes = path[position[node]:]
        cycles.append(tuple(circuit.cells[i].out.name for i in reversed(cycle_nodes)))
        remaining.difference_update(path)
    return cycles


# ---------------------------------------------------------------------------
# hygiene rules (non-invariant)
# ---------------------------------------------------------------------------

@register_rule
class DeadLogicRule(LintRule):
    id = "dead-logic"
    severity = Severity.WARNING
    category = "structural"
    description = "cells that cannot reach any output or register"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        circuit = ctx.circuit
        producer = ctx.producer_of
        live: Set[str] = set()
        stack = [sig.name for sig in circuit.outputs]
        stack.extend(reg.d.name for reg in circuit.registers)
        while stack:
            name = stack.pop()
            if name in live:
                continue
            live.add(name)
            cell = producer.get(name)
            if cell is not None:
                stack.extend(sig.name for sig in cell.ins)
        dead_by_module: Dict[str, List[str]] = {}
        for cell in circuit.cells:
            if cell.out.name not in live:
                dead_by_module.setdefault(cell.module, []).append(cell.out.name)
        for module in sorted(dead_by_module):
            names = dead_by_module[module]
            examples = ", ".join(ctx.resolve(n) for n in names[:4])
            suffix = ", ..." if len(names) > 4 else ""
            yield self.diag(
                ctx,
                f"{len(names)} cell(s) drive nothing observable "
                f"({examples}{suffix})",
                path=names[0], module=module,
                fix_hint="remove the dead logic or export an output",
            )


@register_rule
class UnusedInputRule(LintRule):
    id = "unused-input"
    severity = Severity.INFO
    category = "structural"
    description = "inputs consumed by no cell and no register"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        used = set(ctx.consumers_of)
        used.update(reg.d.name for reg in ctx.circuit.registers)
        for sig in ctx.circuit.inputs:
            if sig.name not in used:
                yield self.diag(ctx, "input is never read",
                                path=sig.name, module=sig.module)


@register_rule
class ConstantFoldableRule(LintRule):
    id = "const-foldable"
    severity = Severity.INFO
    category = "structural"
    description = "non-constant cells whose inputs are all constants"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        producer = ctx.producer_of
        const_outs = {
            cell.out.name for cell in ctx.circuit.cells if cell.op is CellOp.CONST
        }
        for cell in ctx.circuit.cells:
            if cell.op is CellOp.CONST or not cell.ins:
                continue
            if all(sig.name in const_outs for sig in cell.ins):
                yield self.diag(
                    ctx,
                    f"{cell.op.value} computes a constant (all inputs are constants)",
                    path=cell.out.name, module=cell.module,
                    fix_hint="fold with repro.hdl.optimize or use a CONST cell",
                )


@register_rule
class StuckRegisterRule(LintRule):
    id = "stuck-register"
    severity = Severity.WARNING
    category = "structural"
    description = "registers whose next value is their own output"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        for reg in ctx.circuit.registers:
            if reg.d.name == reg.q.name:
                yield self.diag(
                    ctx,
                    f"register holds its reset value {reg.reset_value} forever "
                    "(d is wired to q)",
                    path=reg.q.name, module=reg.q.module,
                    fix_hint="intentional for symbolic state; waive "
                             "('stuck-register', pattern) if so",
                )


# ---------------------------------------------------------------------------
# scheme/circuit consistency rules
# ---------------------------------------------------------------------------

@register_rule
class SchemeReferenceRule(LintRule):
    id = "scheme-ref"
    severity = Severity.ERROR
    category = "scheme"
    requires_scheme = True
    description = "taint scheme references cells/registers/modules that exist"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        scheme = ctx.scheme
        producer = ctx.producer_of
        registered = {reg.q.name for reg in ctx.circuit.registers}
        for name in sorted(scheme.cell_options):
            if name not in producer:
                yield self.diag(
                    ctx, f"cell option targets unknown cell output {name!r}",
                    path=name,
                    fix_hint="cell options are keyed by the cell's output signal name",
                )
        for name in sorted(scheme.register_granularity):
            if name not in registered:
                yield self.diag(
                    ctx, f"register granularity targets unknown register {name!r}",
                    path=name,
                )
        for attr in ("blackboxes", "module_defaults", "custom_modules"):
            for path in sorted(getattr(scheme, attr)):
                if not ctx.module_exists(path):
                    yield self.diag(
                        ctx,
                        f"{attr} entry {path!r} matches no module of the design",
                        path=path,
                        fix_hint="module paths are dotted hierarchical prefixes",
                    )


@register_rule
class SchemeGranularityRule(LintRule):
    id = "scheme-granularity"
    severity = Severity.ERROR
    category = "scheme"
    requires_scheme = True
    description = "granularity/unit-level combinations that are not realisable"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.taint.space import Granularity, UnitLevel

        scheme = ctx.scheme
        for name, option in sorted(scheme.cell_options.items()):
            if option.granularity is Granularity.MODULE:
                yield self.diag(
                    ctx,
                    "module granularity on a single cell is not realisable "
                    "(register grouping happens via blackboxes)",
                    path=name,
                    fix_hint="use word granularity or blackbox the enclosing module",
                )
        for name, gran in sorted(scheme.register_granularity.items()):
            if gran is Granularity.MODULE:
                yield self.diag(
                    ctx,
                    "module granularity on a single register is not realisable",
                    path=name,
                    fix_hint="blackbox the enclosing module instead",
                )
        if scheme.unit_level is UnitLevel.GATE and scheme.custom_modules:
            for path in sorted(scheme.custom_modules):
                yield self.diag(
                    ctx,
                    "custom module handlers reference cell-level signal names, "
                    "which do not survive gate lowering",
                    path=path, severity=Severity.WARNING,
                    fix_hint="use CELL unit level with custom handlers",
                )


@register_rule
class TaintLoopRule(LintRule):
    """Combinational loops *of the taint network* (paper footnote 2).

    Blackboxed regions propagate taint along real combinational paths
    (per-output input-cone analysis), so they cannot create new loops.
    A *custom* handler, however, may read the taint of any module input
    for any module output — the taint network conservatively contains
    an edge from every signal entering the region to every signal
    leaving it.  If outside logic feeds a region output back into a
    region input combinationally, instrumentation would demand a taint
    value that depends on itself.
    """

    id = "taint-loop"
    severity = Severity.ERROR
    category = "scheme"
    requires_scheme = True
    description = "combinational cycle in the taint network"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        scheme = ctx.scheme
        if not scheme.custom_modules:
            return
        circuit = ctx.circuit
        producer = ctx.producer_of

        def region_of(module: str) -> Optional[str]:
            region = scheme.effective_region(module)
            if region is not None and region[1] == "custom":
                return region[0]
            return None

        produced_in: Dict[str, Optional[str]] = {}
        for cell in circuit.cells:
            produced_in[cell.out.name] = region_of(cell.module)
        # Taint-network adjacency: signal -> signals its taint reads.
        edges: Dict[str, Set[str]] = {}
        region_entries: Dict[str, Set[str]] = {}
        region_outputs: Dict[str, Set[str]] = {}
        consumed_outside: Set[str] = {sig.name for sig in circuit.outputs}
        for cell in circuit.cells:
            region = produced_in[cell.out.name]
            if region is None:
                edges.setdefault(cell.out.name, set()).update(
                    s.name for s in cell.ins
                )
                for sig in cell.ins:
                    if produced_in.get(sig.name) is not None:
                        consumed_outside.add(sig.name)
            else:
                for sig in cell.ins:
                    if produced_in.get(sig.name) != region and \
                            circuit.register_of(sig) is None:
                        region_entries.setdefault(region, set()).add(sig.name)
        for region in scheme.custom_modules:
            outs = region_outputs.setdefault(region, set())
            for name, reg in produced_in.items():
                if reg == region and name in consumed_outside:
                    outs.add(name)
            for out in outs:
                edges.setdefault(out, set()).update(region_entries.get(region, ()))
        # Registers cut taint cycles: drop edges out of register outputs.
        for reg in circuit.registers:
            edges.pop(reg.q.name, None)
        cycle = _find_cycle(edges)
        if cycle:
            rendered = " -> ".join(ctx.resolve(n) for n in cycle + (cycle[0],))
            yield self.diag(
                ctx,
                f"taint network has a combinational loop through a custom "
                f"module handler: {rendered}",
                path=cycle[0],
                fix_hint="break the feedback with a register or narrow the "
                         "custom region",
            )


def _find_cycle(edges: Dict[str, Set[str]]) -> Optional[Tuple[str, ...]]:
    """First cycle in a name graph (iterative colouring DFS)."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[str, int] = {}
    for root in edges:
        if colour.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[str, Iterator[str]]] = [(root, iter(sorted(edges.get(root, ()))))]
        colour[root] = GREY
        path = [root]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                state = colour.get(nxt, WHITE)
                if state == GREY:
                    idx = path.index(nxt)
                    return tuple(path[idx:])
                if state == WHITE and nxt in edges:
                    colour[nxt] = GREY
                    stack.append((nxt, iter(sorted(edges.get(nxt, ())))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                colour[node] = BLACK
                stack.pop()
                path.pop()
    return None


# ---------------------------------------------------------------------------
# entry points used by Circuit.validate and the instrumentation pass
# ---------------------------------------------------------------------------

def invariant_diagnostics(circuit: Circuit) -> List[Diagnostic]:
    """All invariant violations of ``circuit`` (Circuit.validate's core)."""
    ctx = LintContext(circuit)
    report = run_rules(ctx, iter_rules(invariant_only=True))
    return report.diagnostics


def scheme_reference_diagnostics(circuit, scheme, sources=None) -> List[Diagnostic]:
    """Warning-severity consistency check used by ``instrument()``.

    Unlike the ERROR-severity :class:`SchemeReferenceRule`, this is the
    soft variant the instrumentation pass attaches to its result:
    stale overrides and taint sources that match nothing are silently
    ignored by the pass itself, which has historically hidden typos.
    """
    ctx = LintContext(circuit, scheme=scheme)
    diagnostics: List[Diagnostic] = []
    for diag in RULES["scheme-ref"].run(ctx):
        diagnostics.append(diag.with_severity(Severity.WARNING))
    if sources is not None:
        registered = {reg.q.name for reg in circuit.registers}
        input_names = {sig.name for sig in circuit.inputs}
        for name in sorted(sources.registers):
            if name not in registered:
                diagnostics.append(Diagnostic(
                    rule="taint-source-ref", severity=Severity.WARNING,
                    message=f"taint source targets unknown register {name!r}",
                    path=name,
                    fix_hint="sources.registers is keyed by register q names",
                ))
        for name in sorted(sources.inputs):
            if name not in input_names:
                diagnostics.append(Diagnostic(
                    rule="taint-source-ref", severity=Severity.WARNING,
                    message=f"taint source targets unknown input {name!r}",
                    path=name,
                ))
    return diagnostics

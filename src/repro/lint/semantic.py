"""Semantic lint rules: SAT-backed checks via small per-region miters.

Three analyses live here, all built on the ``repro.formal`` stack:

- **Custom-handler soundness** (paper §5.4): a custom module handler is
  *unsound* when some module input can change a module output while the
  handler reports the output's taint as clean, i.e. taint is dropped on
  an information-carrying path.  Each custom region is extracted into a
  standalone combinational probe circuit; soundness is then checked per
  entering signal — by exhaustive enumeration when the probe's free
  input bits fit a budget, by a SAT miter otherwise.
- **Monitor vacuity**: a monitor output that a single symbolic-state
  frame proves constant-true (can never fire) or constant-false (fires
  unconditionally) is asserting nothing about the design.
- **Instrumentation equivalence**: a bounded spot check that the
  instrumented circuit still computes the original outputs — taint
  logic must observe the design, never perturb it.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit
from repro.hdl.lowering import lower_to_gates
from repro.hdl.signals import Signal, SignalKind
from repro.lint.diagnostics import Diagnostic, LintReport, Severity
from repro.lint.rules import LintConfig, LintContext, LintRule, register_rule


# ---------------------------------------------------------------------------
# custom-handler soundness
# ---------------------------------------------------------------------------

class RegionProbe:
    """A custom region extracted into a standalone combinational circuit.

    ``entries`` are the signals feeding the region (external wires,
    top-level inputs, and register outputs — including the region's own
    state), all re-declared as free INPUTs.  ``checked`` are the region
    outputs anything else can observe: signals consumed by outside
    cells, circuit OUTPUTs, and register next-values.  Each checked
    output gets a ``__probe.<name>`` BUF in the open region so that
    instrumenting the probe circuit forces the handler to produce a
    taint for it.
    """

    def __init__(self, circuit: Circuit, scheme, region: str) -> None:
        self.region = region
        self.entries: List[Signal] = []
        self.checked: List[str] = []

        def in_region(module: str) -> bool:
            eff = scheme.effective_region(module)
            return eff is not None and eff[0] == region and eff[1] == "custom"

        region_cells = [c for c in circuit.topo_cells() if in_region(c.module)]
        produced = {c.out.name for c in region_cells}
        consumed_outside: Set[str] = {sig.name for sig in circuit.outputs}
        for cell in circuit.cells:
            if not in_region(cell.module):
                consumed_outside.update(s.name for s in cell.ins)
        for reg in circuit.registers:
            consumed_outside.add(reg.d.name)

        self.circuit = Circuit(f"{circuit.name}.probe.{region}")
        mapped: Dict[str, Signal] = {}
        for cell in region_cells:
            for sig in cell.ins:
                if sig.name in produced or sig.name in mapped:
                    continue
                free = Signal(sig.name, sig.width, SignalKind.INPUT, module="")
                self.circuit.add_signal(free)
                mapped[sig.name] = free
                self.entries.append(free)
        for cell in region_cells:
            ins = tuple(mapped.get(s.name, s) for s in cell.ins)
            self.circuit.add_cell(
                Cell(cell.op, cell.out, ins, cell.params, module=cell.module)
            )
        for name in sorted(produced & consumed_outside):
            sig = self.circuit.signal(name)
            probe = Signal(f"__probe.{name}", sig.width, SignalKind.OUTPUT, module="")
            self.circuit.add_cell(Cell(CellOp.BUF, probe, (sig,), module=""))
            self.checked.append(name)

    @property
    def input_bits(self) -> int:
        return sum(sig.width for sig in self.entries)


def _probe_scheme(scheme, region: str):
    from repro.taint.space import TaintScheme, UnitLevel

    return TaintScheme(
        name=f"lint.{region}",
        unit_level=UnitLevel.CELL,
        default=scheme.default,
        custom_modules={region: scheme.custom_modules[region]},
    )


def _check_entry_exhaustive(
    probe: RegionProbe, design, entry: Signal
) -> Optional[Dict[str, int]]:
    """Enumerate all probe inputs; return an unsoundness witness or None.

    A witness is an input assignment plus a single-bit flip of ``entry``
    that changes some checked output whose taint evaluates to clean.
    """
    from repro.sim.simulator import Simulator

    sim = Simulator(design.circuit)
    others = [sig for sig in probe.entries if sig.name != entry.name]
    spaces = [range(1 << sig.width) for sig in others]
    for entry_value in range(1 << entry.width):
        for combo in itertools.product(*spaces):
            inputs = {sig.name: value for sig, value in zip(others, combo)}
            inputs[entry.name] = entry_value
            sim.reset()
            sim.step(inputs)
            base = {name: sim.peek(f"__probe.{name}") for name in probe.checked}
            taints = {
                name: sim.peek(design.taint_name[f"__probe.{name}"])
                for name in probe.checked
            }
            for bit in range(entry.width):
                flipped = dict(inputs)
                flipped[entry.name] = entry_value ^ (1 << bit)
                sim.reset()
                sim.step(flipped)
                for name in probe.checked:
                    if sim.peek(f"__probe.{name}") != base[name] and taints[name] == 0:
                        witness = dict(inputs)
                        witness[f"{entry.name}^bit"] = bit
                        witness["output"] = name
                        return witness
    return None


def _check_entry_sat(
    probe: RegionProbe, design, entry: Signal, config: LintConfig
) -> Tuple[str, Optional[Dict[str, int]]]:
    """SAT miter: instrumented probe vs a taint-free copy sharing every
    input except ``entry``.  Returns ``(status, witness)`` with status
    one of ``"unsound"``, ``"sound"``, ``"unknown"``.
    """
    from repro.formal.product import rename_circuit
    from repro.formal.sat.solver import SolveStatus, Solver
    from repro.formal.unroll import Unroller

    shared = {sig.name for sig in probe.entries if sig.name != entry.name}
    copy = rename_circuit(probe.circuit, "r", shared)
    miter = Circuit(f"{probe.circuit.name}.miter")
    for source in (design.circuit, copy):
        for sig in source.signals.values():
            miter.add_signal(sig)
        for reg in source.registers:
            miter.add_register(reg)
        for cell in source.cells:
            miter.add_cell(cell)

    bad_bits: List[Signal] = []
    for name in probe.checked:
        left = miter.signal(f"__probe.{name}")
        right = miter.signal(f"r.__probe.{name}")
        neq = Signal(f"_lint.neq.{name}", 1, SignalKind.WIRE, module="_lint")
        miter.add_cell(Cell(CellOp.NEQ, neq, (left, right), module="_lint"))
        taint = miter.signal(design.taint_name[f"__probe.{name}"])
        red = Signal(f"_lint.tred.{name}", 1, SignalKind.WIRE, module="_lint")
        miter.add_cell(Cell(CellOp.REDOR, red, (taint,), module="_lint"))
        clean = Signal(f"_lint.clean.{name}", 1, SignalKind.WIRE, module="_lint")
        miter.add_cell(Cell(CellOp.NOT, clean, (red,), module="_lint"))
        bad = Signal(f"_lint.bad.{name}", 1, SignalKind.WIRE, module="_lint")
        miter.add_cell(Cell(CellOp.AND, bad, (neq, clean), module="_lint"))
        bad_bits.append(bad)
    out = Signal("_lint_bad", 1, SignalKind.OUTPUT, module="_lint")
    if len(bad_bits) == 1:
        miter.add_cell(Cell(CellOp.BUF, out, (bad_bits[0],), module="_lint"))
    else:
        miter.add_cell(Cell(CellOp.OR, out, tuple(bad_bits), module="_lint"))

    lowered = lower_to_gates(miter)
    unroller = Unroller(lowered, symbolic_all=True)
    unroller.add_frame()
    result = unroller.solver.solve(
        assumptions=(unroller.lit_of_bit(0, "_lint_bad"),),
        max_conflicts=config.sat_conflicts,
    )
    if result.status is SolveStatus.UNSAT:
        return "sound", None
    if result.status is SolveStatus.UNKNOWN:
        return "unknown", None
    witness = {
        sig.name: unroller.word_value(0, sig.name, result.model)
        for sig in probe.entries
    }
    witness[f"r.{entry.name}"] = unroller.word_value(0, f"r.{entry.name}", result.model)
    for name in probe.checked:
        if unroller.word_value(0, f"_lint.bad.{name}", result.model):
            witness["output"] = name
            break
    return "unsound", witness


@register_rule
class HandlerSoundnessRule(LintRule):
    """Flags custom taint handlers that can drop taint on a live path."""

    id = "unsound-handler"
    severity = Severity.ERROR
    category = "semantic"
    requires_scheme = True
    description = "custom handler reports clean taint on an influencing input"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.taint.instrument import instrument, TaintSources

        scheme = ctx.scheme
        for region in sorted(scheme.custom_modules):
            if not ctx.module_exists(region):
                continue  # scheme-ref reports this
            probe = RegionProbe(ctx.circuit, scheme, region)
            if not probe.checked or not probe.entries:
                continue
            mini_scheme = _probe_scheme(scheme, region)
            for entry in probe.entries:
                sources = TaintSources(inputs={entry.name: -1})
                try:
                    design = instrument(probe.circuit, mini_scheme, sources)
                except Exception as exc:  # noqa: BLE001 — handler code is user code
                    yield self.diag(
                        ctx,
                        f"custom handler for {region!r} failed on isolated "
                        f"probe (tainting {entry.name!r}): {exc}",
                        path=region, severity=Severity.WARNING,
                        fix_hint="handlers must tolerate being evaluated on "
                                 "the module cone alone",
                    )
                    continue
                if probe.input_bits <= ctx.config.exhaustive_bits:
                    witness = _check_entry_exhaustive(probe, design, entry)
                    if witness is not None:
                        yield self._unsound(ctx, region, entry, witness)
                else:
                    status, witness = _check_entry_sat(
                        probe, design, entry, ctx.config
                    )
                    if status == "unsound":
                        yield self._unsound(ctx, region, entry, witness)
                    elif status == "unknown":
                        yield self.diag(
                            ctx,
                            f"soundness of custom handler for {region!r} "
                            f"w.r.t. input {entry.name!r} is inconclusive "
                            f"(SAT budget of {ctx.config.sat_conflicts} "
                            "conflicts exhausted)",
                            path=region, severity=Severity.INFO,
                        )

    def _unsound(self, ctx, region, entry, witness) -> Diagnostic:
        shown = {k: v for k, v in witness.items() if not str(k).startswith("r.")}
        return self.diag(
            ctx,
            f"custom handler for {region!r} drops taint: input "
            f"{entry.name!r} influences output "
            f"{witness.get('output', '?')!r} while its taint stays clean "
            f"(witness {shown})",
            path=region,
            fix_hint="the handler must taint every output an input can "
                     "influence; add the dependency or use PassthroughTaint",
        )


# ---------------------------------------------------------------------------
# monitor vacuity + instrumentation equivalence (InstrumentedDesign checks)
# ---------------------------------------------------------------------------

def lint_monitors(
    design,
    monitor_names: Optional[Sequence[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Diagnostic]:
    """Check monitor outputs for vacuity.

    The design's own registers are symbolic while the taint registers
    keep their source-configured reset values; a monitor that is the
    same constant in *every* frame up to the configured bound asserts
    nothing — typically the taint sources never reach the monitored
    sinks (constant monitor despite free design state).
    """
    from repro.formal.sat.solver import SolveStatus
    from repro.formal.unroll import Unroller

    config = config or LintConfig()
    if monitor_names is None:
        monitor_names = [
            sig.name for sig in design.circuit.outputs if sig.module == "_monitor"
        ]
    diagnostics: List[Diagnostic] = []
    if not monitor_names:
        return diagnostics
    design_regs = {reg.q.name for reg in design.uninstrumented.registers}
    lowered = lower_to_gates(design.circuit)
    unroller = Unroller(lowered, symbolic_registers=design_regs)
    depth = max(1, config.equivalence_bound)
    unroller.ensure_depth(depth)
    for name in monitor_names:
        lits = [unroller.lit_of_bit(t, name) for t in range(depth)]
        constant_at: Optional[int] = None
        for value in (1, 0):
            # selector -> (monitor == value in some frame)
            selector = unroller.solver.new_var()
            clause = (-selector,) + tuple(l if value else -l for l in lits)
            unroller.solver.add_clause(clause)
            result = unroller.solver.solve(
                assumptions=(selector,), max_conflicts=config.sat_conflicts
            )
            if result.status is SolveStatus.UNSAT:
                constant_at = 1 - value
                break
        if constant_at is not None:
            diagnostics.append(Diagnostic(
                rule="vacuous-monitor", severity=Severity.WARNING,
                message=f"monitor {name!r} is constant {constant_at} for "
                        f"{depth} cycle(s) despite fully symbolic design "
                        "state: it asserts nothing",
                path=name, module="_monitor",
                fix_hint="check the taint sources can reach the monitored "
                         "sinks",
            ))
    return diagnostics


def lint_equivalence(
    design, config: Optional[LintConfig] = None
) -> List[Diagnostic]:
    """Bounded spot check that instrumentation preserved the DUV.

    Compares the uninstrumented design against the instrumented one on
    the original outputs, with the original registers symbolic, to the
    configured BMC depth.  Taint logic only *reads* the design, so any
    divergence is an instrumentation bug.
    """
    from repro.formal.equivalence import check_equivalence

    config = config or LintConfig()
    original = design.uninstrumented
    outputs = [sig.name for sig in original.outputs]
    if not outputs:
        return []
    result = check_equivalence(
        original,
        design.circuit,
        outputs=outputs,
        symbolic_registers=[reg.q.name for reg in original.registers],
        max_bound=config.equivalence_bound,
    )
    if result.equivalent is False:
        return [Diagnostic(
            rule="instrumentation-diverges", severity=Severity.ERROR,
            message=f"instrumented circuit diverges from the original on "
                    f"its own outputs within {config.equivalence_bound} "
                    "cycles — taint logic must never perturb the DUV",
            path=design.circuit.name,
            fix_hint="a custom handler or monitor is driving original logic",
        )]
    if result.equivalent is None:
        return [Diagnostic(
            rule="instrumentation-diverges", severity=Severity.INFO,
            message="instrumentation-equivalence spot check inconclusive "
                    "(solver budget)",
            path=design.circuit.name,
        )]
    return []


def lint_instrumented(
    design, config: Optional[LintConfig] = None
) -> LintReport:
    """All semantic checks that need an :class:`InstrumentedDesign`."""
    config = config or LintConfig()
    report = LintReport(design.circuit.name)
    report.extend(lint_monitors(design, config=config))
    report.extend(lint_equivalence(design, config=config))
    report.sort()
    return report

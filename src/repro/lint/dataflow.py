"""Dataflow lint rules backed by :mod:`repro.analyze`.

Where the structural rules look at the cell graph one edge at a time,
these rules ask whole-program questions — can this observable ever
change, does this scheme entry refine logic that can influence
anything, can uninitialized state leak into an output — using the
SAT-free fixpoint domains of :mod:`repro.analyze`.

The expensive facts (gate lowering + ternary constant fixpoint) are
computed at most once per :class:`LintContext` and shared by every
rule; a circuit the lowering rejects simply skips the fixpoint-backed
rules (the structural rules already reported why).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import LintContext, LintRule, register_rule

_UNSET = object()


def _fixpoint(ctx: LintContext):
    """``(lowered, ConstFacts)`` for the context's circuit, or None.

    Cached on the context so the four rules share one lowering and one
    fixpoint run.
    """
    cached = getattr(ctx, "_dataflow_fixpoint", _UNSET)
    if cached is not _UNSET:
        return cached
    try:
        from repro.hdl.lowering import lower_to_gates
        from repro.analyze.constprop import constant_fixpoint
        from repro.analyze.xprop import x_sources

        lowered = lower_to_gates(ctx.circuit, validate=False)
        # Self-driven registers hold environment-provided state, not
        # their reset literal — the fixpoint must not pin them.
        symbolic = frozenset(x_sources(ctx.circuit))
        result = (lowered, constant_fixpoint(lowered, symbolic))
    except Exception:
        result = None
    ctx._dataflow_fixpoint = result
    return result


def _observable_cone(ctx: LintContext) -> Set[str]:
    """Signals that can influence some output, crossing registers."""
    cached = getattr(ctx, "_dataflow_cone", None)
    if cached is not None:
        return cached
    producer = ctx.producer_of
    d_of = {reg.q.name: reg.d.name for reg in ctx.circuit.registers}
    live: Set[str] = set()
    stack = [sig.name for sig in ctx.circuit.outputs]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        cell = producer.get(name)
        if cell is not None:
            stack.extend(sig.name for sig in cell.ins)
        d_name = d_of.get(name)
        if d_name is not None and d_name != name:
            stack.append(d_name)
    ctx._dataflow_cone = live
    return live


@register_rule
class UnreachableObservableRule(LintRule):
    """An output fed by neither inputs nor registers is compile-time
    constant: it observes nothing, and a property or sink anchored on
    it is vacuous."""

    id = "unreachable-observable"
    severity = Severity.WARNING
    category = "dataflow"
    description = "outputs whose cone contains no input and no register"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        producer = ctx.producer_of
        registered = {reg.q.name for reg in ctx.circuit.registers}
        input_names = {sig.name for sig in ctx.circuit.inputs}
        for out in ctx.circuit.outputs:
            if out.name not in producer:
                continue  # undriven-signal already errors on this
            seen: Set[str] = set()
            stack = [out.name]
            dynamic = False
            while stack:
                name = stack.pop()
                if name in seen:
                    continue
                seen.add(name)
                if name in input_names or name in registered:
                    dynamic = True
                    break
                cell = producer.get(name)
                if cell is not None:
                    stack.extend(sig.name for sig in cell.ins)
            if not dynamic:
                yield self.diag(
                    ctx,
                    "output depends on no input and no register — it is "
                    "the same constant in every run",
                    path=out.name, module=out.module,
                    fix_hint="wire the observable to real state or drop it",
                )


@register_rule
class StaticallyDeadTaintLogicRule(LintRule):
    """Scheme refinements are per-cell/per-register precision upgrades;
    one on logic that cannot reach any output buys nothing and usually
    marks a stale entry from an earlier netlist revision."""

    id = "statically-dead-taint-logic"
    severity = Severity.WARNING
    category = "dataflow"
    requires_scheme = True
    description = "scheme refinements on logic that cannot reach any output"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        live = _observable_cone(ctx)
        producer = ctx.producer_of
        for name in sorted(ctx.scheme.cell_options):
            cell = producer.get(name)
            if cell is not None and name not in live:
                yield self.diag(
                    ctx,
                    "cell option refines logic that cannot reach any output",
                    path=name, module=cell.module,
                    fix_hint="drop the entry or export an output that "
                             "observes this logic",
                )
        registered = {reg.q.name: reg for reg in ctx.circuit.registers}
        for name in sorted(ctx.scheme.register_granularity):
            reg = registered.get(name)
            if reg is not None and name not in live:
                yield self.diag(
                    ctx,
                    "register granularity refines state that cannot reach "
                    "any output",
                    path=name, module=reg.q.module,
                    fix_hint="drop the entry or export an output that "
                             "observes this register",
                )


@register_rule
class ConstGatedMonitorRule(LintRule):
    """A 1-bit output pinned to a constant by the reachable-state
    ternary fixpoint never changes: as a monitor it can never fire (or
    always fires), so whatever it guards is unchecked."""

    id = "const-gated-monitor"
    severity = Severity.INFO
    category = "dataflow"
    description = "1-bit outputs constant in every reachable state"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        bundle = _fixpoint(ctx)
        if bundle is None:
            return
        lowered, facts = bundle
        for sig in ctx.circuit.outputs:
            if sig.width != 1:
                continue
            value = facts.word_value(lowered, sig.name)
            if value is not None:
                yield self.diag(
                    ctx,
                    f"output is constant {value} in every reachable state "
                    "(ternary fixpoint)",
                    path=sig.name, module=sig.module,
                    fix_hint="a monitor that cannot change observes nothing; "
                             "check its enable/reset conditions",
                )


@register_rule
class XReachesObservableRule(LintRule):
    """Outputs in the forward closure of never-initialized registers
    (self-driven ``d == q`` state) expose content no reset established
    — exactly the signals worth auditing as attacker observations."""

    id = "x-reaches-observable"
    severity = Severity.INFO
    category = "dataflow"
    description = "outputs that can observe never-initialized register state"

    def run(self, ctx: LintContext) -> Iterator[Diagnostic]:
        from repro.analyze.xprop import x_reachability, x_sources

        sources = x_sources(ctx.circuit)
        if not sources:
            return
        constant: Optional[List[str]] = None
        bundle = _fixpoint(ctx)
        if bundle is not None:
            lowered, facts = bundle
            constant = [
                name for name in ctx.circuit.signals
                if facts.word_value(lowered, name) is not None
            ]
        reach = x_reachability(ctx.circuit, sources, constant_signals=constant)
        for name in reach.observable(s.name for s in ctx.circuit.outputs):
            sig = ctx.circuit.signals[name]
            examples = ", ".join(reach.sources[:3])
            suffix = ", ..." if len(reach.sources) > 3 else ""
            yield self.diag(
                ctx,
                f"output can observe uninitialized register state "
                f"({examples}{suffix})",
                path=name, module=sig.module,
                fix_hint="expected for secrets/ROMs; otherwise reset the "
                         "state it reads",
            )

"""Diagnostics: the data model of the lint subsystem.

A :class:`Diagnostic` is one finding — a rule id, a severity, the
signal or module path it anchors to, and an optional fix hint.  A
:class:`LintReport` aggregates the findings of one lint run and renders
them as text (for the CLI) or JSON (for tooling).

:class:`SourceMap` maps *derived* signal names back to hierarchical
source paths — most importantly the per-bit names produced by
:func:`repro.hdl.lowering.lower_to_gates` (``alu.x[3]`` → bit 3 of
``alu.x``) — so diagnostics on a lowered or deserialized netlist still
point at the design the user wrote.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings make a report fail (non-zero CLI exit, CEGAR entry
    gate raises); WARNING findings indicate likely-unintended structure;
    INFO findings are advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def order(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes:
        rule: Stable rule identifier (e.g. ``"comb-loop"``).
        severity: See :class:`Severity`.
        message: Human-readable description of the finding.
        path: Signal or module path the finding anchors to (raw circuit
            name; rendering resolves it through a :class:`SourceMap`).
        module: Hierarchical module path owning the finding.
        fix_hint: Optional one-line suggestion for resolving it.
        waived: True when a config waiver downgraded this finding.
    """

    rule: str
    severity: Severity
    message: str
    path: Optional[str] = None
    module: str = ""
    fix_hint: Optional[str] = None
    waived: bool = False

    def with_severity(self, severity: Severity) -> "Diagnostic":
        return replace(self, severity=severity)

    def as_waived(self) -> "Diagnostic":
        return replace(self, severity=Severity.INFO, waived=True)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.path:
            out["path"] = self.path
        if self.module:
            out["module"] = self.module
        if self.fix_hint:
            out["fix_hint"] = self.fix_hint
        if self.waived:
            out["waived"] = True
        return out


class SourceMap:
    """Maps derived (per-bit) signal names to hierarchical source paths."""

    def __init__(self, mapping: Optional[Mapping[str, Tuple[str, int]]] = None) -> None:
        self._map: Dict[str, Tuple[str, int]] = dict(mapping or {})

    @classmethod
    def from_lowered(cls, lowered) -> "SourceMap":
        """Build from a :class:`~repro.hdl.lowering.LoweredCircuit`."""
        mapping: Dict[str, Tuple[str, int]] = {}
        for orig, bit_sigs in lowered.bits.items():
            for i, sig in enumerate(bit_sigs):
                if sig.name != orig:
                    mapping[sig.name] = (orig, i)
        return cls(mapping)

    @classmethod
    def from_provenance(cls, provenance: Mapping[str, Sequence[str]]) -> "SourceMap":
        """Build from the serialized ``provenance`` section of a netlist."""
        mapping: Dict[str, Tuple[str, int]] = {}
        for orig, names in provenance.items():
            for i, name in enumerate(names):
                if name != orig:
                    mapping[name] = (orig, i)
        return cls(mapping)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def origin(self, name: str) -> Optional[Tuple[str, int]]:
        return self._map.get(name)

    def resolve(self, name: str) -> str:
        """Render ``name`` as its hierarchical source path when known."""
        origin = self._map.get(name)
        if origin is None:
            return name
        orig, bit = origin
        return f"{orig}[{bit}]"


class LintReport:
    """The findings of one lint run over one circuit."""

    def __init__(
        self,
        circuit_name: str = "",
        diagnostics: Optional[Iterable[Diagnostic]] = None,
        source_map: Optional[SourceMap] = None,
    ) -> None:
        self.circuit_name = circuit_name
        self.diagnostics: List[Diagnostic] = list(diagnostics or ())
        self.source_map = source_map or SourceMap()

    # ------------------------------------------------------------------
    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def merge(self, other: "LintReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def sort(self) -> None:
        self.diagnostics.sort(
            key=lambda d: (d.severity.order, d.rule, d.path or "", d.message)
        )

    # ------------------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when the report contains no errors."""
        return not self.errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    # ------------------------------------------------------------------
    def _render_path(self, diagnostic: Diagnostic) -> str:
        if not diagnostic.path:
            return ""
        resolved = self.source_map.resolve(diagnostic.path)
        if resolved != diagnostic.path:
            return f"{diagnostic.path} (= {resolved})"
        return diagnostic.path

    def render_text(self, min_severity: Severity = Severity.INFO) -> str:
        """Render the report as compiler-style text output."""
        lines: List[str] = []
        shown = 0
        for diag in self.diagnostics:
            if diag.severity.order > min_severity.order:
                continue
            shown += 1
            location = self._render_path(diag)
            head = f"{diag.severity.value}[{diag.rule}]"
            if location:
                head += f" {location}"
            lines.append(f"{head}: {diag.message}")
            if diag.fix_hint:
                lines.append(f"    hint: {diag.fix_hint}")
        counts = self.counts()
        summary = (
            f"{self.circuit_name or 'circuit'}: "
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info(s)"
        )
        if shown:
            lines.append("")
        lines.append(summary)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        entries = []
        for diag in self.diagnostics:
            entry = diag.to_dict()
            if diag.path:
                resolved = self.source_map.resolve(diag.path)
                if resolved != diag.path:
                    entry["source"] = resolved
            entries.append(entry)
        return {
            "circuit": self.circuit_name,
            "counts": self.counts(),
            "diagnostics": entries,
        }

    def to_stable_dict(self) -> Dict[str, Any]:
        """Machine-readable report with a fixed key set per finding.

        Unlike :meth:`to_dict` (compact, omits empty fields), every
        diagnostic entry always carries the same keys — ``rule``,
        ``severity``, ``path``, ``source``, ``module``, ``message``,
        ``fix_hint``, ``waived`` — so downstream tooling can index
        without existence checks.  Schema id: ``repro-lint/v1``.
        """
        entries: List[Dict[str, Any]] = []
        for diag in self.diagnostics:
            path = diag.path or ""
            entries.append({
                "rule": diag.rule,
                "severity": diag.severity.value,
                "path": path,
                "source": self.source_map.resolve(path) if path else "",
                "module": diag.module,
                "message": diag.message,
                "fix_hint": diag.fix_hint or "",
                "waived": diag.waived,
            })
        return {
            "schema": "repro-lint/v1",
            "circuit": self.circuit_name,
            "ok": self.ok,
            "counts": self.counts(),
            "diagnostics": entries,
        }

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def __str__(self) -> str:
        return self.render_text()

    def __repr__(self) -> str:
        counts = self.counts()
        return (
            f"LintReport({self.circuit_name!r}: {counts['error']}E "
            f"{counts['warning']}W {counts['info']}I)"
        )


class LintError(RuntimeError):
    """Raised when a lint gate (e.g. CEGAR entry) finds errors."""

    def __init__(self, report: LintReport) -> None:
        self.report = report
        errors = report.errors
        preview = "; ".join(d.message for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"lint found {len(errors)} error(s) in {report.circuit_name!r}: "
            f"{preview}{more}"
        )

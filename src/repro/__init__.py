"""Compass reproduction: CEGAR-driven taint-scheme refinement for RTL
security verification.

Subpackages:

- :mod:`repro.hdl` — hardware IR, builder eDSL, lowering, optimizer,
  Verilog/JSON emission;
- :mod:`repro.sim` — cycle-accurate simulation, waveforms, VCD;
- :mod:`repro.formal` — SAT solver, BMC, k-induction, IC3/PDR,
  self-composition, abstraction;
- :mod:`repro.taint` — the three-dimensional taint space, propagation
  policies, instrumentation pass, presets, custom handlers, metrics;
- :mod:`repro.lint` — static analysis over circuits and taint schemes
  (structural invariants, scheme consistency, SAT-backed semantic
  checks), also exposed as ``python -m repro lint``;
- :mod:`repro.cegar` — the Compass CEGAR loop (false-taint tests,
  backtracing, refinement strategy, pruning);
- :mod:`repro.cores` — RV-lite ISA and the four evaluated processors;
- :mod:`repro.contracts` — the security properties under verification;
- :mod:`repro.bench` — workload kernels and attack gadgets.

The front door for verification tasks is
:func:`repro.cegar.run_compass`; see ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

__all__ = [
    "hdl",
    "sim",
    "formal",
    "taint",
    "lint",
    "cegar",
    "cores",
    "contracts",
    "bench",
]

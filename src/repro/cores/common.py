"""Shared building blocks for the RV-lite cores.

Everything here is instantiated inside a core's
:class:`~repro.hdl.builder.ModuleBuilder`: the register file, the ALU,
the iterative multiplier (MulDiv), the BTB, instruction decode, and the
:class:`CoreDesign` bundle the contracts package consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hdl.builder import Memory, ModuleBuilder, RegValue, Value
from repro.hdl.circuit import Circuit
from repro.cores.isa import AluFn, Instr, Op, encode, LUI_SHIFT


@dataclass(frozen=True)
class CoreConfig:
    """Size parameters of a core (all memory depths are powers of two).

    The formal configuration mirrors the paper's scaled-down setup
    (64-byte caches); the simulation configuration mirrors the 2 KB one.
    """

    xlen: int = 8
    imem_depth: int = 8
    dmem_depth: int = 8
    secret_words: int = 2        # top addresses of dmem hold the secret
    rob_depth: int = 4           # OoO cores only

    def __post_init__(self) -> None:
        for name in ("imem_depth", "dmem_depth"):
            depth = getattr(self, name)
            if depth & (depth - 1):
                raise ValueError(f"{name} must be a power of two, got {depth}")
        if not (0 < self.secret_words < self.dmem_depth):
            raise ValueError("secret_words must be within dmem")

    @property
    def pc_width(self) -> int:
        return max(1, (self.imem_depth - 1).bit_length())

    @property
    def dmem_addr_width(self) -> int:
        return max(1, (self.dmem_depth - 1).bit_length())

    @property
    def secret_addresses(self) -> Tuple[int, ...]:
        return tuple(range(self.dmem_depth - self.secret_words, self.dmem_depth))

    @classmethod
    def formal(cls, **overrides) -> "CoreConfig":
        return cls(**overrides)

    @classmethod
    def simulation(cls, **overrides) -> "CoreConfig":
        defaults = dict(xlen=16, imem_depth=64, dmem_depth=32, secret_words=4)
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class CoreDesign:
    """A built core plus everything the verification flow needs to know."""

    name: str
    circuit: Circuit
    config: CoreConfig
    imem_words: Tuple[str, ...]
    dmem_words: Tuple[str, ...]          # DUV data memory registers
    isa_dmem_words: Tuple[str, ...]      # shadow ISA machine memory (may be empty)
    sinks: Tuple[str, ...]               # microarchitectural observation signals
    commit_valid: str
    halted: str
    isa_obs_pairs: Tuple[Tuple[str, str], ...]  # (step condition, obs value)
    init_assumption_outputs: Tuple[str, ...]
    blackbox_modules: Tuple[str, ...]
    precise_modules: Tuple[str, ...]
    regfile_registers: Tuple[str, ...] = ()
    description: str = ""

    # ------------------------------------------------------------------
    def secret_register_masks(self) -> Dict[str, int]:
        """Taint-source masks: the secret dmem words in both machines."""
        masks: Dict[str, int] = {}
        for addr in self.config.secret_addresses:
            masks[self.dmem_words[addr]] = -1
            if self.isa_dmem_words:
                masks[self.isa_dmem_words[addr]] = -1
        return masks

    def symbolic_registers(self) -> frozenset:
        """Registers with universally-quantified initial values."""
        names = set(self.imem_words) | set(self.dmem_words) | set(self.isa_dmem_words)
        return frozenset(names)

    def initial_state_for(
        self,
        program: Sequence[int],
        data: Optional[Mapping[int, int]] = None,
    ) -> Dict[str, int]:
        """Register initial values that load a program + data memory image."""
        cfg = self.config
        if len(program) > cfg.imem_depth:
            raise ValueError(
                f"program ({len(program)} words) exceeds imem depth {cfg.imem_depth}"
            )
        halt = encode(Instr(Op.HALT))
        state: Dict[str, int] = {}
        for i, name in enumerate(self.imem_words):
            state[name] = program[i] if i < len(program) else halt
        mask = (1 << cfg.xlen) - 1
        for addr, value in (data or {}).items():
            state[self.dmem_words[addr % cfg.dmem_depth]] = value & mask
            if self.isa_dmem_words:
                state[self.isa_dmem_words[addr % cfg.dmem_depth]] = value & mask
        return state


# ---------------------------------------------------------------------------
# decode bundle
# ---------------------------------------------------------------------------

@dataclass
class Decoded:
    """Hardware decode of a 16-bit instruction word."""

    op: Value
    rd: Value
    rs1: Value
    rs2: Value
    funct: Value
    imm: Value        # sign-extended to xlen
    branch_off: Value # sign-extended/truncated to pc width
    jal_off: Value    # sign-extended/truncated to pc width
    is_alu: Value
    is_addi: Value
    is_lw: Value
    is_sw: Value
    is_beq: Value
    is_bne: Value
    is_branch: Value
    is_jal: Value
    is_lui: Value
    is_mul: Value
    is_halt: Value
    writes_rd: Value
    uses_rs1: Value
    uses_rs2: Value
    is_mem: Value


def resize_signed(b: ModuleBuilder, value: Value, width: int) -> Value:
    """Resize a two's-complement value (sign-extend or truncate)."""
    if value.width == width:
        return value
    if value.width < width:
        return value.sext(width)
    return value[width - 1:0]


def decode_instruction(b: ModuleBuilder, instr: Value, cfg: CoreConfig) -> Decoded:
    op = instr[15:12]
    rd = instr[11:9]
    rs1 = instr[8:6]
    rs2 = instr[5:3]
    funct = instr[2:0]
    imm6 = instr[5:0]
    imm = resize_signed(b, imm6, cfg.xlen)
    boff6 = b.cat(rd, funct)
    branch_off = resize_signed(b, boff6, cfg.pc_width)
    jal_off = resize_signed(b, imm6, cfg.pc_width)

    def is_op(code: Op) -> Value:
        return op.eq(int(code))

    is_alu = is_op(Op.ALU)
    is_addi = is_op(Op.ADDI)
    is_lw = is_op(Op.LW)
    is_sw = is_op(Op.SW)
    is_beq = is_op(Op.BEQ)
    is_bne = is_op(Op.BNE)
    is_jal = is_op(Op.JAL)
    is_lui = is_op(Op.LUI)
    is_mul = is_op(Op.MUL)
    is_halt = is_op(Op.HALT)
    is_branch = is_beq | is_bne
    writes_rd = is_alu | is_addi | is_lw | is_jal | is_lui | is_mul
    uses_rs1 = is_alu | is_addi | is_lw | is_sw | is_branch | is_mul
    uses_rs2 = is_alu | is_branch | is_mul
    return Decoded(
        op=op, rd=rd, rs1=rs1, rs2=rs2, funct=funct, imm=imm,
        branch_off=branch_off, jal_off=jal_off,
        is_alu=is_alu, is_addi=is_addi, is_lw=is_lw, is_sw=is_sw,
        is_beq=is_beq, is_bne=is_bne, is_branch=is_branch, is_jal=is_jal,
        is_lui=is_lui, is_mul=is_mul, is_halt=is_halt,
        writes_rd=writes_rd, uses_rs1=uses_rs1, uses_rs2=uses_rs2,
        is_mem=is_lw | is_sw,
    )


# ---------------------------------------------------------------------------
# register file
# ---------------------------------------------------------------------------

class Regfile:
    """8-entry register file with r0 hardwired to zero, 1 write port."""

    def __init__(self, b: ModuleBuilder, cfg: CoreConfig, name: str = "rf",
                 extra_bits: int = 0) -> None:
        self.b = b
        self.cfg = cfg
        self.extra_bits = extra_bits
        width = cfg.xlen + extra_bits
        self.regs: List[RegValue] = []
        with b.scope(name):
            self.zero = b.const(0, width)
            for i in range(1, 8):
                self.regs.append(b.reg(f"x{i}", width))
        self._written = False

    def register_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.regs)

    def read(self, addr: Value) -> Value:
        leaves = [self.zero] + list(self.regs)
        return self._tree(addr, leaves)

    def _tree(self, addr: Value, leaves: List[Value]) -> Value:
        if len(leaves) == 1:
            return leaves[0]
        half = len(leaves) // 2
        bit = addr[addr.width - 1]
        rest = addr[addr.width - 2:0] if addr.width > 1 else None
        low = self._tree(rest, leaves[:half]) if rest is not None else leaves[0]
        high = self._tree(rest, leaves[half:]) if rest is not None else leaves[1]
        return self.b.mux(bit, high, low)

    def write(self, addr: Value, data: Value, en: Value) -> None:
        if self._written:
            raise RuntimeError("regfile already has a write port")
        self._written = True
        for i, reg in enumerate(self.regs, start=1):
            hit = en & addr.eq(i)
            reg.drive(data, en=hit)


# ---------------------------------------------------------------------------
# ALU
# ---------------------------------------------------------------------------

def alu(b: ModuleBuilder, cfg: CoreConfig, funct: Value, a: Value, bb: Value) -> Value:
    """Combinational ALU implementing the 8 R-type functions."""
    xlen = cfg.xlen
    shamt_w = max(1, (xlen - 1).bit_length())
    shamt_big = bb  # full-width shift amount; cell semantics zero out-of-range
    results = [
        (funct.eq(int(AluFn.ADD)), a + bb),
        (funct.eq(int(AluFn.SUB)), a - bb),
        (funct.eq(int(AluFn.AND)), a & bb),
        (funct.eq(int(AluFn.OR)), a | bb),
        (funct.eq(int(AluFn.XOR)), a ^ bb),
        (funct.eq(int(AluFn.SLT)), a.ult(bb).zext(xlen)),
        (funct.eq(int(AluFn.SLL)), a << shamt_big),
        (funct.eq(int(AluFn.SRL)), a >> shamt_big),
    ]
    out = b.const(0, xlen)
    for cond, value in results:
        out = b.mux(cond, value, out)
    return out


def combinational_multiply(b: ModuleBuilder, cfg: CoreConfig, a: Value, bb: Value) -> Value:
    """Single-cycle shift-add multiplier (used by the ISA shadow machine)."""
    acc = b.const(0, cfg.xlen)
    for i in range(cfg.xlen):
        partial = a << i if i else a
        acc = acc + b.mux(bb[i], partial, b.const(0, cfg.xlen))
    return acc


class MulDiv:
    """Iterative multiplier: ``xlen`` cycles per MUL, busy/stall interface.

    Matches the paper's MulDiv module: a pipelined unit that secrets
    should never reach in a sandboxed program, making it an ideal
    module-granularity blackbox.
    """

    def __init__(self, b: ModuleBuilder, cfg: CoreConfig, name: str = "muldiv") -> None:
        self.b = b
        self.cfg = cfg
        cnt_w = max(1, cfg.xlen.bit_length())
        with b.scope(name):
            self.busy = b.reg("busy", 1)
            self.count = b.reg("count", cnt_w)
            self.acc = b.reg("acc", cfg.xlen)
            self.op_a = b.reg("op_a", cfg.xlen)
            self.op_b = b.reg("op_b", cfg.xlen)

    def connect(
        self, start: Value, a: Value, bb: Value, kill: Optional[Value] = None
    ) -> Tuple[Value, Value, Value]:
        """Returns (busy_stall, done_pulse, result).

        ``start`` must stay asserted while the requesting instruction is
        stalled; the unit latches operands on the first cycle.  The unit
        *early-exits* once the remaining multiplier bits are zero, so
        its latency depends on the multiplier operand's value — the
        realistic timing channel ProSpeCT's defense must cover.
        ``kill`` aborts an in-flight operation (pipeline squash).
        """
        b = self.b
        cfg = self.cfg
        fire = start & ~self.busy
        stepping = self.busy
        # Early exit: after consuming bit 0, finish if no multiplier bits
        # remain (or the cycle budget is spent).
        remaining = self.op_b >> 1
        last = self.busy & (self.count.eq(1) | remaining.eq(0))
        partial = b.mux(self.op_b[0], self.op_a, b.const(0, cfg.xlen))
        acc_next = self.acc + partial
        busy_next = b.mux(fire, b.const(1, 1), b.mux(last, b.const(0, 1), self.busy))
        if kill is not None:
            busy_next = b.mux(kill, b.const(0, 1), busy_next)
        self.busy.drive(busy_next)
        self.count.drive(
            b.mux(fire, b.const(cfg.xlen, self.count.width),
                  b.mux(stepping, self.count - 1, self.count))
        )
        self.acc.drive(b.mux(fire, b.const(0, cfg.xlen), b.mux(stepping, acc_next, self.acc)))
        self.op_a.drive(b.mux(fire, a, b.mux(stepping, self.op_a << 1, self.op_a)))
        self.op_b.drive(b.mux(fire, bb, b.mux(stepping, self.op_b >> 1, self.op_b)))
        result = acc_next
        stall = start & ~last
        return stall, last, result


# ---------------------------------------------------------------------------
# BTB (branch target buffer)
# ---------------------------------------------------------------------------

class Btb:
    """Tiny direct-mapped BTB: predicts taken branches at fetch."""

    def __init__(self, b: ModuleBuilder, cfg: CoreConfig, entries: int = 2,
                 name: str = "btb") -> None:
        if entries & (entries - 1):
            raise ValueError("btb entries must be a power of two")
        self.b = b
        self.cfg = cfg
        self.entries = entries
        self.index_w = max(1, (entries - 1).bit_length())
        pw = cfg.pc_width
        with b.scope(name):
            self.valid = [b.reg(f"valid{i}", 1) for i in range(entries)]
            self.tag = [b.reg(f"tag{i}", pw) for i in range(entries)]
            self.target = [b.reg(f"target{i}", pw) for i in range(entries)]

    def _index(self, pc: Value) -> Value:
        return pc[self.index_w - 1:0]

    def predict(self, pc: Value) -> Tuple[Value, Value]:
        """(hit, predicted_target) for the fetch PC."""
        b = self.b
        idx = self._index(pc)
        hit = b.const(0, 1)
        target = b.const(0, self.cfg.pc_width)
        for i in range(self.entries):
            sel = idx.eq(i)
            entry_hit = sel & self.valid[i] & self.tag[i].eq(pc)
            hit = hit | entry_hit
            target = b.mux(entry_hit, self.target[i], target)
        return hit, target

    def update(self, resolve: Value, pc: Value, taken: Value, target: Value) -> None:
        """On branch resolution: learn taken targets, forget not-taken."""
        b = self.b
        idx = self._index(pc)
        for i in range(self.entries):
            sel = resolve & idx.eq(i)
            write_taken = sel & taken
            self.valid[i].drive(taken, en=sel)
            self.tag[i].drive(pc, en=write_taken)
            self.target[i].drive(target, en=write_taken)

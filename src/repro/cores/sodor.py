"""Sodor-lite: a 2-stage in-order RV-lite core.

Pipeline: **F** (fetch) | **X** (decode + execute + memory + writeback).
Branches resolve in X and squash the one speculatively fetched
instruction, so no wrong-path instruction ever reaches memory — the
core satisfies the sandboxing contract (the paper proves Sodor secure,
and so does our CEGAR loop, unboundedly).

Module hierarchy (Table 1's "9 modules" scaled down): ``icache``,
``dcache``, ``frontend``, ``core`` with ``core.rf`` and ``core.muldiv``,
plus the ``isa`` shadow machine and the observation monitors.
"""

from __future__ import annotations

from typing import Optional

from repro.hdl.builder import ModuleBuilder
from repro.cores.common import (
    CoreConfig,
    CoreDesign,
    MulDiv,
    Regfile,
    alu,
    decode_instruction,
)
from repro.cores.isa import LUI_SHIFT
from repro.cores.isa_machine import build_isa_shadow


def build_sodor(
    cfg: Optional[CoreConfig] = None, with_shadow: bool = True
) -> CoreDesign:
    """Build the Sodor-lite core (optionally with the ISA shadow)."""
    cfg = cfg or CoreConfig.formal()
    xlen, pw, aw = cfg.xlen, cfg.pc_width, cfg.dmem_addr_width
    b = ModuleBuilder("sodor")

    with b.scope("icache"):
        imem = b.mem("data", cfg.imem_depth, 16)
    with b.scope("dcache"):
        dmem = b.mem("data", cfg.dmem_depth, xlen)

    with b.scope("frontend"):
        pc = b.reg("pc", pw)
        fx_valid = b.reg("fx_valid", 1)
        fx_instr = b.reg("fx_instr", 16)
        fx_pc = b.reg("fx_pc", pw)

    with b.scope("core"):
        halted = b.reg("halted", 1)
        rf = Regfile(b, cfg, name="rf")
        md = MulDiv(b, cfg, name="muldiv")

        dec = decode_instruction(b, fx_instr, cfg)
        rs1_val = b.named("rs1_val", rf.read(dec.rs1))
        rs2_val = b.named("rs2_val", rf.read(dec.rs2))
        store_val = b.named("store_val", rf.read(dec.rd))

        valid = b.named("x_valid", fx_valid & ~halted)
        md_start = valid & dec.is_mul
        md_stall, _md_done, md_result = md.connect(md_start, rs1_val, rs2_val)
        stall = b.named("stall", md_stall)
        fire = b.named("fire", valid & ~stall)
        commit = b.named("commit", fire & ~dec.is_halt)

        # Memory access (1-cycle DCache: combinational read in X).
        mem_addr = b.named("mem_addr", (rs1_val + dec.imm)[aw - 1:0])
        dmem_req = b.named("dmem_req", commit & dec.is_mem)
        with b.at_scope("dcache"):
            load_data = b.named("load_data", dmem.read(mem_addr))
            dmem.write(mem_addr, store_val, commit & dec.is_sw)

        with b.scope("alu"):
            alu_out = alu(b, cfg, dec.funct, rs1_val, rs2_val)

        seq_pc = fx_pc + 1
        link = b.named("link", seq_pc.zext(xlen) if pw < xlen else seq_pc[xlen - 1:0])
        imm6_raw = fx_instr[5:0]
        imm6_x = imm6_raw.zext(xlen) if xlen >= 6 else imm6_raw[xlen - 1:0]
        lui_val = imm6_x << LUI_SHIFT
        wb = b.named("wb", b.priority_mux(
            b.const(0, xlen),
            (dec.is_alu, alu_out),
            (dec.is_mul, md_result),
            (dec.is_addi, rs1_val + dec.imm),
            (dec.is_lw, load_data),
            (dec.is_sw, store_val),
            (dec.is_jal, link),
            (dec.is_lui, lui_val),
        ))
        rf.write(dec.rd, wb, commit & dec.writes_rd)

        taken = b.named(
            "taken",
            commit & ((dec.is_beq & rs1_val.eq(rs2_val))
                      | (dec.is_bne & rs1_val.ne(rs2_val))),
        )
        redirect = b.named("redirect", taken | (commit & dec.is_jal))
        target = b.named("target", b.mux(
            taken, seq_pc + dec.branch_off, seq_pc + dec.jal_off
        ))
        halt_now = fire & dec.is_halt
        halted_next = b.named("halted_next", halted | halt_now)
        halted.drive(halted_next)

    # ---- frontend next-state -------------------------------------------
    with b.at_scope("frontend"):
        fetch_instr = b.named("fetch_instr", imem.read(pc))
        pc_plus1 = pc + 1
        pc.drive(b.mux(halted_next | stall, pc, b.mux(redirect, target, pc_plus1)))
        fx_valid.drive(b.mux(
            halted_next, b.const(0, 1),
            b.mux(stall, fx_valid, b.mux(redirect, b.const(0, 1), b.const(1, 1))),
        ))
        fx_instr.drive(fetch_instr, en=~stall)
        fx_pc.drive(pc, en=~stall)

    # ---- microarchitectural observation ---------------------------------
    obs_imem_addr = b.output("obs_imem_addr", pc)
    obs_dmem_addr = b.output("obs_dmem_addr", b.mux(dmem_req, mem_addr, b.const(0, aw)))
    obs_dmem_req = b.output("obs_dmem_req", dmem_req)
    obs_commit = b.output("obs_commit", commit)
    sinks = ("obs_imem_addr", "obs_dmem_addr", "obs_dmem_req", "obs_commit")

    # ---- ISA shadow machine ---------------------------------------------
    isa_dmem_words: tuple = ()
    isa_obs_pairs: tuple = ()
    init_assumptions: tuple = ()
    if with_shadow:
        shadow = build_isa_shadow(b, cfg, imem, commit, scope="isa")
        isa_dmem_words = shadow.dmem_words
        b.output("isa_obs", shadow.obs)
        isa_obs_pairs = ((shadow.step_en_name, "isa.obs"),)
        eq_bits = [
            dmem.word(i).eq(shadow.dmem.word(i)) for i in range(cfg.dmem_depth)
        ]
        init_eq = b.all_of(*eq_bits)
        b.output("init_mem_eq", init_eq)
        init_assumptions = ("init_mem_eq",)

    circuit = b.build()
    blackboxes = tuple(sorted(
        m for m in circuit.module_paths()
        if not (m == "isa" or m.startswith("isa.") or m.startswith("_"))
    ))
    return CoreDesign(
        name="Sodor",
        circuit=circuit,
        config=cfg,
        imem_words=tuple(f"icache.data_{i}" for i in range(cfg.imem_depth)),
        dmem_words=tuple(f"dcache.data_{i}" for i in range(cfg.dmem_depth)),
        isa_dmem_words=isa_dmem_words,
        sinks=sinks,
        commit_valid="core.commit",
        halted="core.halted",
        isa_obs_pairs=isa_obs_pairs,
        init_assumption_outputs=init_assumptions,
        blackbox_modules=blackboxes,
        precise_modules=("isa",) if with_shadow else (),
        regfile_registers=tuple(f"core.rf.x{i}" for i in range(1, 8)),
        description="In-order processor; 2-stage pipeline, 1-cycle DCache",
    )

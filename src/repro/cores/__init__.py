"""Processor designs under verification.

Four RV-lite cores mirroring the paper's Table 1 line-up (scaled to the
same 64-byte-cache formal setup the paper uses):

- :func:`~repro.cores.sodor.build_sodor` — 2-stage in-order (secure).
- :func:`~repro.cores.rocket.build_rocket` — 5-stage in-order with BTB,
  I/D caches, TLB/PMA/PTW stubs, CSR, iterative MulDiv (secure: branches
  resolve before younger loads reach memory).
- :func:`~repro.cores.boom.build_boom` — 6-stage with late (commit-time)
  branch resolution and speculative load issue (Spectre-leaky); the
  ``secure=True`` variant (BOOM-S) delays loads until they are the
  oldest unresolved instruction.
- :func:`~repro.cores.prospect.build_prospect` — BOOM-style core with
  the ProSpeCT secret-tracking defense; the two Appendix C bugs can be
  individually enabled, and ProSpeCT-S is the fixed version.

Each builder returns a :class:`~repro.cores.common.CoreDesign` bundling
the circuit with the signal names the contracts package needs.
"""

from repro.cores.isa import (
    Instr,
    Op,
    AluFn,
    assemble,
    encode,
    decode,
    IsaInterpreter,
)
from repro.cores.common import CoreConfig, CoreDesign
from repro.cores.sodor import build_sodor
from repro.cores.rocket import build_rocket
from repro.cores.boom import build_boom
from repro.cores.prospect import build_prospect
from repro.cores.configs import CORE_CONFIG_TABLE, core_registry

__all__ = [
    "Instr",
    "Op",
    "AluFn",
    "assemble",
    "encode",
    "decode",
    "IsaInterpreter",
    "CoreConfig",
    "CoreDesign",
    "build_sodor",
    "build_rocket",
    "build_boom",
    "build_prospect",
    "CORE_CONFIG_TABLE",
    "core_registry",
]

"""BOOM-lite / ProSpeCT-lite: speculative cores with a small ROB.

Pipeline: **F** | **D** | **X** (operands + ALU + MulDiv) | **M** (data
memory, *speculative* load issue) | **ROB** (in-order commit from the
head; conditional branches only resolve after ``branch_resolve_delay``
extra head cycles — modelling BOOM's deep speculation window).

The Spectre-style leak: a conditional branch sits unresolved at the ROB
head while younger loads issue data-memory requests at M.  A transient
load can read the secret region and forward the value to a dependent
transient load whose *address* is then secret — visible on the
``obs_dmem_addr`` sink before the squash.

Variants (all built by :func:`build_speculative_core`):

- **BOOM** — vulnerable as described.
- **BOOM-S** (``secure_loads=True``) — loads stall at M until no older
  unresolved branch remains (the paper's "delay loads until the head of
  the ROB" patch).
- **ProSpeCT(-S)** — loads issue speculatively, but the regfile carries
  a *secret* bit per value (set by loads from the statically-partitioned
  secret region) and the X stage refuses to fire, while transient, any
  instruction whose timing-relevant operand is secret (memory address
  from rs1; multiplier early-exit latency from rs2).  Appendix C's two
  bugs: ``bug_rs1_for_rs2`` consults the wrong source register's secret
  bit in the issue gate (the paper's rs1/rs2 typo: the load-address gate
  reads rs2's status where rs1's is required), and
  ``bug_clear_transient`` clears the X-stage transient flag whenever
  *any* branch resolves, even though another older branch is still in
  flight (the paper's nested-branch scenario, adapted to in-order
  resolution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hdl.builder import ModuleBuilder, Value
from repro.cores.common import (
    CoreConfig,
    CoreDesign,
    MulDiv,
    Regfile,
    alu,
    decode_instruction,
)
from repro.cores.isa import LUI_SHIFT
from repro.cores.isa_machine import build_isa_shadow


@dataclass(frozen=True)
class SpecCoreOptions:
    name: str
    secure_loads: bool = False          # BOOM-S: delay loads to ROB head
    prospect: bool = False              # enable the ProSpeCT defense
    bug_rs1_for_rs2: bool = False       # Appendix C bug 1
    bug_clear_transient: bool = False   # Appendix C bug 2
    branch_resolve_delay: int = 2       # extra head cycles per branch


def build_boom(
    cfg: Optional[CoreConfig] = None,
    secure: bool = False,
    with_shadow: bool = True,
) -> CoreDesign:
    """BOOM-lite (``secure=True`` gives BOOM-S)."""
    opts = SpecCoreOptions(name="BOOM-S" if secure else "BOOM", secure_loads=secure)
    return build_speculative_core(cfg or CoreConfig.formal(), opts, with_shadow)


def build_speculative_core(
    cfg: CoreConfig, opts: SpecCoreOptions, with_shadow: bool = True
) -> CoreDesign:
    xlen, pw, aw = cfg.xlen, cfg.pc_width, cfg.dmem_addr_width
    depth = cfg.rob_depth
    cnt_w = max(1, depth.bit_length())
    b = ModuleBuilder(opts.name.lower().replace("-", "_"))

    with b.scope("frontend"):
        with b.scope("icache"):
            imem = b.mem("data", cfg.imem_depth, 16)
        pc = b.reg("pc", pw)
        fd_valid = b.reg("fd_valid", 1)
        fd_instr = b.reg("fd_instr", 16)
        fd_pc = b.reg("fd_pc", pw)

    with b.scope("dcache"):
        dmem = b.mem("data", cfg.dmem_depth, xlen)

    with b.scope("core"):
        halted = b.reg("halted", 1)
        rf = Regfile(b, cfg, name="rf")
        md = MulDiv(b, cfg, name="muldiv")
        sec_rf: List = []
        if opts.prospect:
            with b.scope("secfile"):
                sec_rf = [b.reg(f"s{i}", 1) for i in range(1, 8)]

        dx_valid = b.reg("dx_valid", 1)
        dx_instr = b.reg("dx_instr", 16)
        dx_pc = b.reg("dx_pc", pw)

        xm_valid = b.reg("xm_valid", 1)
        xm_pc = b.reg("xm_pc", pw)
        xm_instr = b.reg("xm_instr", 16)
        xm_wb_pre = b.reg("xm_wb_pre", xlen)
        xm_addr = b.reg("xm_addr", aw)
        xm_store_val = b.reg("xm_store_val", xlen)
        xm_taken = b.reg("xm_taken", 1)
        xm_target = b.reg("xm_target", pw)
        xm_sec = b.reg("xm_sec", 1)        # result secret flag (ProSpeCT)
        xm_store_sec = b.reg("xm_store_sec", 1)

        with b.scope("rob"):
            rob_valid = [b.reg(f"e{i}_valid", 1) for i in range(depth)]
            rob_instr = [b.reg(f"e{i}_instr", 16) for i in range(depth)]
            rob_pc = [b.reg(f"e{i}_pc", pw) for i in range(depth)]
            rob_wb = [b.reg(f"e{i}_wb", xlen) for i in range(depth)]
            rob_addr = [b.reg(f"e{i}_addr", aw) for i in range(depth)]
            rob_store = [b.reg(f"e{i}_store", xlen) for i in range(depth)]
            rob_taken = [b.reg(f"e{i}_taken", 1) for i in range(depth)]
            rob_target = [b.reg(f"e{i}_target", pw) for i in range(depth)]
            rob_sec = [b.reg(f"e{i}_sec", 1) for i in range(depth)]
            rob_store_sec = [b.reg(f"e{i}_store_sec", 1) for i in range(depth)]
            rob_count = b.reg("count", cnt_w)
            resolve_cnt = b.reg("resolve_cnt", 2)

        dec_x = decode_instruction(b, dx_instr, cfg)
        dec_m = decode_instruction(b, xm_instr, cfg)
        dec_rob = [decode_instruction(b, rob_instr[i], cfg) for i in range(depth)]
        dec_h = dec_rob[0]  # head

        m_valid = b.named("m_valid", xm_valid & ~halted)

        # ---- ROB head: commit and branch resolution ---------------------
        head_valid = b.named("head_valid", rob_valid[0] & ~halted)
        head_is_branch = head_valid & dec_h.is_branch
        resolve_done = resolve_cnt.eq(opts.branch_resolve_delay)
        commit_fire = b.named(
            "commit_fire", head_valid & (~dec_h.is_branch | resolve_done)
        )
        squash = b.named("squash", commit_fire & dec_h.is_branch & rob_taken[0])
        commit = b.named("commit", commit_fire & ~dec_h.is_halt)
        resolve_cnt.drive(b.mux(
            head_is_branch & ~resolve_done, resolve_cnt + 1, b.const(0, 2)
        ))
        any_resolve = b.named("any_resolve", commit_fire & dec_h.is_branch)

        commit_store = b.named("commit_store", commit & dec_h.is_sw)
        rf.write(dec_h.rd, rob_wb[0], commit & dec_h.writes_rd)
        if opts.prospect:
            for i, sreg in enumerate(sec_rf, start=1):
                hit = commit & dec_h.writes_rd & dec_h.rd.eq(i)
                sreg.drive(rob_sec[0], en=hit)

        halt_now = head_valid & dec_h.is_halt
        halted_next = b.named("halted_next", halted | halt_now)
        halted.drive(halted_next)

        # ---- transient status (any unresolved older branch in flight) ---
        rob_branch_bits = []
        for i in range(depth):
            is_br = rob_valid[i] & dec_rob[i].is_branch
            if i == 0:
                is_br = is_br & ~resolve_done  # head branch resolving now
            rob_branch_bits.append(is_br)
        transient_dyn = b.named("transient_dyn", b.any_of(
            *(rob_branch_bits + [m_valid & dec_m.is_branch])
        ))
        any_rob_store = b.any_of(*[
            rob_valid[i] & dec_rob[i].is_sw for i in range(depth)
        ])

        # ---- M stage: speculative data-memory access --------------------
        rob_full = rob_count.eq(depth)
        m_stall_struct = m_valid & rob_full & ~commit_fire
        m_stall_order = m_valid & dec_m.is_lw & any_rob_store
        m_stall_spec = b.const(0, 1)
        if opts.secure_loads:
            m_stall_spec = m_valid & dec_m.is_lw & transient_dyn
        m_stall = b.named("m_stall", m_stall_struct | m_stall_order | m_stall_spec)
        with b.at_scope("dcache"):
            m_load_data = b.named("load_data", dmem.read(Value(b, xm_addr.signal)))
        m_load_req = b.named(
            "m_load_req", m_valid & dec_m.is_lw & ~m_stall & ~squash
        )
        m_wb = b.named("m_wb", b.mux(dec_m.is_lw, m_load_data, xm_wb_pre))
        secret_base = cfg.dmem_depth - cfg.secret_words
        m_load_sec = Value(b, xm_addr.signal).uge(secret_base)
        m_sec = b.named("m_sec", b.mux(dec_m.is_lw, m_load_sec, xm_sec)) \
            if opts.prospect else b.const(0, 1)

        # stores retire from the ROB head
        with b.at_scope("dcache"):
            dmem.write(Value(b, rob_addr[0].signal), rob_store[0], commit_store)

        # ---- X stage -----------------------------------------------------
        x_valid_pre = b.named("x_valid_pre", dx_valid & ~halted)

        def forward(idx: Value) -> Tuple[Value, Value]:
            nonzero = idx.ne(0)
            value = rf.read(idx)
            sec = b.const(0, 1)
            if opts.prospect:
                leaves = [b.const(0, 1)] + [Value(b, s.signal) for s in sec_rf]
                sec = rf._tree(idx, leaves)
            # oldest -> youngest so the youngest match wins
            for i in range(depth):
                hit = rob_valid[i] & dec_rob[i].writes_rd & dec_rob[i].rd.eq(idx) & nonzero
                value = b.mux(hit, rob_wb[i], value)
                if opts.prospect:
                    sec = b.mux(hit, rob_sec[i], sec)
            hit_m = m_valid & dec_m.writes_rd & dec_m.rd.eq(idx) & nonzero
            value = b.mux(hit_m, m_wb, value)
            if opts.prospect:
                sec = b.mux(hit_m, m_sec, sec)
            return value, sec

        rs1_val, rs1_sec = forward(dec_x.rs1)
        rs2_val, rs2_sec = forward(dec_x.rs2)
        store_val, store_sec = forward(dec_x.rd)
        rs1_val = b.named("x_rs1", rs1_val)
        rs2_val = b.named("x_rs2", rs2_val)
        store_val = b.named("x_store", store_val)

        # ---- ProSpeCT defense: block transient secret-timing operands ---
        blocked = b.const(0, 1)
        x_transient_flag = None
        if opts.prospect:
            x_transient_flag = b.reg("x_transient_flag", 1)
            if opts.bug_clear_transient:
                transient_here = x_transient_flag
            else:
                transient_here = transient_dyn
            # The memory address comes from rs1; bug 1 consults the wrong
            # source register's secret bit (the paper's rs1/rs2 typo).
            mem_operand_sec = rs2_sec if opts.bug_rs1_for_rs2 else rs1_sec
            mul_operand_sec = rs2_sec
            blocked = b.named("x_blocked", x_valid_pre & transient_here & (
                (dec_x.is_mem & mem_operand_sec) | (dec_x.is_mul & mul_operand_sec)
            ))

        md_start = x_valid_pre & dec_x.is_mul & ~blocked
        md_stall, _md_done, md_result = md.connect(
            md_start, rs1_val, rs2_val, kill=squash
        )
        stall_x = b.named("stall_x", md_stall | blocked | m_stall)
        fire_x = b.named("fire_x", x_valid_pre & ~stall_x & ~squash)

        if opts.prospect:
            # Correct: transiency is recomputed every cycle.  Bug 2: the
            # flag captured at X entry is cleared when *any* branch
            # resolves, even with another unresolved branch in flight.
            flag_next = b.mux(
                squash, b.const(0, 1),
                b.mux(any_resolve, b.const(0, 1),
                      b.mux(stall_x, x_transient_flag, transient_dyn)),
            )
            x_transient_flag.drive(flag_next)

        with b.scope("alu"):
            alu_out = alu(b, cfg, dec_x.funct, rs1_val, rs2_val)
        seq_pc = dx_pc + 1
        link = b.named("link", seq_pc.zext(xlen) if pw < xlen else seq_pc[xlen - 1:0])
        imm6_raw = dx_instr[5:0]
        imm6_x = imm6_raw.zext(xlen) if xlen >= 6 else imm6_raw[xlen - 1:0]
        lui_val = imm6_x << LUI_SHIFT
        x_result = b.named("x_result", b.priority_mux(
            b.const(0, xlen),
            (dec_x.is_alu, alu_out),
            (dec_x.is_mul, md_result),
            (dec_x.is_addi, rs1_val + dec_x.imm),
            (dec_x.is_jal, link),
            (dec_x.is_lui, lui_val),
            (dec_x.is_sw, store_val),
        ))
        x_sec = b.const(0, 1)
        if opts.prospect:
            x_sec = b.named("x_sec", (dec_x.uses_rs1 & rs1_sec) | (dec_x.uses_rs2 & rs2_sec))
        mem_addr = b.named("x_addr", (rs1_val + dec_x.imm)[aw - 1:0])
        taken = b.named(
            "x_taken",
            (dec_x.is_beq & rs1_val.eq(rs2_val)) | (dec_x.is_bne & rs1_val.ne(rs2_val)),
        )
        branch_target = b.named("x_btarget", seq_pc + dec_x.branch_off)
        redirect_jal = b.named("redirect_jal", fire_x & dec_x.is_jal)
        jal_target = seq_pc + dec_x.jal_off

        # ---- ROB next-state ----------------------------------------------
        enq = b.named("enq", m_valid & ~m_stall & ~squash)
        pop = commit_fire
        count_after = b.named("rob_count_next", b.mux(
            squash, b.const(0, cnt_w),
            (rob_count - pop.zext(cnt_w)) + enq.zext(cnt_w),
        ))
        insert_pos = b.named("insert_pos", rob_count - pop.zext(cnt_w))

        def rob_update(regs, new_value):
            for i in range(depth):
                shifted = regs[i + 1] if i + 1 < depth else regs[i]
                base = b.mux(pop, shifted, regs[i])
                if regs is rob_valid and i + 1 >= depth:
                    base = b.mux(pop, b.const(0, 1), regs[i])
                at_insert = enq & insert_pos.eq(i)
                value = b.mux(at_insert, new_value, base)
                if regs is rob_valid:
                    value = b.mux(squash, b.const(0, 1), value)
                regs[i].drive(value)

        rob_update(rob_valid, b.const(1, 1))
        rob_update(rob_instr, Value(b, xm_instr.signal))
        rob_update(rob_pc, Value(b, xm_pc.signal))
        rob_update(rob_wb, m_wb)
        rob_update(rob_addr, Value(b, xm_addr.signal))
        rob_update(rob_store, Value(b, xm_store_val.signal))
        rob_update(rob_taken, Value(b, xm_taken.signal))
        rob_update(rob_target, Value(b, xm_target.signal))
        rob_update(rob_sec, m_sec)
        rob_update(rob_store_sec, Value(b, xm_store_sec.signal))
        rob_count.drive(count_after)

        # ---- pipeline register updates ------------------------------------
        kill_young = b.named("kill_young", squash | halted_next)
        xm_valid.drive(b.mux(
            kill_young, b.const(0, 1), b.mux(m_stall, xm_valid, fire_x)
        ))
        xm_instr.drive(dx_instr, en=~m_stall)
        xm_pc.drive(dx_pc, en=~m_stall)
        xm_wb_pre.drive(x_result, en=~m_stall)
        xm_addr.drive(mem_addr, en=~m_stall)
        xm_store_val.drive(store_val, en=~m_stall)
        xm_taken.drive(taken, en=~m_stall)
        xm_target.drive(branch_target, en=~m_stall)
        xm_sec.drive(x_sec, en=~m_stall)
        xm_store_sec.drive(store_sec if opts.prospect else b.const(0, 1), en=~m_stall)

        dx_valid.drive(b.mux(
            kill_young | redirect_jal, b.const(0, 1),
            b.mux(stall_x, dx_valid, fd_valid),
        ))
        dx_instr.drive(fd_instr, en=~stall_x)
        dx_pc.drive(fd_pc, en=~stall_x)

    # ---- F stage ----------------------------------------------------------
    with b.at_scope("frontend"):
        with b.at_scope("frontend.icache"):
            fetch_instr = b.named("fetch_instr", imem.read(Value(b, pc.signal)))
        pc_plus1 = pc + 1
        pc.drive(b.priority_mux(
            pc_plus1,
            (squash, rob_target[0]),
            (halted_next | stall_x, Value(b, pc.signal)),
            (redirect_jal, jal_target),
        ))
        fd_valid.drive(b.mux(
            kill_young | redirect_jal, b.const(0, 1),
            b.mux(stall_x, fd_valid, b.const(1, 1)),
        ))
        fd_instr.drive(fetch_instr, en=~stall_x)
        fd_pc.drive(pc, en=~stall_x)

    # ---- microarchitectural observation -----------------------------------
    b.output("obs_imem_addr", Value(b, pc.signal))
    b.output("obs_dmem_laddr", b.mux(m_load_req, Value(b, xm_addr.signal), b.const(0, aw)))
    b.output("obs_dmem_saddr", b.mux(commit_store, Value(b, rob_addr[0].signal), b.const(0, aw)))
    b.output("obs_dmem_req", m_load_req | commit_store)
    b.output("obs_commit", commit)
    sinks = ("obs_imem_addr", "obs_dmem_laddr", "obs_dmem_saddr", "obs_dmem_req", "obs_commit")

    # ---- ISA shadow machine ------------------------------------------------
    isa_dmem_words: tuple = ()
    isa_obs_pairs: tuple = ()
    init_assumptions: tuple = ()
    if with_shadow:
        shadow = build_isa_shadow(b, cfg, imem, commit, scope="isa")
        isa_dmem_words = shadow.dmem_words
        b.output("isa_obs", shadow.obs)
        isa_obs_pairs = ((shadow.step_en_name, "isa.obs"),)
        eq_bits = [dmem.word(i).eq(shadow.dmem.word(i)) for i in range(cfg.dmem_depth)]
        b.output("init_mem_eq", b.all_of(*eq_bits))
        init_assumptions = ("init_mem_eq",)

    circuit = b.build()
    blackboxes = tuple(sorted(
        m for m in circuit.module_paths()
        if not (m == "isa" or m.startswith("isa.") or m.startswith("_"))
    ))
    return CoreDesign(
        name=opts.name,
        circuit=circuit,
        config=cfg,
        imem_words=tuple(f"frontend.icache.data_{i}" for i in range(cfg.imem_depth)),
        dmem_words=tuple(f"dcache.data_{i}" for i in range(cfg.dmem_depth)),
        isa_dmem_words=isa_dmem_words,
        sinks=sinks,
        commit_valid="core.commit",
        halted="core.halted",
        isa_obs_pairs=isa_obs_pairs,
        init_assumption_outputs=init_assumptions,
        blackbox_modules=blackboxes,
        precise_modules=("isa",) if with_shadow else (),
        regfile_registers=tuple(f"core.rf.x{i}" for i in range(1, 8)),
        description=(
            "Out-of-order-style processor; "
            f"{cfg.rob_depth}-entry ROB, commit-time branch resolution"
            + (", delayed loads (secure)" if opts.secure_loads else "")
            + (", ProSpeCT defense" if opts.prospect else "")
        ),
    )

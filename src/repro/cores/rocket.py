"""Rocket-lite: a 5-stage in-order RV-lite core.

Pipeline: **F** (fetch, BTB prediction) | **D** (decode) | **X**
(operand read with full forwarding, ALU, branch resolution, MulDiv) |
**M** (data memory) | **C** (commit / writeback).

Branches resolve in X and squash the younger F/D instructions, so no
wrong-path instruction ever reaches the memory stage — like real
Rocket, the core is secure under the sandboxing contract but a model
checker has to work to see it.

Module hierarchy follows the paper's Table 4: ``frontend`` (with
``frontend.itlb``, ``frontend.icache``, ``frontend.btb``), ``core``
(with ``core.rf``, ``core.alu``, ``core.csr``, ``core.muldiv``),
``dcache`` (with ``dcache.dtlb``, ``dcache.pma``) and ``ptw``.
The TLBs/PMA/PTW are small stub modules: flat translation with a
config register — secrets never reach them, which is exactly what
makes them ideal module-granularity blackboxes in the final scheme.
"""

from __future__ import annotations

from typing import Optional

from repro.hdl.builder import ModuleBuilder, Value
from repro.cores.common import (
    Btb,
    CoreConfig,
    CoreDesign,
    MulDiv,
    Regfile,
    alu,
    decode_instruction,
)
from repro.cores.isa import LUI_SHIFT
from repro.cores.isa_machine import build_isa_shadow


def build_rocket(
    cfg: Optional[CoreConfig] = None, with_shadow: bool = True
) -> CoreDesign:
    cfg = cfg or CoreConfig.formal()
    xlen, pw, aw = cfg.xlen, cfg.pc_width, cfg.dmem_addr_width
    b = ModuleBuilder("rocket")

    # ------------------------------------------------------------------
    # memories and stub translation machinery
    # ------------------------------------------------------------------
    with b.scope("frontend"):
        with b.scope("icache"):
            imem = b.mem("data", cfg.imem_depth, 16)
        with b.scope("itlb"):
            itlb_base = b.reg("base", pw)          # flat translation offset (0)
        btb = Btb(b, cfg, entries=2, name="btb")
        pc = b.reg("pc", pw)
        fd_valid = b.reg("fd_valid", 1)
        fd_instr = b.reg("fd_instr", 16)
        fd_pc = b.reg("fd_pc", pw)
        fd_pred_taken = b.reg("fd_pred_taken", 1)
        fd_pred_target = b.reg("fd_pred_target", pw)

    with b.scope("dcache"):
        dmem = b.mem("data", cfg.dmem_depth, xlen)
        with b.scope("dtlb"):
            dtlb_base = b.reg("base", aw)
        with b.scope("pma"):
            pma_enable = b.reg("enable", 1, reset=1)

    with b.scope("ptw"):
        ptw_state = b.reg("state", 2)              # idle page-table walker stub
        ptw_state.drive(ptw_state)

    with b.scope("core"):
        halted = b.reg("halted", 1)
        rf = Regfile(b, cfg, name="rf")
        md = MulDiv(b, cfg, name="muldiv")
        with b.scope("csr"):
            csr_cycle = b.reg("cycle", xlen)
            csr_instret = b.reg("instret", xlen)

        dx_valid = b.reg("dx_valid", 1)
        dx_instr = b.reg("dx_instr", 16)
        dx_pc = b.reg("dx_pc", pw)
        dx_pred_taken = b.reg("dx_pred_taken", 1)
        dx_pred_target = b.reg("dx_pred_target", pw)

        xm_valid = b.reg("xm_valid", 1)
        xm_instr = b.reg("xm_instr", 16)
        xm_wb_pre = b.reg("xm_wb_pre", xlen)       # ALU/link/LUI/MUL result
        xm_addr = b.reg("xm_addr", aw)
        xm_store_val = b.reg("xm_store_val", xlen)

        mc_valid = b.reg("mc_valid", 1)
        mc_instr = b.reg("mc_instr", 16)
        mc_wb = b.reg("mc_wb", xlen)

        # ---- decode at each stage (cheap: re-decode the carried word) --
        dec_x = decode_instruction(b, dx_instr, cfg)
        dec_m = decode_instruction(b, xm_instr, cfg)
        dec_c = decode_instruction(b, mc_instr, cfg)

        m_valid = b.named("m_valid", xm_valid & ~halted)
        c_valid = b.named("c_valid", mc_valid & ~halted)
        commit = b.named("commit", c_valid & ~dec_c.is_halt)

        # ---- M stage: data memory (non-speculative in Rocket) ----------
        with b.at_scope("dcache"):
            translated_addr = b.named("paddr", Value(b, xm_addr.signal) + dtlb_base)
            m_load_data = b.named("load_data", dmem.read(translated_addr))
        m_is_store = m_valid & dec_m.is_sw & ~(mc_valid & dec_c.is_halt)
        with b.at_scope("dcache"):
            dmem.write(translated_addr, xm_store_val, m_is_store)
        dmem_req = b.named(
            "dmem_req", m_valid & dec_m.is_mem & ~(mc_valid & dec_c.is_halt)
        )
        m_wb = b.named("m_wb", b.mux(dec_m.is_lw, m_load_data, xm_wb_pre))

        # ---- X stage: operand read with forwarding ---------------------
        x_valid_pre = b.named("x_valid_pre", dx_valid & ~halted)

        def forward(idx: Value) -> Value:
            nonzero = idx.ne(0)
            from_m = m_valid & dec_m.writes_rd & dec_m.rd.eq(idx) & nonzero
            from_c = c_valid & dec_c.writes_rd & dec_c.rd.eq(idx) & nonzero
            base = rf.read(idx)
            value = b.mux(from_c, mc_wb, base)
            return b.mux(from_m, m_wb, value)

        rs1_val = b.named("x_rs1", forward(dec_x.rs1))
        rs2_val = b.named("x_rs2", forward(dec_x.rs2))
        store_val = b.named("x_store", forward(dec_x.rd))

        md_start = x_valid_pre & dec_x.is_mul
        md_stall, _md_done, md_result = md.connect(md_start, rs1_val, rs2_val)
        stall = b.named("stall", md_stall)
        fire_x = b.named("fire_x", x_valid_pre & ~stall)

        with b.scope("alu"):
            alu_out = alu(b, cfg, dec_x.funct, rs1_val, rs2_val)
        seq_pc = dx_pc + 1
        link = b.named("link", seq_pc.zext(xlen) if pw < xlen else seq_pc[xlen - 1:0])
        imm6_raw = dx_instr[5:0]
        imm6_x = imm6_raw.zext(xlen) if xlen >= 6 else imm6_raw[xlen - 1:0]
        lui_val = imm6_x << LUI_SHIFT
        x_result = b.named("x_result", b.priority_mux(
            b.const(0, xlen),
            (dec_x.is_alu, alu_out),
            (dec_x.is_mul, md_result),
            (dec_x.is_addi, rs1_val + dec_x.imm),
            (dec_x.is_jal, link),
            (dec_x.is_lui, lui_val),
            (dec_x.is_sw, store_val),
        ))
        mem_addr = b.named("x_addr", (rs1_val + dec_x.imm)[aw - 1:0])

        # ---- branch resolution in X ------------------------------------
        taken = b.named(
            "x_taken",
            (dec_x.is_beq & rs1_val.eq(rs2_val)) | (dec_x.is_bne & rs1_val.ne(rs2_val)),
        )
        actual_next = b.named("x_actual_next", b.priority_mux(
            seq_pc,
            (taken, seq_pc + dec_x.branch_off),
            (dec_x.is_jal, seq_pc + dec_x.jal_off),
        ))
        predicted_next = b.named(
            "x_predicted_next", b.mux(dx_pred_taken, dx_pred_target, seq_pc)
        )
        mispredict = b.named(
            "mispredict", fire_x & actual_next.ne(predicted_next)
        )
        btb.update(fire_x & dec_x.is_branch, dx_pc, taken, actual_next)

        # ---- commit (C stage) ------------------------------------------
        rf.write(dec_c.rd, mc_wb, commit & dec_c.writes_rd)
        halt_now = c_valid & dec_c.is_halt
        halted_next = b.named("halted_next", halted | halt_now)
        halted.drive(halted_next)
        csr_cycle.drive(csr_cycle + 1)
        csr_instret.drive(csr_instret + 1, en=commit)

        # ---- pipeline register updates ----------------------------------
        xm_valid.drive(b.mux(halted_next, b.const(0, 1), fire_x))
        xm_instr.drive(dx_instr, en=~stall)
        xm_wb_pre.drive(x_result, en=~stall)
        xm_addr.drive(mem_addr, en=~stall)
        xm_store_val.drive(store_val, en=~stall)

        mc_valid.drive(b.mux(halted_next, b.const(0, 1), m_valid))
        mc_instr.drive(xm_instr)
        mc_wb.drive(m_wb)

        dx_valid.drive(b.mux(
            halted_next | mispredict, b.const(0, 1),
            b.mux(stall, dx_valid, fd_valid),
        ))
        dx_instr.drive(fd_instr, en=~stall)
        dx_pc.drive(fd_pc, en=~stall)
        dx_pred_taken.drive(fd_pred_taken, en=~stall)
        dx_pred_target.drive(fd_pred_target, en=~stall)

    # ---- F stage ----------------------------------------------------
    with b.at_scope("frontend"):
        fetch_pc = b.named("fetch_pc", Value(b, pc.signal) + itlb_base)
        with b.at_scope("frontend.icache"):
            fetch_instr = b.named("fetch_instr", imem.read(fetch_pc))
        pred_hit, pred_target = btb.predict(fetch_pc)
        pc_plus1 = pc + 1
        next_fetch = b.named("next_fetch", b.mux(pred_hit, pred_target, pc_plus1))
        pc.drive(b.mux(
            halted_next | stall, pc,
            b.mux(mispredict, actual_next, next_fetch),
        ))
        fd_valid.drive(b.mux(
            halted_next | mispredict, b.const(0, 1),
            b.mux(stall, fd_valid, b.const(1, 1)),
        ))
        fd_instr.drive(fetch_instr, en=~stall)
        fd_pc.drive(pc, en=~stall)
        fd_pred_taken.drive(pred_hit, en=~stall)
        fd_pred_target.drive(pred_target, en=~stall)
        itlb_base.drive(itlb_base)
    with b.at_scope("dcache"):
        dtlb_base.drive(dtlb_base)
        pma_enable.drive(pma_enable)

    # ---- microarchitectural observation --------------------------------
    obs_imem_addr = b.output("obs_imem_addr", fetch_pc)
    obs_dmem_addr = b.output(
        "obs_dmem_addr", b.mux(dmem_req, translated_addr, b.const(0, aw))
    )
    obs_dmem_req = b.output("obs_dmem_req", dmem_req)
    obs_commit = b.output("obs_commit", commit)
    sinks = ("obs_imem_addr", "obs_dmem_addr", "obs_dmem_req", "obs_commit")

    # ---- ISA shadow machine ---------------------------------------------
    isa_dmem_words: tuple = ()
    isa_obs_pairs: tuple = ()
    init_assumptions: tuple = ()
    if with_shadow:
        shadow = build_isa_shadow(b, cfg, imem, commit, scope="isa")
        isa_dmem_words = shadow.dmem_words
        b.output("isa_obs", shadow.obs)
        isa_obs_pairs = ((shadow.step_en_name, "isa.obs"),)
        eq_bits = [dmem.word(i).eq(shadow.dmem.word(i)) for i in range(cfg.dmem_depth)]
        b.output("init_mem_eq", b.all_of(*eq_bits))
        init_assumptions = ("init_mem_eq",)

    circuit = b.build()
    blackboxes = tuple(sorted(
        m for m in circuit.module_paths()
        if not (m == "isa" or m.startswith("isa.") or m.startswith("_"))
    ))
    return CoreDesign(
        name="Rocket",
        circuit=circuit,
        config=cfg,
        imem_words=tuple(f"frontend.icache.data_{i}" for i in range(cfg.imem_depth)),
        dmem_words=tuple(f"dcache.data_{i}" for i in range(cfg.dmem_depth)),
        isa_dmem_words=isa_dmem_words,
        sinks=sinks,
        commit_valid="core.commit",
        halted="core.halted",
        isa_obs_pairs=isa_obs_pairs,
        init_assumption_outputs=init_assumptions,
        blackbox_modules=blackboxes,
        precise_modules=("isa",) if with_shadow else (),
        regfile_registers=tuple(f"core.rf.x{i}" for i in range(1, 8)),
        description="In-order processor; 5-stage pipeline, 2-cycle DCache",
    )

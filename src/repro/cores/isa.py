"""RV-lite: a compact RISC-V-flavoured ISA.

16-bit fixed-width instructions, 8 general-purpose registers (``r0``
hardwired to zero), parameterizable XLEN.  The encoding:

====  ==========  =========================================
bits  field       meaning
====  ==========  =========================================
15:12 op          opcode
11:9  rd          destination (or store-data register, or branch offset hi)
8:6   rs1         first source
5:3   rs2         second source
2:0   funct       ALU function (or branch offset lo)
5:0   imm6        sign-extended immediate (I-type)
====  ==========  =========================================

Opcodes: ALU (R-type, funct = add/sub/and/or/xor/slt/sll/srl), ADDI,
LW, SW, BEQ, BNE, JAL, LUI, MUL, HALT.  Branch offsets are the 6-bit
concatenation ``{rd, funct}``, PC-relative to the next instruction.

This module provides the binary encoding, a two-pass assembler with
labels, and the architectural (1-cycle) interpreter that is both the
reference model for core testing and the semantics the ISA shadow
machine circuit implements.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union


class Op(enum.IntEnum):
    ALU = 0x0
    ADDI = 0x1
    LW = 0x2
    SW = 0x3
    BEQ = 0x4
    BNE = 0x5
    JAL = 0x6
    LUI = 0x7
    MUL = 0x8
    HALT = 0xF


class AluFn(enum.IntEnum):
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SLT = 5   # unsigned set-less-than
    SLL = 6
    SRL = 7


NUM_REGS = 8
#: How far LUI shifts its immediate (fills upper bits on small XLEN).
LUI_SHIFT = 3


@dataclass(frozen=True)
class Instr:
    """A decoded instruction."""

    op: Op
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    funct: int = 0
    imm: int = 0     # sign-extended 6-bit immediate / branch offset

    def __str__(self) -> str:
        if self.op is Op.ALU:
            return f"{AluFn(self.funct).name.lower()} r{self.rd}, r{self.rs1}, r{self.rs2}"
        if self.op is Op.ADDI:
            return f"addi r{self.rd}, r{self.rs1}, {self.imm}"
        if self.op is Op.LW:
            return f"lw r{self.rd}, {self.imm}(r{self.rs1})"
        if self.op is Op.SW:
            return f"sw r{self.rd}, {self.imm}(r{self.rs1})"
        if self.op in (Op.BEQ, Op.BNE):
            return f"{self.op.name.lower()} r{self.rs1}, r{self.rs2}, {self.imm}"
        if self.op is Op.JAL:
            return f"jal r{self.rd}, {self.imm}"
        if self.op is Op.LUI:
            return f"lui r{self.rd}, {self.imm}"
        if self.op is Op.MUL:
            return f"mul r{self.rd}, r{self.rs1}, r{self.rs2}"
        return "halt"


def _sext6(value: int) -> int:
    value &= 0x3F
    return value - 0x40 if value & 0x20 else value


def encode(instr: Instr) -> int:
    """Encode to the 16-bit binary form."""
    op = instr.op
    word = (int(op) & 0xF) << 12
    if op is Op.ALU or op is Op.MUL:
        word |= (instr.rd & 7) << 9 | (instr.rs1 & 7) << 6 | (instr.rs2 & 7) << 3
        word |= instr.funct & 7
    elif op in (Op.ADDI, Op.LW, Op.SW):
        word |= (instr.rd & 7) << 9 | (instr.rs1 & 7) << 6 | (instr.imm & 0x3F)
    elif op in (Op.BEQ, Op.BNE):
        off = instr.imm & 0x3F
        word |= ((off >> 3) & 7) << 9 | (instr.rs1 & 7) << 6 | (instr.rs2 & 7) << 3
        word |= off & 7
    elif op in (Op.JAL, Op.LUI):
        word |= (instr.rd & 7) << 9 | (instr.imm & 0x3F)
    return word


def decode(word: int) -> Instr:
    """Decode a 16-bit binary instruction."""
    word &= 0xFFFF
    op_bits = (word >> 12) & 0xF
    try:
        op = Op(op_bits)
    except ValueError:
        op = Op.HALT  # unknown encodings behave as HALT
    rd = (word >> 9) & 7
    rs1 = (word >> 6) & 7
    rs2 = (word >> 3) & 7
    funct = word & 7
    imm6 = _sext6(word & 0x3F)
    if op is Op.ALU or op is Op.MUL:
        return Instr(op, rd=rd, rs1=rs1, rs2=rs2, funct=funct)
    if op in (Op.ADDI, Op.LW, Op.SW):
        return Instr(op, rd=rd, rs1=rs1, imm=imm6)
    if op in (Op.BEQ, Op.BNE):
        off = _sext6(((rd & 7) << 3) | funct)
        return Instr(op, rs1=rs1, rs2=rs2, imm=off)
    if op in (Op.JAL, Op.LUI):
        return Instr(op, rd=rd, imm=imm6 if op is Op.JAL else (word & 0x3F))
    return Instr(Op.HALT)


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------

class AsmError(ValueError):
    pass


_ALU_NAMES = {fn.name.lower(): fn for fn in AluFn}


def assemble(source: Union[str, Sequence[str]]) -> List[int]:
    """Two-pass assembler with labels.

    Syntax (one instruction per line, ``;`` or ``#`` comments)::

        loop:
            lw   r1, 0(r2)
            addi r2, r2, 1
            add  r3, r3, r1
            bne  r2, r4, loop
            halt

    ``li rX, imm`` expands to ``addi rX, r0, imm`` (imm must fit 6
    signed bits) and ``nop`` to ``addi r0, r0, 0``.
    """
    lines = source.splitlines() if isinstance(source, str) else list(source)
    cleaned: List[Tuple[Optional[str], Optional[str]]] = []  # (label, stmt)
    for raw in lines:
        line = re.split(r"[;#]", raw, 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            cleaned.append((label.strip(), None))
            line = line.strip()
        if line:
            cleaned.append((None, line))

    labels: Dict[str, int] = {}
    pc = 0
    for label, stmt in cleaned:
        if label is not None:
            if label in labels:
                raise AsmError(f"duplicate label {label!r}")
            labels[label] = pc
        else:
            pc += 1

    out: List[int] = []
    pc = 0
    for label, stmt in cleaned:
        if stmt is None:
            continue
        out.append(encode(_parse_line(stmt, pc, labels)))
        pc += 1
    return out


def _reg(token: str) -> int:
    token = token.strip().lower()
    match = re.fullmatch(r"r([0-7])", token)
    if not match:
        raise AsmError(f"bad register {token!r}")
    return int(match.group(1))


def _imm(token: str, labels: Mapping[str, int], pc: int, relative: bool) -> int:
    token = token.strip()
    if token in labels:
        return labels[token] - (pc + 1) if relative else labels[token]
    try:
        value = int(token, 0)
    except ValueError:
        raise AsmError(f"bad immediate or unknown label {token!r}") from None
    return value


def _check6(value: int, what: str) -> int:
    if not (-32 <= value <= 31):
        raise AsmError(f"{what} {value} does not fit in 6 signed bits")
    return value


def _parse_line(stmt: str, pc: int, labels: Mapping[str, int]) -> Instr:
    parts = stmt.replace(",", " ").split()
    mnemonic = parts[0].lower()
    args = parts[1:]

    if mnemonic == "nop":
        return Instr(Op.ADDI, rd=0, rs1=0, imm=0)
    if mnemonic == "li":
        return Instr(Op.ADDI, rd=_reg(args[0]), rs1=0,
                     imm=_check6(_imm(args[1], labels, pc, False), "li immediate"))
    if mnemonic == "halt":
        return Instr(Op.HALT)
    if mnemonic in _ALU_NAMES:
        return Instr(Op.ALU, rd=_reg(args[0]), rs1=_reg(args[1]), rs2=_reg(args[2]),
                     funct=int(_ALU_NAMES[mnemonic]))
    if mnemonic == "mul":
        return Instr(Op.MUL, rd=_reg(args[0]), rs1=_reg(args[1]), rs2=_reg(args[2]))
    if mnemonic == "addi":
        return Instr(Op.ADDI, rd=_reg(args[0]), rs1=_reg(args[1]),
                     imm=_check6(_imm(args[2], labels, pc, False), "immediate"))
    if mnemonic in ("lw", "sw"):
        match = re.fullmatch(r"(-?\w+)\((r[0-7])\)", args[1].strip())
        if not match:
            raise AsmError(f"bad memory operand {args[1]!r}")
        imm = _check6(_imm(match.group(1), labels, pc, False), "offset")
        base = _reg(match.group(2))
        op = Op.LW if mnemonic == "lw" else Op.SW
        return Instr(op, rd=_reg(args[0]), rs1=base, imm=imm)
    if mnemonic in ("beq", "bne"):
        off = _check6(_imm(args[2], labels, pc, True), "branch offset")
        op = Op.BEQ if mnemonic == "beq" else Op.BNE
        return Instr(op, rs1=_reg(args[0]), rs2=_reg(args[1]), imm=off)
    if mnemonic == "jal":
        off = _check6(_imm(args[1], labels, pc, True), "jump offset")
        return Instr(Op.JAL, rd=_reg(args[0]), imm=off)
    if mnemonic == "j":
        off = _check6(_imm(args[0], labels, pc, True), "jump offset")
        return Instr(Op.JAL, rd=0, imm=off)
    if mnemonic == "lui":
        value = _imm(args[1], labels, pc, False)
        if not (0 <= value <= 63):
            raise AsmError(f"lui immediate {value} out of range 0..63")
        return Instr(Op.LUI, rd=_reg(args[0]), imm=value)
    raise AsmError(f"unknown mnemonic {mnemonic!r}")


# ---------------------------------------------------------------------------
# Architectural interpreter (the contract's 1-cycle ISA machine)
# ---------------------------------------------------------------------------

class IsaInterpreter:
    """Executes RV-lite programs one instruction per step.

    Memory is word-addressed and wraps at ``dmem_depth``; the PC wraps
    at ``imem_depth``.  This matches the ISA shadow machine circuit
    bit for bit.
    """

    def __init__(
        self,
        program: Sequence[int],
        xlen: int = 8,
        imem_depth: int = 16,
        dmem_depth: int = 8,
        dmem: Optional[Mapping[int, int]] = None,
    ) -> None:
        if len(program) > imem_depth:
            raise ValueError(f"program ({len(program)} words) exceeds imem depth {imem_depth}")
        self.xlen = xlen
        self.mask = (1 << xlen) - 1
        self.imem_depth = imem_depth
        self.dmem_depth = dmem_depth
        self.imem = [program[i] if i < len(program) else encode(Instr(Op.HALT))
                     for i in range(imem_depth)]
        self.dmem = [0] * dmem_depth
        for addr, value in (dmem or {}).items():
            self.dmem[addr % dmem_depth] = value & self.mask
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.halted = False
        self.instret = 0
        #: architectural observation trace: writeback value per commit
        self.obs: List[int] = []

    # ------------------------------------------------------------------
    def _write(self, rd: int, value: int) -> int:
        value &= self.mask
        if rd != 0:
            self.regs[rd] = value
        return value

    def step(self) -> Optional[Instr]:
        """Execute one instruction; returns it (None when halted)."""
        if self.halted:
            return None
        instr = decode(self.imem[self.pc % self.imem_depth])
        next_pc = (self.pc + 1) % self.imem_depth
        wb = 0
        op = instr.op
        rs1 = self.regs[instr.rs1]
        rs2 = self.regs[instr.rs2]
        if op is Op.ALU:
            wb = self._write(instr.rd, self._alu(instr.funct, rs1, rs2))
        elif op is Op.MUL:
            wb = self._write(instr.rd, (rs1 * rs2) & self.mask)
        elif op is Op.ADDI:
            wb = self._write(instr.rd, rs1 + instr.imm)
        elif op is Op.LW:
            addr = (rs1 + instr.imm) % self.dmem_depth
            wb = self._write(instr.rd, self.dmem[addr])
        elif op is Op.SW:
            addr = (rs1 + instr.imm) % self.dmem_depth
            self.dmem[addr] = self.regs[instr.rd]
            wb = self.regs[instr.rd]
        elif op is Op.BEQ:
            if rs1 == rs2:
                next_pc = (self.pc + 1 + instr.imm) % self.imem_depth
        elif op is Op.BNE:
            if rs1 != rs2:
                next_pc = (self.pc + 1 + instr.imm) % self.imem_depth
        elif op is Op.JAL:
            wb = self._write(instr.rd, (self.pc + 1) % self.imem_depth)
            next_pc = (self.pc + 1 + instr.imm) % self.imem_depth
        elif op is Op.LUI:
            wb = self._write(instr.rd, instr.imm << LUI_SHIFT)
        elif op is Op.HALT:
            self.halted = True
            return instr
        self.pc = next_pc
        self.instret += 1
        self.obs.append(wb)
        return instr

    def _alu(self, funct: int, a: int, b: int) -> int:
        fn = AluFn(funct)
        if fn is AluFn.ADD:
            return a + b
        if fn is AluFn.SUB:
            return a - b
        if fn is AluFn.AND:
            return a & b
        if fn is AluFn.OR:
            return a | b
        if fn is AluFn.XOR:
            return a ^ b
        if fn is AluFn.SLT:
            return int(a < b)
        if fn is AluFn.SLL:
            sh = b % self.xlen if b < self.xlen else b
            return 0 if sh >= self.xlen else a << sh
        sh = b
        return 0 if sh >= self.xlen else a >> sh

    def run(self, max_steps: int = 10000) -> int:
        """Run until HALT; returns the number of retired instructions."""
        for _ in range(max_steps):
            if self.halted:
                break
            self.step()
        return self.instret

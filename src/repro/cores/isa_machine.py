"""The single-cycle ISA reference machine as shadow logic.

Implements the contract's 1-cycle machine (Appendix B) as a circuit
living alongside the DUV: it shares the DUV's instruction memory
(read-only), keeps its own architectural register file, PC and data
memory, and executes exactly one instruction whenever the DUV commits
one.  Its observation — the committed writeback value, per the
sandboxing contract — is what the contract constraint check assumes
untainted.

The machine executes everything (including MUL) combinationally in the
commit cycle, which is what "1-cycle ISA machine" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.hdl.builder import Memory, ModuleBuilder, Value
from repro.cores.common import (
    CoreConfig,
    Regfile,
    alu,
    combinational_multiply,
    decode_instruction,
    resize_signed,
)
from repro.cores.isa import LUI_SHIFT


@dataclass
class IsaShadow:
    """Handles exposed by the ISA shadow machine."""

    scope: str
    obs: Value            # committed writeback value (0 when not stepping)
    step_en_name: str     # condition under which the machine stepped
    dmem: Memory
    dmem_words: Tuple[str, ...]
    pc_name: str
    halted_name: str


def build_isa_shadow(
    b: ModuleBuilder,
    cfg: CoreConfig,
    imem: Memory,
    step_en: Value,
    scope: str = "isa",
) -> IsaShadow:
    """Instantiate the shadow ISA machine inside ``b`` under ``scope``.

    Args:
        imem: the DUV's instruction memory (shared, read-only).
        step_en: 1 when the DUV commits an instruction this cycle.
    """
    xlen = cfg.xlen
    with b.scope(scope):
        pc = b.reg("pc", cfg.pc_width)
        halted = b.reg("halted", 1)
        rf = Regfile(b, cfg, name="rf")
        dmem = b.mem("dmem", cfg.dmem_depth, xlen)

        instr = b.named("instr", imem.read(pc))
        dec = decode_instruction(b, instr, cfg)
        rs1_val = b.named("rs1_val", rf.read(dec.rs1))
        rs2_val = b.named("rs2_val", rf.read(dec.rs2))
        store_val = b.named("store_val", rf.read(dec.rd))

        step = b.named("step", step_en & ~halted)

        # Memory access (combinational read; write gated by step).
        addr_full = rs1_val + dec.imm
        mem_addr = b.named("mem_addr", addr_full[cfg.dmem_addr_width - 1:0])
        load_data = b.named("load_data", dmem.read(mem_addr))
        dmem.write(mem_addr, store_val, step & dec.is_sw)

        # Writeback value.
        alu_out = alu(b, cfg, dec.funct, rs1_val, rs2_val)
        mul_out = combinational_multiply(b, cfg, rs1_val, rs2_val)
        seq_pc_early = pc + 1
        link = b.named("link", seq_pc_early.zext(xlen) if cfg.pc_width < xlen
                       else seq_pc_early[xlen - 1:0])
        imm6_raw = instr[5:0]
        imm6_x = imm6_raw.zext(xlen) if xlen >= 6 else imm6_raw[xlen - 1:0]
        lui_val = imm6_x << LUI_SHIFT
        wb = b.priority_mux(
            b.const(0, xlen),
            (dec.is_alu, alu_out),
            (dec.is_mul, mul_out),
            (dec.is_addi, rs1_val + dec.imm),
            (dec.is_lw, load_data),
            (dec.is_sw, store_val),
            (dec.is_jal, link),
            (dec.is_lui, lui_val),
        )
        wb = b.named("wb", wb)
        rf.write(dec.rd, wb, step & dec.writes_rd)

        # Next PC.
        taken = b.named(
            "taken",
            (dec.is_beq & rs1_val.eq(rs2_val)) | (dec.is_bne & rs1_val.ne(rs2_val)),
        )
        seq_pc = seq_pc_early
        branch_target = seq_pc + dec.branch_off
        jal_target = seq_pc + dec.jal_off
        next_pc = b.priority_mux(
            seq_pc,
            (taken, branch_target),
            (dec.is_jal, jal_target),
        )
        pc.drive(next_pc, en=step)
        halted.drive(b.const(1, 1), en=step_en & dec.is_halt & ~halted)

        # Architectural observation: writeback data of committed instrs.
        committed = b.named("committed", step & ~dec.is_halt)
        obs = b.named("obs", b.mux(committed, wb, b.const(0, xlen)))

    prefix = b.current_module
    full = (prefix + "." if prefix else "") + scope
    return IsaShadow(
        scope=full,
        obs=obs,
        step_en_name=f"{full}.committed",
        dmem=dmem,
        dmem_words=tuple(f"{full}.dmem_{i}" for i in range(cfg.dmem_depth)),
        pc_name=f"{full}.pc",
        halted_name=f"{full}.halted",
    )

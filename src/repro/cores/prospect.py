"""ProSpeCT-lite: speculative core with the ProSpeCT defense.

The core is the speculative (BOOM-style) pipeline of
:mod:`repro.cores.boom` with ProSpeCT's secret-tracking defense enabled:
memory is statically partitioned, loaded values carry a *secret* bit,
and transient instructions whose timing-relevant operands are secret
are blocked from issuing.

The two implementation bugs the paper found (Appendix C) are seeded and
individually controllable:

- **bug 1** (``bug_rs1_for_rs2``): the issue-gating logic consults the
  secret status of ``rs1`` where ``rs2``'s is required (the multiplier's
  early-exit latency depends on rs2), so a transient MUL with a secret
  multiplier slips past the defense and leaks through timing.
- **bug 2** (``bug_clear_transient``): when a branch resolves, the
  transient flag of the instruction waiting in X is cleared even though
  *another* older branch is still unresolved (the paper's nested-branch
  scenario, adapted to in-order resolution), so a blocked
  secret-address load fires while still speculative.

``build_prospect(secure=True)`` (ProSpeCT-S) fixes both bugs.
"""

from __future__ import annotations

from typing import Optional

from repro.cores.boom import SpecCoreOptions, build_speculative_core
from repro.cores.common import CoreConfig, CoreDesign


def build_prospect(
    cfg: Optional[CoreConfig] = None,
    secure: bool = False,
    bug1: Optional[bool] = None,
    bug2: Optional[bool] = None,
    with_shadow: bool = True,
) -> CoreDesign:
    """Build ProSpeCT-lite.

    ``secure=True`` builds ProSpeCT-S (both bugs fixed).  Individual
    bugs can be toggled with ``bug1``/``bug2`` for targeted experiments.
    """
    if bug1 is None:
        bug1 = not secure
    if bug2 is None:
        bug2 = not secure
    name = "ProSpeCT-S" if (not bug1 and not bug2) else "ProSpeCT"
    opts = SpecCoreOptions(
        name=name,
        secure_loads=False,
        prospect=True,
        bug_rs1_for_rs2=bug1,
        bug_clear_transient=bug2,
    )
    return build_speculative_core(cfg or CoreConfig.formal(), opts, with_shadow)

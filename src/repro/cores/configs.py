"""Core registry and the Table 1 configuration summary."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cores.common import CoreConfig, CoreDesign
from repro.cores.sodor import build_sodor
from repro.cores.rocket import build_rocket
from repro.cores.boom import build_boom
from repro.cores.prospect import build_prospect


def core_registry() -> Dict[str, Callable[..., CoreDesign]]:
    """Name -> builder for every evaluated core (Table 1 + secure variants)."""
    return {
        "Sodor": lambda cfg=None, with_shadow=True: build_sodor(cfg, with_shadow),
        "Rocket": lambda cfg=None, with_shadow=True: build_rocket(cfg, with_shadow),
        "BOOM": lambda cfg=None, with_shadow=True: build_boom(cfg, False, with_shadow),
        "BOOM-S": lambda cfg=None, with_shadow=True: build_boom(cfg, True, with_shadow),
        "ProSpeCT": lambda cfg=None, with_shadow=True: build_prospect(cfg, False, with_shadow=with_shadow),
        "ProSpeCT-S": lambda cfg=None, with_shadow=True: build_prospect(cfg, True, with_shadow=with_shadow),
    }


#: Table 1 rows: paper configuration vs. this reproduction's scaled one.
CORE_CONFIG_TABLE = [
    {
        "core": "Sodor",
        "kind": "In-order processor",
        "paper_config": "2-stage pipeline, 1-cycle DCache; 9 modules, 6k LoC",
        "repro_config": "2-stage pipeline, 1-cycle DCache (register-array memories)",
    },
    {
        "core": "Rocket",
        "kind": "In-order processor",
        "paper_config": "5-stage pipeline, 2-cycle DCache; 43 modules, 18k LoC",
        "repro_config": "5-stage pipeline, BTB, TLB/PMA/PTW stubs, iterative MulDiv, CSR",
    },
    {
        "core": "BOOM / BOOM-S",
        "kind": "Out-of-order processor",
        "paper_config": "16-entry ROB, 2-cycle DCache; 105 modules, 26k LoC",
        "repro_config": "4-entry ROB, commit-time branch resolution, speculative loads"
                        " (BOOM-S delays loads until no older branch is unresolved)",
    },
    {
        "core": "ProSpeCT / ProSpeCT-S",
        "kind": "Out-of-order processor with speculative defense",
        "paper_config": "16-entry ROB; 41 modules, 8k LoC",
        "repro_config": "4-entry ROB, per-register secret bits, transient issue gating"
                        " (two Appendix C bugs seeded; -S is fixed)",
    },
]


def format_table1() -> str:
    lines = ["Table 1: processor configurations (paper -> reproduction)", "-" * 72]
    for row in CORE_CONFIG_TABLE:
        lines.append(f"{row['core']:<22} {row['kind']}")
        lines.append(f"{'':<22}   paper: {row['paper_config']}")
        lines.append(f"{'':<22}   repro: {row['repro_config']}")
    return "\n".join(lines)

"""Formal equivalence checking between two circuits (miter + BMC/PDR).

Used to validate this library's own transformation passes — gate
lowering and netlist simplification — formally rather than only by
random simulation, and available to users for checking hand
optimizations of their designs.

Two circuits are *sequentially equivalent* here when, given identical
input streams (and identical initial values for same-named symbolic
registers), their same-named outputs agree at every cycle.  The checker
builds a miter: both circuits side by side, inputs shared, and a 1-bit
``miter_bad`` output that is 1 whenever any compared output pair
disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Set, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit
from repro.hdl.signals import Signal, SignalKind
from repro.formal.bmc import BmcStatus, bounded_model_check
from repro.formal.counterexample import Counterexample
from repro.formal.pdr import PdrStatus, pdr_prove
from repro.formal.product import rename_circuit
from repro.formal.properties import SafetyProperty


class EquivalenceError(ValueError):
    pass


@dataclass
class Miter:
    circuit: Circuit
    prop: SafetyProperty
    compared_outputs: Tuple[str, ...]


@dataclass
class EquivalenceResult:
    equivalent: Optional[bool]     # None = inconclusive (budget)
    bound: int                     # depth checked when bounded
    proved: bool                   # True when unboundedly proven
    counterexample: Optional[Counterexample] = None


def build_miter(
    left: Circuit,
    right: Circuit,
    outputs: Optional[Iterable[str]] = None,
    symbolic_registers: Iterable[str] = (),
) -> Miter:
    """Construct the miter circuit for two same-interface designs."""
    left_inputs = {s.name: s.width for s in left.inputs}
    right_inputs = {s.name: s.width for s in right.inputs}
    if left_inputs != right_inputs:
        raise EquivalenceError(
            f"input interfaces differ: {sorted(left_inputs)} vs {sorted(right_inputs)}"
        )
    left_outs = {s.name: s.width for s in left.outputs}
    right_outs = {s.name: s.width for s in right.outputs}
    compared = tuple(sorted(outputs if outputs is not None
                            else set(left_outs) & set(right_outs)))
    if not compared:
        raise EquivalenceError("no common outputs to compare")
    for name in compared:
        if left_outs.get(name) != right_outs.get(name):
            raise EquivalenceError(f"output {name!r} widths differ or missing")

    shared = set(left_inputs)
    copy_l = rename_circuit(left, "l", shared)
    copy_r = rename_circuit(right, "r", shared)
    miter = Circuit(f"miter.{left.name}.{right.name}")
    for source in (copy_l, copy_r):
        for sig in source.signals.values():
            miter.add_signal(sig)
        for reg in source.registers:
            miter.add_register(reg)
        for cell in source.cells:
            miter.add_cell(cell)

    diff_bits = []
    for name in compared:
        out = Signal(f"_miter.neq.{name}", 1, SignalKind.WIRE, module="_miter")
        miter.add_cell(Cell(CellOp.NEQ, out,
                            (miter.signal(f"l.{name}"), miter.signal(f"r.{name}")),
                            module="_miter"))
        diff_bits.append(out)
    bad = Signal("miter_bad", 1, SignalKind.OUTPUT, module="_miter")
    if len(diff_bits) == 1:
        miter.add_cell(Cell(CellOp.BUF, bad, (diff_bits[0],), module="_miter"))
    else:
        miter.add_cell(Cell(CellOp.OR, bad, tuple(diff_bits), module="_miter"))
    miter.validate()

    # Symbolic registers: same-named registers start equal-and-free via
    # an init assumption; others use their reset values.
    symbolic: Set[str] = set()
    init_assumptions: Tuple[str, ...] = ()
    symbolic_registers = list(symbolic_registers)
    if symbolic_registers:
        eq_bits = []
        for name in symbolic_registers:
            symbolic.add(f"l.{name}")
            symbolic.add(f"r.{name}")
            out = Signal(f"_miter.eqinit.{name}", 1, SignalKind.OUTPUT, module="_miter")
            miter.add_cell(Cell(CellOp.EQ, out,
                                (miter.signal(f"l.{name}"), miter.signal(f"r.{name}")),
                                module="_miter"))
            eq_bits.append(out.name)
        init_assumptions = tuple(eq_bits)
    prop = SafetyProperty(
        name=f"equiv.{left.name}",
        bad="miter_bad",
        init_assumptions=init_assumptions,
        symbolic_registers=frozenset(symbolic),
    )
    return Miter(miter, prop, compared)


def check_equivalence(
    left: Circuit,
    right: Circuit,
    outputs: Optional[Iterable[str]] = None,
    symbolic_registers: Iterable[str] = (),
    max_bound: int = 10,
    time_limit: Optional[float] = None,
    prove: bool = False,
) -> EquivalenceResult:
    """Check (bounded, or with ``prove=True`` unbounded) equivalence."""
    miter = build_miter(left, right, outputs, symbolic_registers)
    if prove:
        pdr = pdr_prove(miter.circuit, miter.prop, time_limit=time_limit)
        if pdr.status is PdrStatus.PROVED:
            return EquivalenceResult(True, -1, True)
        if pdr.status is PdrStatus.COUNTEREXAMPLE:
            return EquivalenceResult(False, pdr.frames, False, pdr.counterexample)
        return EquivalenceResult(None, pdr.frames, False)
    bmc = bounded_model_check(miter.circuit, miter.prop, max_bound=max_bound,
                              time_limit=time_limit)
    if bmc.status is BmcStatus.COUNTEREXAMPLE:
        return EquivalenceResult(False, bmc.bound, False, bmc.counterexample)
    if bmc.status is BmcStatus.BOUND_REACHED:
        return EquivalenceResult(True, bmc.bound, False)
    return EquivalenceResult(None, bmc.bound, False)

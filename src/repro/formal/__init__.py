"""Formal verification substrate.

This package substitutes for the commercial model checker (JasperGold)
used in the paper: a from-scratch CDCL SAT solver, Tseitin encoding of
gate-level circuits, bounded model checking (the paper's ``Ht`` bounded
engine) and k-induction (the paper's unbounded engines), plus
self-composition product construction for the baseline comparison and
for exact false-taint validation.
"""

from repro.formal.sat.cnf import CNF
from repro.formal.sat.solver import Solver, SolveStatus, SolveResult
from repro.formal.cache import (
    CachedVerdict,
    CacheStats,
    SolveCache,
    ThreadSafeSolveCache,
    circuit_fingerprint,
    solve_key,
    valid_entry,
)
from repro.formal.encode import FrameEncoder
from repro.formal.frameprog import FrameProgram, compile_frame_program
from repro.formal.unroll import Unroller
from repro.formal.properties import SafetyProperty
from repro.formal.counterexample import Counterexample
from repro.formal.bmc import BmcResult, BmcStatus, bounded_model_check
from repro.formal.induction import InductionResult, k_induction
from repro.formal.pdr import PdrResult, PdrStatus, pdr_prove
from repro.formal.certificate import (
    Certificate,
    CertificateCheck,
    check_certificate,
)
from repro.formal.portfolio import (
    ALL_ENGINE_NAMES,
    ENGINE_NAMES,
    EngineReport,
    PortfolioConfig,
    PortfolioResult,
    PortfolioStatus,
    verify_portfolio,
)
from repro.formal.product import self_composition, rename_circuit
from repro.formal.equivalence import (
    EquivalenceResult,
    build_miter,
    check_equivalence,
)
from repro.formal.abstraction import (
    AbstractProofResult,
    havoc_registers,
    prove_with_data_abstraction,
)

__all__ = [
    "CNF",
    "Solver",
    "SolveStatus",
    "SolveResult",
    "FrameEncoder",
    "FrameProgram",
    "compile_frame_program",
    "Unroller",
    "SafetyProperty",
    "Counterexample",
    "BmcResult",
    "BmcStatus",
    "bounded_model_check",
    "InductionResult",
    "k_induction",
    "PdrResult",
    "PdrStatus",
    "pdr_prove",
    "Certificate",
    "CertificateCheck",
    "check_certificate",
    "CachedVerdict",
    "CacheStats",
    "SolveCache",
    "ThreadSafeSolveCache",
    "circuit_fingerprint",
    "solve_key",
    "valid_entry",
    "ALL_ENGINE_NAMES",
    "ENGINE_NAMES",
    "EngineReport",
    "PortfolioConfig",
    "PortfolioResult",
    "PortfolioStatus",
    "verify_portfolio",

    "self_composition",
    "rename_circuit",
    "EquivalenceResult",
    "build_miter",
    "check_equivalence",
    "AbstractProofResult",
    "havoc_registers",
    "prove_with_data_abstraction",
]

"""Content-addressed solve cache for the formal engines.

CEGAR iterations repeatedly pose closely related model-checking
questions: the portfolio runs BMC and k-induction over the *same*
lowered netlist (the induction base case re-solves BMC's frames), and
refinement-by-testing reruns and scheme pruning re-verify designs that
did not change.  The cache memoizes verdicts keyed on a stable content
hash of (lowered netlist, property, engine question, bound/k), so a
question that has already been decided for an identical gate cone is
answered without touching the SAT solver.

Keys are *content* addressed: the fingerprint is computed from the
canonical JSON serialization of the gate-level netlist
(:func:`repro.hdl.serialize.circuit_to_dict`), so a circuit that
round-trips through ``serialize`` hashes identically, while any change
to the instrumented taint logic — a refined mux, an opened blackbox —
changes the key and invalidates prior answers for that cone.

The cache stores plain-data verdict records (strings, ints, dicts), so
entries pickle cleanly across :mod:`multiprocessing` workers and could
be persisted between runs.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.counterexample import Counterexample
from repro.formal.properties import SafetyProperty


def circuit_fingerprint(circuit: Union[Circuit, LoweredCircuit]) -> str:
    """Stable content hash of a (lowered) netlist.

    Uses the canonical serialized document, which sorts signals by name
    and preserves cell order, so structurally identical circuits — in
    particular ``serialize`` round-trips — produce identical digests.
    The digest is memoized on the circuit object: instrumented designs
    are never mutated in place (refinement re-instruments from scratch),
    so the structure a ``Circuit`` had when first hashed is the
    structure it keeps.
    """
    if isinstance(circuit, LoweredCircuit):
        circuit = circuit.circuit
    cached = getattr(circuit, "_content_fingerprint", None)
    if cached is not None:
        return cached
    from repro.hdl.serialize import circuit_to_dict

    doc = circuit_to_dict(circuit)
    doc.pop("version", None)  # format revisions must not shift keys
    digest = hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()
    try:
        circuit._content_fingerprint = digest
    except AttributeError:  # pragma: no cover - circuits allow attrs
        pass
    return digest


def property_fingerprint(prop: SafetyProperty) -> str:
    """Stable hash of the property portion of a solve key."""
    doc = {
        "bad": prop.bad,
        "assumptions": sorted(prop.assumptions),
        "init_assumptions": sorted(prop.init_assumptions),
        "symbolic_registers": sorted(prop.symbolic_registers),
        "symbolic_all": prop.symbolic_all_registers,
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def solve_key(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    question: str,
    bound: Any = None,
) -> str:
    """The cache key for one engine question.

    Args:
        circuit: design under verification (hashed by content).
        prop: the safety property.
        question: which question is being asked — e.g. ``"bmc-frame"``
            (is *bad* reachable at exactly this depth?), ``"bmc"``,
            ``"portfolio"``.
        bound: depth / k / engine parameters distinguishing questions
            of the same kind; any JSON-serializable value.
    """
    return "%s:%s:%s:%s" % (
        question,
        circuit_fingerprint(circuit),
        property_fingerprint(prop),
        json.dumps(bound, sort_keys=True, default=str),
    )


@dataclass
class CacheStats:
    """Counters for observability reports (Table-3-style extensions)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    #: Malformed entries dropped by a validating merge (wrong types,
    #: corrupted payloads from a worker or a damaged checkpoint).
    rejected: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores
        self.evictions += other.evictions
        self.rejected += other.rejected

    def row(self) -> str:
        rejected = f", {self.rejected} rejected" if self.rejected else ""
        return (
            f"cache: {self.hits} hits / {self.misses} misses "
            f"({self.hit_rate * 100:.0f}% hit rate), "
            f"{self.stores} stores, {self.evictions} evictions{rejected}"
        )


def valid_entry(key: Any, verdict: Any) -> bool:
    """Is ``(key, verdict)`` a well-formed cache entry?

    The shape contract of :class:`CachedVerdict`, checked explicitly
    because entries arrive from worker queues and checkpoint files
    where corruption and truncation are real possibilities.
    """
    if not isinstance(key, str) or not key:
        return False
    if not isinstance(verdict, CachedVerdict):
        return False
    if not isinstance(verdict.status, str) or not verdict.status:
        return False
    if not isinstance(verdict.bound, int) or isinstance(verdict.bound, bool):
        return False
    if verdict.counterexample is not None and not isinstance(
            verdict.counterexample, Counterexample):
        return False
    if not isinstance(verdict.detail, dict):
        return False
    return True


@dataclass
class CachedVerdict:
    """A memoized engine answer (plain data: pickles across processes).

    ``status`` is the engine's own status string ("unsat", "sat",
    "proved", "bound_reached", ...); ``bound`` carries the depth the
    verdict holds for; ``counterexample`` is the word-level stimulus
    when the answer is a violation.
    """

    status: str
    bound: int = -1
    counterexample: Optional[Counterexample] = None
    detail: Dict[str, Any] = field(default_factory=dict)


class SolveCache:
    """LRU verdict cache shared across engines and CEGAR iterations."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CachedVerdict]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[CachedVerdict]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def peek(self, key: str) -> Optional[CachedVerdict]:
        """Lookup without touching the hit/miss counters or LRU order."""
        return self._entries.get(key)

    def put(self, key: str, verdict: CachedVerdict) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = verdict
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def merge_entries(self, entries: Dict[str, CachedVerdict]) -> None:
        """Adopt entries computed elsewhere (e.g. a worker process).

        Entries cross process and disk boundaries (streamed over a
        ``multiprocessing`` queue, restored from a checkpoint journal),
        so they are *validated* before adoption: anything malformed —
        wrong container type, a payload that is not a
        :class:`CachedVerdict`, fields of the wrong type — is counted
        in ``stats.rejected`` and dropped rather than stored where it
        could later poison a verdict.  Store-backs count as stores (and
        may evict) but not as lookups.
        """
        if not isinstance(entries, dict):
            self.stats.rejected += 1
            return
        for key, verdict in entries.items():
            if not valid_entry(key, verdict):
                self.stats.rejected += 1
                continue
            if key not in self._entries:
                self.put(key, verdict)

    def preload_entries(self, entries: Dict[str, CachedVerdict]) -> int:
        """Adopt pre-existing entries without touching the counters.

        Used when a persistent store (:mod:`repro.store`) seeds a fresh
        cache at open: unlike :meth:`merge_entries`, preloaded entries
        do not count as ``stores`` — they were paid for by an earlier
        run — but they are still *validated*, and anything malformed is
        counted in ``stats.rejected`` and dropped.  Returns how many
        entries were adopted.
        """
        loaded = 0
        for key, verdict in entries.items():
            if not valid_entry(key, verdict):
                self.stats.rejected += 1
                continue
            self._entries[key] = verdict
            loaded += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return loaded

    def clear(self) -> None:
        self._entries.clear()

    def snapshot_entries(self) -> Dict[str, CachedVerdict]:
        """A shallow copy of the entries (for shipping to workers)."""
        return dict(self._entries)


class ThreadSafeSolveCache(SolveCache):
    """A :class:`SolveCache` safe to share across threads.

    The base class is deliberately lock-free — the CLI and the
    per-process portfolio workers are single-threaded — but the job
    daemon hands one cache to a pool of worker threads, where the
    ``OrderedDict`` LRU bookkeeping (``move_to_end``, eviction) breaks
    under concurrent mutation.  Every public operation here runs under
    a reentrant mutex; subclasses composing multi-step operations (see
    :class:`repro.store.store.StoreBackedCache`) take the same
    ``self._mutex`` around them.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        super().__init__(max_entries)
        self._mutex = threading.RLock()

    def get(self, key: str) -> Optional[CachedVerdict]:
        with self._mutex:
            return super().get(key)

    def peek(self, key: str) -> Optional[CachedVerdict]:
        with self._mutex:
            return super().peek(key)

    def put(self, key: str, verdict: CachedVerdict) -> None:
        with self._mutex:
            super().put(key, verdict)

    def merge_entries(self, entries: Dict[str, CachedVerdict]) -> None:
        with self._mutex:
            super().merge_entries(entries)

    def preload_entries(self, entries: Dict[str, CachedVerdict]) -> int:
        with self._mutex:
            return super().preload_entries(entries)

    def clear(self) -> None:
        with self._mutex:
            super().clear()

    def snapshot_entries(self) -> Dict[str, CachedVerdict]:
        with self._mutex:
            return super().snapshot_entries()

"""Counterexample traces produced by bounded model checking.

A counterexample is stored as a *stimulus*: the initial register state
plus per-cycle input values.  The full waveform is reconstructed by
replaying the stimulus on the circuit with the reference simulator —
mirroring the paper's flow, which simulates each counterexample over the
netlist to obtain the waveform for backtracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.hdl.circuit import Circuit
from repro.sim.simulator import Simulator
from repro.sim.waveform import Waveform


@dataclass
class Counterexample:
    """A concrete violating execution of length ``length`` cycles."""

    length: int
    inputs: List[Dict[str, int]]
    initial_state: Dict[str, int]
    bad_signal: str = ""

    def __post_init__(self) -> None:
        if len(self.inputs) != self.length:
            raise ValueError(
                f"counterexample has {len(self.inputs)} input frames for length {self.length}"
            )

    def replay(
        self,
        circuit: Circuit,
        record: Optional[Iterable[str]] = None,
    ) -> Waveform:
        """Simulate the stimulus on ``circuit`` and return the waveform.

        ``circuit`` may be the original design, the taint-instrumented
        design, or any variant sharing the same input/register names;
        unknown initial-state entries and extra inputs are ignored,
        missing inputs default to 0.
        """
        known_regs = {reg.q.name for reg in circuit.registers}
        init = {k: v for k, v in self.initial_state.items() if k in known_regs}
        sim = Simulator(circuit, initial_state=init)
        input_names = [sig.name for sig in circuit.inputs]
        stimulus = []
        for frame in self.inputs:
            stimulus.append({name: frame.get(name, 0) for name in input_names})
        return sim.run(stimulus, record=record)

    def with_initial_state(self, overrides: Dict[str, int]) -> "Counterexample":
        merged = dict(self.initial_state)
        merged.update(overrides)
        return Counterexample(self.length, [dict(f) for f in self.inputs], merged, self.bad_signal)


def replay_batch(
    circuit: Circuit,
    counterexamples: List["Counterexample"],
    record: Optional[Iterable[str]] = None,
) -> List[Waveform]:
    """Replay N counterexamples on one circuit in a single pass.

    Each counterexample becomes one lane of a
    :class:`~repro.sim.batch.BatchSimulator`; shorter traces are padded
    with zero frames up to the longest and each returned waveform is
    truncated back to its own length, so every entry is bit-identical to
    ``cex.replay(circuit, record)``.  This is how the CEGAR machinery
    certifies many candidate witnesses at once (refinement pruning,
    false-taint filtering).
    """
    from repro.sim.batch import BatchSimulator

    if not counterexamples:
        return []
    known_regs = {reg.q.name for reg in circuit.registers}
    input_names = [sig.name for sig in circuit.inputs]
    max_length = max(cex.length for cex in counterexamples)
    zero_frame = {name: 0 for name in input_names}
    inits = []
    stimuli = []
    for cex in counterexamples:
        inits.append({k: v for k, v in cex.initial_state.items() if k in known_regs})
        frames = [{name: frame.get(name, 0) for name in input_names}
                  for frame in cex.inputs]
        frames.extend([zero_frame] * (max_length - len(frames)))
        stimuli.append(frames)
    sim = BatchSimulator(circuit, lanes=len(counterexamples), initial_states=inits)
    names = list(record) if record is not None else None
    batch = sim.run(stimuli, record=names)
    return [batch.lane(lane, length=cex.length)
            for lane, cex in enumerate(counterexamples)]

"""Bounded model checking (the paper's ``Ht`` bounded engine).

Given a safety property, BMC unrolls the design frame by frame and asks
the SAT solver for a violation at each depth.  Outcomes mirror the
paper's Section 4 step 2: a *counterexample*, or a *bounded proof* up to
the depth reached within the compute budget.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit, lower_to_gates
from repro.formal.counterexample import Counterexample
from repro.formal.properties import SafetyProperty
from repro.formal.sat.solver import Solver, SolveStatus
from repro.formal.unroll import Unroller


class BmcStatus(enum.Enum):
    COUNTEREXAMPLE = "counterexample"
    BOUND_REACHED = "bound_reached"   # no violation up to max_bound
    TIMEOUT = "timeout"               # budget exhausted mid-way


@dataclass
class BmcResult:
    status: BmcStatus
    bound: int                        # deepest cycle index proven violation-free
    counterexample: Optional[Counterexample] = None
    elapsed: float = 0.0
    frames_solved: int = 0

    @property
    def found_cex(self) -> bool:
        return self.status is BmcStatus.COUNTEREXAMPLE


def _as_lowered(circuit: Union[Circuit, LoweredCircuit]) -> LoweredCircuit:
    """Lower and simplify for SAT encoding.

    The simplification pass preserves inputs, registers and outputs by
    name — everything BMC needs to extract counterexamples and locate
    property/assumption signals.
    """
    if isinstance(circuit, LoweredCircuit):
        return circuit
    from repro.hdl.optimize import simplify

    lowered = lower_to_gates(circuit)
    return LoweredCircuit(simplify(lowered.circuit), lowered.bits)


def _make_unroller(
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    initial_values: Optional[Mapping[str, int]],
) -> Unroller:
    return Unroller(
        lowered,
        initial_values=initial_values,
        symbolic_registers=set(prop.symbolic_registers),
        symbolic_all=prop.symbolic_all_registers,
    )


def _constrain_frame(unroller: Unroller, prop: SafetyProperty, frame: int) -> None:
    for name in prop.assumptions:
        unroller.assume_signal(frame, name, 1)
    if frame == 0:
        for name in prop.init_assumptions:
            unroller.assume_signal(0, name, 1)


def extract_counterexample(
    unroller: Unroller, prop: SafetyProperty, model: List[bool], depth: int
) -> Counterexample:
    """Read a word-level stimulus (inputs + initial state) from a model."""
    lowered = unroller.lowered
    input_names = {sig.name for sig in lowered.circuit.inputs}
    original_inputs = [
        name for name, bit_sigs in lowered.bits.items()
        if bit_sigs and bit_sigs[0].name in input_names
    ]
    original_regs: List[str] = []
    reg_names = {reg.q.name for reg in lowered.circuit.registers}
    for name, bit_sigs in lowered.bits.items():
        if bit_sigs and bit_sigs[0].name in reg_names:
            original_regs.append(name)
    inputs: List[Dict[str, int]] = []
    for frame in range(depth + 1):
        inputs.append({name: unroller.word_value(frame, name, model) for name in original_inputs})
    initial_state = {name: unroller.word_value(0, name, model) for name in original_regs}
    return Counterexample(depth + 1, inputs, initial_state, bad_signal=prop.bad)


def bounded_model_check(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    max_bound: int,
    time_limit: Optional[float] = None,
    initial_values: Optional[Mapping[str, int]] = None,
    input_constraints: Optional[Sequence[Mapping[str, int]]] = None,
    start_bound: int = 0,
) -> BmcResult:
    """Check ``bad`` at depths ``start_bound..max_bound``.

    Args:
        initial_values: concrete word values overriding register resets
            (used when replaying a counterexample's environment).
        input_constraints: per-frame word values pinning inputs (frames
            beyond the list are unconstrained).
    """
    started = time.monotonic()
    lowered = _as_lowered(circuit)
    unroller = _make_unroller(lowered, prop, initial_values)
    solver = unroller.solver
    frames_solved = 0
    proven = start_bound - 1

    for depth in range(0, max_bound + 1):
        while unroller.depth < depth + 1:
            new_frame = unroller.depth
            unroller.add_frame()
            _constrain_frame(unroller, prop, new_frame)
            if input_constraints is not None and new_frame < len(input_constraints):
                for name, value in input_constraints[new_frame].items():
                    unroller.constrain_word(new_frame, name, value)
        bad_lit = unroller.lit_of_bit(depth, prop.bad)
        if depth < start_bound:
            # Caller already knows shallower depths are clean.
            solver.add_clause((-bad_lit,))
            continue
        remaining = None
        if time_limit is not None:
            remaining = time_limit - (time.monotonic() - started)
            if remaining <= 0:
                return BmcResult(BmcStatus.TIMEOUT, proven, elapsed=time.monotonic() - started,
                                 frames_solved=frames_solved)
        result = solver.solve(assumptions=[bad_lit], time_limit=remaining)
        frames_solved += 1
        if result.status is SolveStatus.SAT:
            cex = extract_counterexample(unroller, prop, result.model, depth)
            return BmcResult(
                BmcStatus.COUNTEREXAMPLE, proven, cex,
                elapsed=time.monotonic() - started, frames_solved=frames_solved,
            )
        if result.status is SolveStatus.UNKNOWN:
            return BmcResult(BmcStatus.TIMEOUT, proven, elapsed=time.monotonic() - started,
                             frames_solved=frames_solved)
        proven = depth
        solver.add_clause((-bad_lit,))
    return BmcResult(BmcStatus.BOUND_REACHED, proven, elapsed=time.monotonic() - started,
                     frames_solved=frames_solved)

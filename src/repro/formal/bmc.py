"""Bounded model checking (the paper's ``Ht`` bounded engine).

Given a safety property, BMC unrolls the design frame by frame and asks
the SAT solver for a violation at each depth.  Outcomes mirror the
paper's Section 4 step 2: a *counterexample*, or a *bounded proof* up to
the depth reached within the compute budget.
"""

from __future__ import annotations

import enum
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit, lower_to_gates
from repro.formal.cache import CachedVerdict, SolveCache, solve_key
from repro.formal.counterexample import Counterexample
from repro.formal.properties import SafetyProperty
from repro.formal.sat.solver import Solver, SolveStatus
from repro.formal.unroll import Unroller
from repro.obs import NULL_TRACER


def record_solver_stats(tracer, span, result) -> None:
    """Attach one SAT call's search counters to its span and totals.

    Shared by the engines: the per-solve conflict/decision/propagation/
    learned-clause/restart figures land as span args (visible on the
    frame in a trace viewer) and as global counter totals.
    """
    span.set(
        conflicts=result.conflicts,
        decisions=result.decisions,
        propagations=result.propagations,
        learned=result.learned,
        restarts=result.restarts,
    )
    tracer.count("sat.conflicts", result.conflicts)
    tracer.count("sat.decisions", result.decisions)
    tracer.count("sat.propagations", result.propagations)
    tracer.count("sat.learned", result.learned)
    tracer.count("sat.restarts", result.restarts)


class BmcStatus(enum.Enum):
    COUNTEREXAMPLE = "counterexample"
    BOUND_REACHED = "bound_reached"   # no violation up to max_bound
    TIMEOUT = "timeout"               # budget exhausted mid-way


@dataclass
class BmcResult:
    status: BmcStatus
    bound: int                        # deepest cycle index proven violation-free
    counterexample: Optional[Counterexample] = None
    elapsed: float = 0.0
    frames_solved: int = 0

    @property
    def found_cex(self) -> bool:
        return self.status is BmcStatus.COUNTEREXAMPLE


#: Digest-keyed LRU of lowered/simplified/reduced netlists, shared by
#: every engine in the process (BMC, k-induction, PDR, portfolio
#: dispatch, CEGAR iterations).  Keyed on content fingerprints, so a
#: re-instrumented but structurally identical circuit still hits.
_LOWERED_CACHE: "OrderedDict[tuple, LoweredCircuit]" = OrderedDict()
_LOWERED_CACHE_MAX = 32


def _property_roots(lowered: LoweredCircuit, prop: SafetyProperty) -> List[str]:
    """Gate-level signal names the property can observe."""
    roots: List[str] = []
    names = [prop.bad]
    names.extend(prop.assumptions)
    names.extend(prop.init_assumptions)
    for name in names:
        for sig in lowered.bits[name]:
            roots.append(sig.name)
    return roots


def _as_lowered(
    circuit: Union[Circuit, LoweredCircuit],
    prop: Optional[SafetyProperty] = None,
) -> LoweredCircuit:
    """Lower, simplify and property-reduce a circuit for SAT encoding.

    The simplification pass preserves inputs, registers and outputs by
    name — everything BMC needs to extract counterexamples and locate
    property/assumption signals.  When ``prop`` is given, the netlist
    is additionally restricted to the cone of influence of the
    property's ``bad``/assumption signals and structurally hashed
    (:func:`repro.hdl.optimize.cone_of_influence` / :func:`strash`) —
    logic the property cannot observe never reaches the encoder, and
    duplicated shadow logic collapses.

    Results are memoized in a digest-keyed LRU shared across engines:
    the portfolio's BMC and induction workers, the induction base case,
    and successive CEGAR verify calls all re-lower the same content
    otherwise.  An explicit ``LoweredCircuit`` argument bypasses both
    the cache and the reduction (the caller controls the netlist).
    """
    if isinstance(circuit, LoweredCircuit):
        return circuit
    from repro.formal.cache import circuit_fingerprint, property_fingerprint

    key = (
        circuit_fingerprint(circuit),
        property_fingerprint(prop) if prop is not None else None,
    )
    cached = _LOWERED_CACHE.get(key)
    if cached is not None:
        _LOWERED_CACHE.move_to_end(key)
        return cached
    from repro.hdl.optimize import cone_of_influence, simplify, strash

    # Intermediate passes skip their own invariant re-validation; the
    # final netlist is validated once below.
    lowered = lower_to_gates(circuit, validate=False)
    gates = simplify(lowered.circuit, validate=False)
    pruned_resets: Dict[str, int] = {}
    if prop is not None:
        full_resets = {reg.q.name: reg.reset_value & 1 for reg in gates.registers}
        gates = strash(
            cone_of_influence(gates, _property_roots(lowered, prop), validate=False),
            validate=False,
        )
        kept = {reg.q.name for reg in gates.registers}
        pruned_resets = {
            name: bit for name, bit in full_resets.items() if name not in kept
        }
    gates.validate()
    result = LoweredCircuit(gates, lowered.bits, pruned_resets)
    _LOWERED_CACHE[key] = result
    while len(_LOWERED_CACHE) > _LOWERED_CACHE_MAX:
        _LOWERED_CACHE.popitem(last=False)
    return result


def _make_unroller(
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    initial_values: Optional[Mapping[str, int]],
) -> Unroller:
    return Unroller(
        lowered,
        initial_values=initial_values,
        symbolic_registers=set(prop.symbolic_registers),
        symbolic_all=prop.symbolic_all_registers,
    )


def _constrain_frame(unroller: Unroller, prop: SafetyProperty, frame: int) -> None:
    for name in prop.assumptions:
        unroller.assume_signal(frame, name, 1)
    if frame == 0:
        for name in prop.init_assumptions:
            unroller.assume_signal(0, name, 1)


def extract_counterexample(
    unroller: Unroller, prop: SafetyProperty, model: List[bool], depth: int
) -> Counterexample:
    """Read a word-level stimulus (inputs + initial state) from a model."""
    lowered = unroller.lowered
    input_names = {sig.name for sig in lowered.circuit.inputs}
    original_inputs = [
        name for name, bit_sigs in lowered.bits.items()
        if bit_sigs and bit_sigs[0].name in input_names
    ]
    original_regs: List[str] = []
    reg_names = {reg.q.name for reg in lowered.circuit.registers}
    for name, bit_sigs in lowered.bits.items():
        if bit_sigs and bit_sigs[0].name in reg_names:
            original_regs.append(name)
    inputs: List[Dict[str, int]] = []
    for frame in range(depth + 1):
        inputs.append({name: unroller.word_value(frame, name, model) for name in original_inputs})
    initial_state = {name: unroller.word_value(0, name, model) for name in original_regs}
    return Counterexample(depth + 1, inputs, initial_state, bad_signal=prop.bad)


def _frame_key(
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    depth: int,
    initial_values: Optional[Mapping[str, int]],
    input_constraints: Optional[Sequence[Mapping[str, int]]],
) -> str:
    """Cache key for "is ``bad`` reachable at exactly ``depth``?".

    The answer depends on the netlist, the property, the depth, and any
    concrete pinning of the environment — all of which go into the key.
    """
    pins = None
    if input_constraints is not None:
        pins = [dict(frame) for frame in input_constraints[: depth + 1]]
    params = {
        "depth": depth,
        "init": dict(initial_values) if initial_values else None,
        "pins": pins,
    }
    return solve_key(lowered.circuit, prop, "bmc-frame", params)


def bounded_model_check(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    max_bound: int,
    time_limit: Optional[float] = None,
    initial_values: Optional[Mapping[str, int]] = None,
    input_constraints: Optional[Sequence[Mapping[str, int]]] = None,
    start_bound: int = 0,
    max_conflicts: Optional[int] = None,
    cache: Optional[SolveCache] = None,
    tracer=None,
) -> BmcResult:
    """Check ``bad`` at depths ``start_bound..max_bound``.

    Args:
        initial_values: concrete word values overriding register resets
            (used when replaying a counterexample's environment).
        input_constraints: per-frame word values pinning inputs (frames
            beyond the list are unconstrained).
        max_conflicts: per-depth SAT conflict budget; exceeding it ends
            the run with ``TIMEOUT`` (a deterministic alternative to
            ``time_limit`` for reproducible budget tests).
        cache: optional cross-call verdict cache; per-depth results are
            looked up before solving and stored after, so repeated
            questions on an identical netlist skip the SAT solver (the
            k-induction base case and repeated portfolio calls share
            frames this way).
        tracer: optional :class:`repro.obs.Tracer`; records one span
            per frame with the SAT search counters attached.
    """
    started = time.monotonic()
    tracer = tracer or NULL_TRACER
    lowered = _as_lowered(circuit, prop)
    unroller: Optional[Unroller] = None
    frames_solved = 0
    proven = start_bound - 1
    # Depths known clean but whose blocking clause has not been added
    # yet; flushed lazily so fully-cached runs never build an unroller.
    # A deque: long cached prefixes (resumed runs, warm caches) made the
    # old list.pop(0) flush quadratic.
    pending_clean: "deque[int]" = deque()

    def materialize(depth: int) -> Unroller:
        nonlocal unroller
        if unroller is None:
            unroller = _make_unroller(lowered, prop, initial_values)
        while unroller.depth < depth + 1:
            new_frame = unroller.depth
            unroller.add_frame()
            _constrain_frame(unroller, prop, new_frame)
            if input_constraints is not None and new_frame < len(input_constraints):
                for name, value in input_constraints[new_frame].items():
                    unroller.constrain_word(new_frame, name, value)
        while pending_clean:
            clean_depth = pending_clean.popleft()
            unroller.solver.add_clause((-unroller.lit_of_bit(clean_depth, prop.bad),))
        return unroller

    for depth in range(0, max_bound + 1):
        if depth < start_bound:
            # Caller already knows shallower depths are clean.
            pending_clean.append(depth)
            continue
        key = None
        if cache is not None:
            key = _frame_key(lowered, prop, depth, initial_values, input_constraints)
            entry = cache.get(key)
            if entry is not None:
                if entry.status == "sat":
                    return BmcResult(
                        BmcStatus.COUNTEREXAMPLE, proven, entry.counterexample,
                        elapsed=time.monotonic() - started, frames_solved=frames_solved,
                    )
                proven = depth
                pending_clean.append(depth)
                continue
        active = materialize(depth)
        bad_lit = active.lit_of_bit(depth, prop.bad)
        remaining = None
        if time_limit is not None:
            remaining = time_limit - (time.monotonic() - started)
            if remaining <= 0:
                return BmcResult(BmcStatus.TIMEOUT, proven, elapsed=time.monotonic() - started,
                                 frames_solved=frames_solved)
        with tracer.span("bmc.frame", cat="engine", depth=depth) as span:
            result = active.solver.solve(
                assumptions=[bad_lit], time_limit=remaining, max_conflicts=max_conflicts,
            )
            if tracer.enabled:
                span.set(status=result.status.value)
                record_solver_stats(tracer, span, result)
        frames_solved += 1
        if result.status is SolveStatus.SAT:
            cex = extract_counterexample(active, prop, result.model, depth)
            if cache is not None:
                cache.put(key, CachedVerdict("sat", bound=depth, counterexample=cex))
            return BmcResult(
                BmcStatus.COUNTEREXAMPLE, proven, cex,
                elapsed=time.monotonic() - started, frames_solved=frames_solved,
            )
        if result.status is SolveStatus.UNKNOWN:
            return BmcResult(BmcStatus.TIMEOUT, proven, elapsed=time.monotonic() - started,
                             frames_solved=frames_solved)
        if cache is not None:
            cache.put(key, CachedVerdict("unsat", bound=depth))
        proven = depth
        active.solver.add_clause((-bad_lit,))
    return BmcResult(BmcStatus.BOUND_REACHED, proven, elapsed=time.monotonic() - started,
                     frames_solved=frames_solved)

"""Functionality abstraction: havocking registers (paper Section 7).

The paper lists "functionality abstraction [7, 32, 38]" as the
orthogonal lever for scaling the model checker on the *original* design
half of the instrumented circuit.  This module provides the basic
building block: :func:`havoc_registers` replaces selected registers by
fresh free inputs.  Every behaviour of the original circuit is a
behaviour of the abstraction, so a safety proof on the abstraction
carries over; counterexamples may be spurious.

:func:`prove_with_data_abstraction` applies the taint-specific recipe:
havoc all *data* registers of an instrumented design (keeping the taint
registers, module taint bits, and any registers named by the property's
assumptions) and attempt a PDR proof over the much smaller taint state
space.  When the abstraction yields a counterexample the result is
inconclusive and the caller should fall back to the concrete design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Set, Union

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind
from repro.formal.pdr import PdrResult, PdrStatus, pdr_prove
from repro.formal.properties import SafetyProperty


def havoc_registers(circuit: Circuit, registers: Iterable[str]) -> Circuit:
    """Replace the named registers by free inputs (sound abstraction).

    The register's ``q`` signal becomes an INPUT with the same name and
    width; its next-value logic stays in the circuit (it may feed other
    logic) but no longer constrains the havocked signal.
    """
    to_havoc: Set[str] = set(registers)
    known = {reg.q.name for reg in circuit.registers}
    unknown = to_havoc - known
    if unknown:
        raise ValueError(f"cannot havoc unknown registers: {sorted(unknown)[:5]}")
    out = Circuit(f"{circuit.name}.havoc")
    for sig in circuit.inputs:
        out.add_signal(sig)
    for reg in circuit.registers:
        if reg.q.name in to_havoc:
            out.add_signal(Signal(reg.q.name, reg.q.width, SignalKind.INPUT,
                                  module=reg.q.module))
        else:
            out.add_register(reg)
    for cell in circuit.cells:
        out.add_cell(cell)
    out.validate()
    return out


@dataclass
class AbstractProofResult:
    """Outcome of a proof attempt over the havocked design."""

    proved: bool
    pdr: PdrResult
    havocked: int
    kept: int

    @property
    def conclusive(self) -> bool:
        """Only proofs transfer to the concrete design."""
        return self.proved


def data_registers_of(design) -> Set[str]:
    """Registers of an instrumented design that carry *data*, not taint."""
    taint_regs: Set[str] = set()
    taint_names = set(design.taint_name.values())
    for reg in design.circuit.registers:
        if reg.q.name in taint_names or reg.q.name.endswith("__t"):
            taint_regs.add(reg.q.name)
        elif reg.q.name in design.module_taint.values():
            taint_regs.add(reg.q.name)
    return {reg.q.name for reg in design.circuit.registers} - taint_regs


def prove_with_data_abstraction(
    design,
    prop: SafetyProperty,
    keep: Iterable[str] = (),
    max_frames: int = 60,
    time_limit: Optional[float] = None,
) -> AbstractProofResult:
    """Try to prove a taint property with all data registers havocked.

    Args:
        design: an :class:`~repro.taint.instrument.InstrumentedDesign`.
        prop: the safety property (over the instrumented circuit).
        keep: extra register names to keep concrete (e.g. a mode
            register the property's assumptions depend on).
    """
    havoc = data_registers_of(design) - set(keep)
    abstract = havoc_registers(design.circuit, havoc)
    result = pdr_prove(abstract, prop, max_frames=max_frames, time_limit=time_limit)
    kept = len(abstract.registers)
    return AbstractProofResult(
        proved=result.status is PdrStatus.PROVED,
        pdr=result,
        havocked=len(havoc),
        kept=kept,
    )

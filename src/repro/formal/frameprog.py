"""Frame-template compilation: encode a circuit once, stamp it per frame.

:class:`~repro.formal.encode.FrameEncoder` re-walks the whole gate
netlist for every time frame — cell objects, string-keyed dict lookups,
re-running the constant-folding logic on identical structure each
time.  But the combinational logic of a sequential circuit is the
*same* in every frame; only the literals standing for the frame's
inputs and register states change.  :func:`compile_frame_program`
therefore compiles a :class:`~repro.hdl.lowering.LoweredCircuit` once
into a :class:`FrameProgram` holding two representations of the frame:

**The op program** — a flat list of ``(opcode, output-slot,
input-slots…)`` int tuples in topological order, where a *slot* is a
dense index into a per-frame literal array.  Interpreting it
(:func:`execute_ops`) reproduces ``FrameEncoder``'s encoding exactly —
including constant folding — without touching cells or signal names.

**The pre-folded clause template** — the clauses the encoder would
emit for a frame whose boundary literals (register ``q`` values) are
all opaque symbols.  Template literals are one of: the global TRUE
constant, a *boundary slot* (one per register), or a *fresh slot* (one
per frame input and surviving gate output).  Stamping the template
(:class:`StampedFrame`) is integer arithmetic: bulk-allocate the fresh
block, append the *pure* clauses (fresh-only literals) to the solver
arena with a single per-literal offset (:meth:`Solver.stamp_clauses`),
and route the few *mixed* clauses that mention boundary slots through
the normalising ``add_clause``.

:meth:`repro.formal.unroll.Unroller.add_frame` picks per frame: while
any boundary literal is a constant (frame 0 under a concrete reset,
and as long as the constants keep propagating through register ``d``
inputs), the op program is interpreted so folding happens exactly as
in the reference encoder; once the frame boundary is fully symbolic —
immediately, for k-induction's free initial state — folding can no
longer trigger and frames are stamped.

``FrameEncoder`` remains the reference implementation; the property
suite checks the paths equisatisfiable frame by frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.lowering import LoweredCircuit
from repro.formal.encode import EncodingError, FrameEncoder
from repro.formal.sat.solver import Solver

#: Template value of the constant-TRUE literal (negate for FALSE).
TRUE_TVAL = 1

#: Op program opcodes.  ``(OP_CONST, out_slot, bit)`` defines a
#: constant; every other op is ``(opcode, out_slot, in_slot, ...)``.
OP_CONST = 0
OP_BUF = 1
OP_NOT = 2
OP_AND = 3
OP_OR = 4
OP_XOR = 5

_OPCODE_OF = {
    CellOp.BUF: OP_BUF,
    CellOp.NOT: OP_NOT,
    CellOp.AND: OP_AND,
    CellOp.OR: OP_OR,
    CellOp.XOR: OP_XOR,
}


@dataclass(frozen=True)
class FrameProgram:
    """One compiled combinational frame, independent of any solver.

    Template values ("tvals") are nonzero signed ints: ``abs(tv) == 1``
    is the TRUE constant, ``2 <= abs(tv) < 2 + n_boundary`` is boundary
    slot ``abs(tv) - 2``, anything above is fresh slot
    ``abs(tv) - 2 - n_boundary``.  A negative tval is the negation.
    """

    # -- op program (interpreted path) ---------------------------------
    #: Flat ``(opcode, out_slot, ...)`` tuples in topological order.
    ops: Tuple[Tuple[int, ...], ...]
    #: Size of the per-frame literal array the op program writes.
    n_slots: int
    #: Gate-signal name -> op-program slot (every signal of the frame).
    slot_of_name: Dict[str, int]
    #: Slot of each register's ``q`` (``circuit.registers`` order).
    boundary_slots: Tuple[int, ...]
    #: Slot of each frame input (``circuit.inputs`` order).
    input_slots: Tuple[int, ...]

    # -- clause template (stamped path) --------------------------------
    #: Number of boundary slots (= registers).
    n_boundary: int
    #: Number of fresh solver variables each stamped frame allocates.
    n_fresh: int
    #: Clauses over fresh slots only, flattened as ``size, lit, lit, …``
    #: with literals in the solver's internal ``(slot << 1) | sign``
    #: encoding — the operand of :meth:`Solver.stamp_clauses`.
    pure: Tuple[int, ...]
    #: Clauses that mention boundary/TRUE tvals; resolved per frame and
    #: added through the normalising ``add_clause``.
    mixed: Tuple[Tuple[int, ...], ...]
    #: Gate-signal name -> tval, for every signal of the frame.
    tval_of_name: Dict[str, int]

    @property
    def num_template_clauses(self) -> int:
        count = len(self.mixed)
        i = 0
        while i < len(self.pure):
            count += 1
            i += 1 + self.pure[i]
        return count


class StampedFrame:
    """One time frame produced by stamping a :class:`FrameProgram`.

    API-compatible with the slice of :class:`FrameEncoder` the unroller
    and engines rely on: ``lit(name)``, ``const_lit(value)`` and the
    ``true_lit`` attribute.
    """

    __slots__ = ("program", "true_lit", "boundary_lits", "base")

    def __init__(
        self,
        program: FrameProgram,
        true_lit: int,
        boundary_lits: Sequence[int],
        base: int,
    ) -> None:
        self.program = program
        self.true_lit = true_lit
        self.boundary_lits = list(boundary_lits)
        #: First solver variable of this frame's fresh block.
        self.base = base

    def resolve(self, tval: int) -> int:
        """Map a template value to a DIMACS literal of this frame."""
        index = tval if tval > 0 else -tval
        if index == 1:
            lit = self.true_lit
        elif index < 2 + self.program.n_boundary:
            lit = self.boundary_lits[index - 2]
        else:
            lit = self.base + (index - 2 - self.program.n_boundary)
        return -lit if tval < 0 else lit

    def lit(self, name: str) -> int:
        try:
            tval = self.program.tval_of_name[name]
        except KeyError:
            raise EncodingError(
                f"signal {name!r} not encoded in this frame template"
            ) from None
        return self.resolve(tval)

    def const_lit(self, value: int) -> int:
        return self.true_lit if value else -self.true_lit


class InterpretedFrame:
    """One time frame produced by interpreting the op program.

    Used while the frame boundary still carries constants (concrete
    resets), where folding pays; exposes the same ``lit``/``const_lit``
    surface as :class:`StampedFrame`.
    """

    __slots__ = ("program", "true_lit", "vals")

    def __init__(self, program: FrameProgram, true_lit: int, vals: List[int]) -> None:
        self.program = program
        self.true_lit = true_lit
        self.vals = vals

    def lit(self, name: str) -> int:
        try:
            slot = self.program.slot_of_name[name]
        except KeyError:
            raise EncodingError(
                f"signal {name!r} not encoded in this frame program"
            ) from None
        return self.vals[slot]

    def const_lit(self, value: int) -> int:
        return self.true_lit if value else -self.true_lit


def execute_ops(
    program: FrameProgram,
    solver: Solver,
    true_lit: int,
    boundary_lits: Sequence[int],
    input_lits: Sequence[int],
) -> InterpretedFrame:
    """Interpret the op program with full constant folding.

    Semantically identical to ``FrameEncoder.encode_combinational`` on
    the same circuit with the same boundary/input literals — the AND/
    XOR folding is delegated to the encoder itself — but iterates int
    tuples instead of cell objects and writes a dense literal array
    instead of a name-keyed dict.
    """
    vals = [0] * program.n_slots
    for slot, lit in zip(program.boundary_slots, boundary_lits):
        vals[slot] = lit
    for slot, lit in zip(program.input_slots, input_lits):
        vals[slot] = lit
    folder = FrameEncoder(solver, true_lit)
    encode_and = folder._encode_and
    encode_xor = folder._encode_xor
    for op in program.ops:
        code = op[0]
        if code == OP_AND:
            vals[op[1]] = encode_and([vals[s] for s in op[2:]])
        elif code == OP_OR:
            vals[op[1]] = -encode_and([-vals[s] for s in op[2:]])
        elif code == OP_XOR:
            vals[op[1]] = encode_xor([vals[s] for s in op[2:]])
        elif code == OP_NOT:
            vals[op[1]] = -vals[op[2]]
        elif code == OP_BUF:
            vals[op[1]] = vals[op[2]]
        else:  # OP_CONST
            vals[op[1]] = true_lit if op[2] else -true_lit
    return InterpretedFrame(program, true_lit, vals)


class _TemplateBuilder:
    """Symbolic twin of ``FrameEncoder``: same fold rules, over tvals."""

    def __init__(self, n_boundary: int) -> None:
        self.n_boundary = n_boundary
        self.n_fresh = 0
        self.tval_of: Dict[str, int] = {}
        self.pure: List[int] = []
        self.mixed: List[Tuple[int, ...]] = []

    # -- slots ----------------------------------------------------------
    def fresh(self) -> int:
        tval = 2 + self.n_boundary + self.n_fresh
        self.n_fresh += 1
        return tval

    def _is_const(self, tval: int) -> Optional[int]:
        if tval == TRUE_TVAL:
            return 1
        if tval == -TRUE_TVAL:
            return 0
        return None

    def _is_fresh(self, tval: int) -> bool:
        return abs(tval) >= 2 + self.n_boundary

    def add_clause(self, tvals: Sequence[int]) -> None:
        """Record a clause, split by whether stamping can skip normalisation.

        Clauses the fold logic emits never contain duplicate or
        complementary literals (the AND/XOR encoders fold those away
        first), so a clause over fresh slots only can be appended to
        the solver arena verbatim — fresh variables are unassigned by
        construction, making satisfied/false-literal simplification a
        no-op.  Anything touching a boundary slot (whose per-frame
        literal may collide with another boundary's) stays on the
        normalising path.
        """
        if len(tvals) >= 2 and all(self._is_fresh(tv) for tv in tvals):
            offset = 2 + self.n_boundary
            self.pure.append(len(tvals))
            for tv in tvals:
                if tv > 0:
                    self.pure.append((tv - offset) << 1)
                else:
                    self.pure.append(((-tv - offset) << 1) | 1)
        else:
            self.mixed.append(tuple(tvals))

    # -- cell encoding (mirrors FrameEncoder.encode_cell exactly) -------
    def encode_cell(self, cell: Cell) -> None:
        op = cell.op
        out_name = cell.out.name
        if op is CellOp.CONST:
            self.tval_of[out_name] = (
                TRUE_TVAL if cell.param("value") & 1 else -TRUE_TVAL
            )
            return
        ins = [self.tval_of[s.name] for s in cell.ins]
        if op is CellOp.BUF:
            self.tval_of[out_name] = ins[0]
            return
        if op is CellOp.NOT:
            self.tval_of[out_name] = -ins[0]
            return
        if op is CellOp.AND:
            self.tval_of[out_name] = self._encode_and(ins)
            return
        if op is CellOp.OR:
            self.tval_of[out_name] = -self._encode_and([-tv for tv in ins])
            return
        if op is CellOp.XOR:
            self.tval_of[out_name] = self._encode_xor(ins)
            return
        raise EncodingError(f"cell op {op} is not gate-level; lower the circuit first")

    def _encode_and(self, ins: Sequence[int]) -> int:
        live: List[int] = []
        seen = set()
        for tv in ins:
            const = self._is_const(tv)
            if const == 0:
                return -TRUE_TVAL
            if const == 1:
                continue
            if -tv in seen:
                return -TRUE_TVAL  # a AND ~a
            if tv not in seen:
                seen.add(tv)
                live.append(tv)
        if not live:
            return TRUE_TVAL
        if len(live) == 1:
            return live[0]
        out = self.fresh()
        for tv in live:
            self.add_clause((-out, tv))
        self.add_clause(tuple([out] + [-tv for tv in live]))
        return out

    def _encode_xor(self, ins: Sequence[int]) -> int:
        acc: Optional[int] = None
        parity = 0
        for tv in ins:
            const = self._is_const(tv)
            if const is not None:
                parity ^= const
                continue
            if acc is None:
                acc = tv
            else:
                acc = self._xor2(acc, tv)
        if acc is None:
            return TRUE_TVAL if parity else -TRUE_TVAL
        return -acc if parity else acc

    def _xor2(self, a: int, b: int) -> int:
        if a == b:
            return -TRUE_TVAL
        if a == -b:
            return TRUE_TVAL
        out = self.fresh()
        self.add_clause((-out, a, b))
        self.add_clause((-out, -a, -b))
        self.add_clause((out, -a, b))
        self.add_clause((out, a, -b))
        return out


def compile_frame_program(lowered: LoweredCircuit) -> FrameProgram:
    """Compile the combinational logic of one frame into a template.

    Register ``q`` signals become boundary slots (in ``registers``
    order) and inputs become the first fresh slots (in ``inputs``
    order).  The clause template folds the netlist exactly as
    ``FrameEncoder`` would fold a frame whose boundary literals are all
    opaque; the op program preserves the unfolded structure for frames
    where constants make folding worthwhile.
    """
    circuit = lowered.circuit
    builder = _TemplateBuilder(len(circuit.registers))
    slot_of: Dict[str, int] = {}

    def slot(name: str) -> int:
        s = slot_of.get(name)
        if s is None:
            s = len(slot_of)
            slot_of[name] = s
        return s

    boundary_slots: List[int] = []
    for index, reg in enumerate(circuit.registers):
        builder.tval_of[reg.q.name] = 2 + index
        boundary_slots.append(slot(reg.q.name))
    input_slots: List[int] = []
    for sig in circuit.inputs:
        builder.tval_of[sig.name] = builder.fresh()
        input_slots.append(slot(sig.name))
    ops: List[Tuple[int, ...]] = []
    for cell in circuit.topo_cells():
        builder.encode_cell(cell)
        out_slot = slot(cell.out.name)
        if cell.op is CellOp.CONST:
            ops.append((OP_CONST, out_slot, cell.param("value") & 1))
        else:
            ops.append(
                (_OPCODE_OF[cell.op], out_slot)
                + tuple(slot_of[s.name] for s in cell.ins)
            )
    return FrameProgram(
        ops=tuple(ops),
        n_slots=len(slot_of),
        slot_of_name=slot_of,
        boundary_slots=tuple(boundary_slots),
        input_slots=tuple(input_slots),
        n_boundary=builder.n_boundary,
        n_fresh=builder.n_fresh,
        pure=tuple(builder.pure),
        mixed=tuple(builder.mixed),
        tval_of_name=builder.tval_of,
    )


def frame_program_for(lowered: LoweredCircuit) -> FrameProgram:
    """Memoized :func:`compile_frame_program`.

    The program is cached on the ``LoweredCircuit`` itself — lowered
    netlists are never mutated after construction (the same invariant
    the content-fingerprint cache relies on), so the template stays
    valid for the object's lifetime and is shared by every engine that
    unrolls the same lowering (BMC, the induction step, portfolio
    workers in-process).
    """
    program = getattr(lowered, "_frame_program", None)
    if program is None:
        program = compile_frame_program(lowered)
        try:
            lowered._frame_program = program
        except AttributeError:  # pragma: no cover - plain dataclass allows attrs
            pass
    return program

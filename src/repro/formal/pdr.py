"""Property-directed reachability (IC3/PDR): unbounded proofs.

This is the engine class the paper's commercial tool uses for its
unbounded results (the ``Mp``/``AM``/``I`` engines are IC3-family).
k-induction alone rarely proves taint properties — from an arbitrary
(unreachable) state, taint spreads to the sink within a few cycles —
whereas PDR discovers the inductive strengthening automatically.

Implementation notes:

- State variables are the gate-level register bits.  The transition
  relation is encoded once per frame solver: current-state variables,
  free inputs, combinational logic, and the bad/assumption signals.
- Frames ``F_0 .. F_N`` are clause sets over state variables; ``F_0``
  is the initial-state predicate.  Clauses are pushed forward during
  propagation; convergence is detected when two adjacent frames become
  equal.
- Blocked cubes are generalized by literal dropping (relative
  induction), which is where PDR earns its keep.
- Per-cycle assumption signals are conjoined into every frame query, so
  "bad" means "assumption-respecting violation" exactly as in BMC.

The module exposes :func:`pdr_prove` with the same property interface
as :func:`~repro.formal.bmc.bounded_model_check`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.bmc import _as_lowered
from repro.formal.certificate import Certificate
from repro.formal.counterexample import Counterexample
from repro.formal.encode import FrameEncoder
from repro.formal.properties import SafetyProperty
from repro.formal.sat.solver import Solver, SolveStatus
from repro.obs import NULL_TRACER


class PdrStatus(enum.Enum):
    PROVED = "proved"
    COUNTEREXAMPLE = "counterexample"
    UNKNOWN = "unknown"


@dataclass
class PdrResult:
    status: PdrStatus
    frames: int = 0
    counterexample: Optional[Counterexample] = None
    elapsed: float = 0.0
    # On PROVED: the inductive invariant as a checkable certificate
    # (see repro.formal.certificate.check_certificate).
    certificate: Optional[Certificate] = None

    @property
    def proved(self) -> bool:
        return self.status is PdrStatus.PROVED

    @property
    def invariant_clauses(self):
        """The proved inductive invariant's clauses (named literals)."""
        return self.certificate.clauses if self.certificate is not None else ()


class _TransitionSolver:
    """A solver holding one copy of the transition relation.

    Layout: state vars (register bits), input vars, combinational
    logic; exposes literals for bad, assumptions, and next-state bits.
    Frame clauses and blocked cubes are added over the *state* vars
    using activation literals per frame.
    """

    def __init__(self, lowered: LoweredCircuit, prop: SafetyProperty,
                 max_conflicts: Optional[int] = None) -> None:
        self.lowered = lowered
        self.max_conflicts = max_conflicts  # per-query conflict budget
        circuit = lowered.circuit
        self.solver = Solver()
        true_lit = self.solver.new_var()
        self.solver.add_clause((true_lit,))
        self.frame = FrameEncoder(self.solver, true_lit)
        self.state_names: List[str] = [reg.q.name for reg in circuit.registers]
        for name in self.state_names:
            self.frame.fresh(name)
        for sig in circuit.inputs:
            self.frame.fresh(sig.name)
        self.frame.encode_combinational(circuit)
        self.state_lit: Dict[str, int] = {
            name: self.frame.lit(name) for name in self.state_names
        }
        self.next_lit: Dict[str, int] = {
            reg.q.name: self.frame.lit(reg.d.name) for reg in circuit.registers
        }
        self.bad_lit = self._signal_lit(prop.bad)
        self.assumption_lits = [self._signal_lit(n) for n in prop.assumptions]
        for lit in self.assumption_lits:
            self.solver.add_clause((lit,))
        self._activation: List[int] = []  # one per frame; act => frame clauses
        self._act_level: Dict[int, int] = {}  # activation var -> frame level
        # Word-level input name -> per-bit frame literals, hoisted out of
        # input_values (it used to rebuild the input-name set per signal,
        # O(inputs x signals) per extracted counterexample state).
        input_names = {s.name for s in circuit.inputs}
        self._input_bit_lits: List[Tuple[str, List[int]]] = [
            (name, [self.frame.lit(sig.name) for sig in bit_sigs])
            for name, bit_sigs in lowered.bits.items()
            if bit_sigs and bit_sigs[0].name in input_names
        ]

    def _signal_lit(self, original_name: str) -> int:
        gate_sig = self.lowered.bits[original_name][0]
        return self.frame.lit(gate_sig.name)

    # -- frames --------------------------------------------------------
    def ensure_frames(self, count: int) -> None:
        while len(self._activation) < count:
            act = self.solver.new_var()
            self._act_level[act] = len(self._activation)
            self._activation.append(act)

    def activation(self, level: int) -> int:
        return self._activation[level]

    def frame_activations(self, level: int) -> List[int]:
        """Activation literals realising F_level (levels ``level .. N``)."""
        self.ensure_frames(level + 1)
        return self._activation[level:]

    def activation_level(self, lit: int) -> Optional[int]:
        """The frame level of an activation literal; None for any other
        literal (cube literals, the per-query ¬cube activator)."""
        return self._act_level.get(lit)

    def add_frame_clause(self, level: int, clause: Sequence[int]) -> None:
        """Add a clause over state literals, guarded by frame ``level``'s
        activation literal (it also holds in all stronger frames, which
        we encode by adding it at every level <= the given one lazily —
        here we rely on queries assuming activations of all levels >= i)."""
        self.solver.add_clause(tuple(clause) + (-self._activation[level],))

    # -- queries --------------------------------------------------------
    def solve(self, assumptions: Sequence[int], time_limit: Optional[float] = None):
        return self.solver.solve(assumptions=assumptions, time_limit=time_limit,
                                 max_conflicts=self.max_conflicts)

    def state_cube_from_model(self, model) -> Tuple[int, ...]:
        """Extract the current-state cube (as signed state literals)."""
        cube = []
        for name in self.state_names:
            lit = self.state_lit[name]
            if lit == self.frame.true_lit:
                continue
            if lit == -self.frame.true_lit:
                continue
            value = model[abs(lit)] ^ (lit < 0)
            cube.append(lit if value else -lit)
        return tuple(cube)

    def input_values(self, model) -> Dict[str, int]:
        values: Dict[str, int] = {}
        for name, lits in self._input_bit_lits:
            word = 0
            for i, lit in enumerate(lits):
                if model[abs(lit)] ^ (lit < 0):
                    word |= 1 << i
            values[name] = word
        return values


class _Pdr:
    def __init__(
        self,
        lowered: LoweredCircuit,
        prop: SafetyProperty,
        initial_values: Optional[Dict[str, int]] = None,
        max_conflicts: Optional[int] = None,
    ) -> None:
        self.lowered = lowered
        self.prop = prop
        self.ts = _TransitionSolver(lowered, prop, max_conflicts=max_conflicts)
        self.frames: List[Set[Tuple[int, ...]]] = [set()]  # clauses per level
        self.ts.ensure_frames(1)
        self._init_cube = self._initial_cube(initial_values or {})
        self._init_lits = set(self._init_cube)
        # F_0 = init: encode each init literal as a frame-0 unit clause.
        for lit in self._init_cube:
            self._add_clause(0, (lit,))
        self._trace_parent: Dict[Tuple[int, ...], Tuple] = {}
        # Clauses whose consecution core needed no frame clauses at all:
        # they are inductive on their own and push without re-querying.
        self._inductive: Set[Tuple[int, ...]] = set()

    # ------------------------------------------------------------------
    def _initial_cube(self, initial_values: Dict[str, int]) -> Tuple[int, ...]:
        cube = []
        symbolic = self.prop.symbolic_registers
        sym_all = self.prop.symbolic_all_registers
        orig_of = {}
        for orig, bits in self.lowered.bits.items():
            for i, sig in enumerate(bits):
                orig_of[sig.name] = (orig, i)
        for reg in self.lowered.circuit.registers:
            orig, bit_index = orig_of.get(reg.q.name, (reg.q.name, 0))
            if sym_all or orig in symbolic or reg.q.name in symbolic:
                continue
            if orig in initial_values:
                bit = (initial_values[orig] >> bit_index) & 1
            else:
                bit = reg.reset_value & 1
            lit = self.ts.state_lit[reg.q.name]
            if abs(lit) == abs(self.ts.frame.true_lit):
                continue
            cube.append(lit if bit else -lit)
        return tuple(cube)

    def _add_clause(self, level: int, clause: Sequence[int]) -> None:
        self.ts.ensure_frames(level + 1)
        while len(self.frames) <= level:
            self.frames.append(set())
        key = tuple(sorted(clause))
        if any(key in self.frames[l] for l in range(level, len(self.frames))):
            return
        self.frames[level].add(key)
        self.ts.add_frame_clause(level, clause)

    def _frame_assumptions(self, level: int) -> List[int]:
        """Activations realising F_level.

        A clause is *stored* at the highest level it is known to hold
        for; since frames weaken with the level (F_0 ⊆ F_1 ⊆ …), a
        clause stored at level k also holds for every F_i with i <= k.
        A query against F_level therefore assumes the activation
        literals of levels ``level .. N``.
        """
        return self.ts.frame_activations(level)

    # ------------------------------------------------------------------
    def run(
        self,
        max_frames: int = 100,
        time_limit: Optional[float] = None,
        tracer=None,
    ) -> PdrResult:
        started = time.monotonic()
        tracer = tracer or NULL_TRACER

        def remaining() -> Optional[float]:
            if time_limit is None:
                return None
            return time_limit - (time.monotonic() - started)

        def out_of_time() -> bool:
            rem = remaining()
            return rem is not None and rem <= 0

        # Level 0 check: can the initial state itself be bad?
        res = self.ts.solve(self._frame_assumptions(0) + [self.ts.bad_lit],
                            time_limit=remaining())
        if res.status is SolveStatus.SAT:
            return PdrResult(PdrStatus.COUNTEREXAMPLE, 0,
                             self._counterexample_from_trace([(None, res.model)]),
                             elapsed=time.monotonic() - started)
        if res.status is SolveStatus.UNKNOWN:
            return PdrResult(PdrStatus.UNKNOWN, 0, elapsed=time.monotonic() - started)

        level = 0
        while level < max_frames:
            if out_of_time():
                return PdrResult(PdrStatus.UNKNOWN, level,
                                 elapsed=time.monotonic() - started)
            level += 1
            self.ts.ensure_frames(level + 1)
            while len(self.frames) <= level:
                self.frames.append(set())
            solver = self.ts.solver
            counters_at_entry = (solver.conflicts, solver.decisions,
                                 solver.propagations, solver.learned,
                                 solver.restarts)
            with tracer.span("pdr.frame", cat="engine", frame=level) as span:
                # Block all bad states reachable at this level.
                while True:
                    if out_of_time():
                        return PdrResult(PdrStatus.UNKNOWN, level,
                                         elapsed=time.monotonic() - started)
                    res = self.ts.solve(
                        self._frame_assumptions(level) + [self.ts.bad_lit],
                        time_limit=remaining(),
                    )
                    if res.status is SolveStatus.UNKNOWN:
                        return PdrResult(PdrStatus.UNKNOWN, level,
                                         elapsed=time.monotonic() - started)
                    if res.status is SolveStatus.UNSAT:
                        break
                    cube = self.ts.state_cube_from_model(res.model)
                    trace_tail = (cube, self.ts.input_values(res.model), None)
                    blocked = self._block(cube, level, trace_tail, remaining())
                    if blocked is None:
                        return PdrResult(PdrStatus.UNKNOWN, level,
                                         elapsed=time.monotonic() - started)
                    if blocked is False:
                        return PdrResult(
                            PdrStatus.COUNTEREXAMPLE, level,
                            self._build_counterexample(),
                            elapsed=time.monotonic() - started,
                        )
                # Propagation: push clauses forward; detect fixpoint.
                fixpoint_level = self._propagate(level, remaining())
                if tracer.enabled:
                    span.set(
                        clauses=sum(len(f) for f in self.frames),
                        conflicts=solver.conflicts - counters_at_entry[0],
                        decisions=solver.decisions - counters_at_entry[1],
                        propagations=solver.propagations - counters_at_entry[2],
                        learned=solver.learned - counters_at_entry[3],
                        restarts=solver.restarts - counters_at_entry[4],
                    )
                    tracer.count("sat.conflicts", solver.conflicts - counters_at_entry[0])
                    tracer.count("sat.decisions", solver.decisions - counters_at_entry[1])
                    tracer.count("sat.propagations", solver.propagations - counters_at_entry[2])
                    tracer.count("sat.learned", solver.learned - counters_at_entry[3])
                    tracer.count("sat.restarts", solver.restarts - counters_at_entry[4])
            if fixpoint_level is not None:
                return PdrResult(PdrStatus.PROVED, level,
                                 elapsed=time.monotonic() - started,
                                 certificate=self._build_certificate(fixpoint_level))
        return PdrResult(PdrStatus.UNKNOWN, level, elapsed=time.monotonic() - started)

    # ------------------------------------------------------------------
    def _block(self, cube, level, trace_tail, budget) -> Optional[bool]:
        """Recursively block ``cube`` at ``level``.

        Returns True when blocked, False when a real counterexample was
        traced back to the initial states, None on budget exhaustion.
        """
        started = time.monotonic()

        def remaining():
            if budget is None:
                return None
            return budget - (time.monotonic() - started)

        obligations: List[Tuple[Tuple[int, ...], int, Tuple]] = [(cube, level, trace_tail)]
        self._cex_chain: List[Tuple] = []
        while obligations:
            if remaining() is not None and remaining() <= 0:
                return None
            current, lvl, tail = obligations.pop()
            # Obligation cubes are full predecessor states (generalized
            # clauses are never enqueued), so intersecting the initial
            # predicate means *being* an initial state — a concrete
            # counterexample, whatever level the obligation sits at.
            if self._intersects_init(current):
                self._cex_chain = self._collect_chain(tail)
                return False
            if lvl == 0:
                # Cannot be an initial state: blocked at level 0 by init.
                continue
            # Is the cube already excluded at lvl?
            res = self.ts.solve(
                self._frame_assumptions(lvl) + list(current),
                time_limit=remaining(),
            )
            if res.status is SolveStatus.UNKNOWN:
                return None
            if res.status is SolveStatus.UNSAT:
                continue
            # Relative consecution: F_{lvl-1} ∧ ¬cube ∧ T ∧ cube' SAT?
            res, core_cube, core_level = self._consecution_query(
                current, lvl - 1, remaining())
            if res is None:
                return None
            if res.status is SolveStatus.SAT:
                pred = self.ts.state_cube_from_model(res.model)
                pred_tail = (pred, self.ts.input_values(res.model), tail)
                obligations.append((current, lvl, tail))
                obligations.append((pred, lvl - 1, pred_tail))
                continue
            # No predecessor: generalize and add the blocking clause at
            # the highest frame the consecution core supports.
            generalized, store_at = self._generalize(
                current, lvl, remaining(), core_cube, core_level)
            if generalized is None:
                return None
            clause = tuple(-lit for lit in generalized)
            self._add_clause(store_at, clause)
            # The state is now excluded up to store_at; keep chasing it
            # at the next frame so it cannot resurface there later
            # (Een-style obligation rescheduling).
            if store_at < level:
                obligations.append((current, store_at + 1, tail))
        return True

    def _consecution_query(self, cube, from_level, budget):
        """SAT query: F_from ∧ ¬cube ∧ T ∧ cube'.

        The cube's next-state literals ride in as *assumptions*, so an
        UNSAT answer carries a failed-assumption core.  Returns a triple
        ``(result, core_cube, core_level)``; ``(None, None, None)`` on a
        blown budget.  On UNSAT, ``core_cube`` is the subset of ``cube``
        whose primed literals the refutation used, and ``core_level`` is
        the lowest frame whose activation appears in the core — the
        query was really UNSAT relative to that (weaker) frame — or -1
        when no frame clause was needed at all (the clause is inductive
        unconditionally).
        """
        act = self.ts.solver.new_var()
        self.ts.solver.add_clause((-act,) + tuple(-lit for lit in cube))
        next_lits = [self._to_next(lit) for lit in cube]
        res = self.ts.solve(
            self._frame_assumptions(from_level) + [act] + next_lits,
            time_limit=budget,
        )
        # Permanently disable the temporary ¬cube clause.
        self.ts.solver.add_clause((-act,))
        if res.status is SolveStatus.UNKNOWN:
            return None, None, None
        if res.status is not SolveStatus.UNSAT or res.core is None:
            return res, None, None
        core_set = set(res.core)
        core_cube = tuple(
            lit for lit, nxt in zip(cube, next_lits) if nxt in core_set
        )
        levels = [
            lvl for lvl in map(self.ts.activation_level, core_set)
            if lvl is not None
        ]
        core_level = min(levels) if levels else -1
        return res, core_cube, core_level

    def _to_next(self, state_lit: int) -> int:
        """Map a signed current-state literal to the next-state literal."""
        table = getattr(self, "_next_of_var", None)
        if table is None:
            table = {}
            for name, lit in self.ts.state_lit.items():
                table[abs(lit)] = (lit, self.ts.next_lit[name])
            self._next_of_var = table
        base, nxt = table[abs(state_lit)]
        return nxt if (state_lit > 0) == (base > 0) else -nxt

    def _intersects_init(self, cube) -> bool:
        return not any(-lit in self._init_lits for lit in cube)

    def _build_certificate(self, fixpoint_level: int) -> Certificate:
        """Export the inductive invariant found at the fixpoint.

        When ``frames[lvl]`` empties during propagation, every clause
        still stored at a level > lvl holds at F_lvl and F_{lvl+1}
        alike, so their conjunction is closed under the transition
        relation and excludes ``bad`` — the invariant.  Clauses are
        translated from solver literals to named register-bit literals
        so the certificate survives the process boundary and can be
        re-checked against an independent encoding.
        """
        lit_to_name = {abs(lit): name for name, lit in self.ts.state_lit.items()}
        clauses = set()
        for frame in self.frames[fixpoint_level + 1:]:
            for clause in frame:
                named = []
                for lit in clause:
                    name = lit_to_name[abs(lit)]
                    base = self.ts.state_lit[name]
                    value = 1 if (lit > 0) == (base > 0) else 0
                    named.append((name, value))
                clauses.add(tuple(sorted(named)))
        return Certificate(
            prop_name=self.prop.name,
            bad=self.prop.bad,
            clauses=tuple(sorted(clauses)),
        )

    def _store_level(self, block_level: int, core_level: Optional[int],
                     clause: Tuple[int, ...]) -> int:
        """Translate a consecution core's frame level into the level the
        blocking clause can be *stored* at.

        A query against F_{k} whose core only used activations of levels
        >= m was really UNSAT relative to the weaker frame F_m, so the
        clause holds up to F_{m+1} — an eager multi-level push that
        skips the intermediate per-frame re-queries.  A core with no
        frame activation at all (-1) means the clause is inductive
        unconditionally; it is marked so propagation pushes it for free
        forever.
        """
        if core_level is None:
            return block_level
        if core_level < 0:
            self._inductive.add(tuple(sorted(clause)))
            return max(block_level, len(self.frames) - 1)
        return max(block_level, core_level + 1)

    def _generalize(self, cube, level, budget, core_cube=None,
                    core_level=None) -> Tuple[Optional[Tuple[int, ...]], int]:
        """Shrink a blocked cube, then compute its storage level.

        First seeds from the failed-assumption core — every literal
        whose primed version the refutation never used is dropped in one
        step, no re-query needed (the sub-cube's consecution query is a
        strictly stronger formula; SMPT's ``sub_clause_finder_unsat_core``)
        — repairing an init intersection by re-adding one literal that
        separates the cube from the initial states.  Then falls back to
        MIC-style one-literal-at-a-time dropping, re-querying each drop.
        Returns ``(generalized cube, storage level)``.
        """
        started = time.monotonic()
        current = list(cube)
        evidence = core_level  # core level backing `current`'s blocking
        if core_cube is not None and 0 < len(core_cube) < len(current):
            trial = list(core_cube)
            if self._intersects_init(trial):
                for lit in cube:
                    if -lit in self._init_lits and lit not in trial:
                        trial.append(lit)
                        break
            if not self._intersects_init(trial):
                current = trial
        for lit in list(current):
            if budget is not None and time.monotonic() - started > budget:
                break
            if len(current) <= 1 or lit not in current:
                continue
            trial = [l for l in current if l != lit]
            if self._intersects_init(trial):
                continue
            res, sub_core, sub_level = self._consecution_query(
                tuple(trial), level - 1, budget)
            if res is not None and res.status is SolveStatus.UNSAT:
                current = trial
                evidence = sub_level
        generalized = tuple(current)
        clause = tuple(-lit for lit in generalized)
        return generalized, self._store_level(level, evidence, clause)

    def _propagate(self, top_level: int, budget) -> Optional[int]:
        """Push clauses to higher frames; returns the level whose frame
        emptied out (fixpoint: F_lvl == F_{lvl+1}, an inductive
        invariant) or None.

        Core-aware: a clause already known inductive pushes without a
        query, and a re-query whose core is frame-local (only used
        activations of higher levels) jumps the clause straight to the
        level its core supports.
        """
        started = time.monotonic()
        for lvl in range(1, top_level):
            for clause in sorted(self.frames[lvl]):
                if budget is not None and time.monotonic() - started > budget:
                    return None
                if clause in self._inductive:
                    self.frames[lvl].discard(clause)
                    self._add_clause(lvl + 1, clause)
                    continue
                # clause holds at lvl; push when F_lvl ∧ T ∧ ¬clause' UNSAT.
                cube = tuple(-lit for lit in clause)
                res, _core_cube, core_level = self._consecution_query(
                    cube, lvl, budget)
                if res is not None and res.status is SolveStatus.UNSAT:
                    self.frames[lvl].discard(clause)
                    self._add_clause(
                        self._store_level(lvl + 1, core_level, clause), clause)
            if not self.frames[lvl]:
                return lvl
        return None

    # -- counterexample reconstruction ----------------------------------
    def _collect_chain(self, tail) -> List[Tuple]:
        chain = []
        node = tail
        while node is not None:
            cube, inputs, parent = node
            chain.append((cube, inputs))
            node = parent
        return chain  # innermost (initial) state first

    def _build_counterexample(self) -> Counterexample:
        chain = self._cex_chain
        if not chain:
            raise RuntimeError("no counterexample chain recorded")
        initial_cube, _ = chain[0]
        initial_state = self._cube_to_state(initial_cube)
        inputs = [frame_inputs for _, frame_inputs in chain]
        return Counterexample(
            length=len(inputs),
            inputs=inputs,
            initial_state=initial_state,
            bad_signal=self.prop.bad,
        )

    def _counterexample_from_trace(self, pairs) -> Counterexample:
        _, model = pairs[0]
        cube = self.ts.state_cube_from_model(model)
        return Counterexample(
            length=1,
            inputs=[self.ts.input_values(model)],
            initial_state=self._cube_to_state(cube),
            bad_signal=self.prop.bad,
        )

    def _cube_to_state(self, cube) -> Dict[str, int]:
        lit_to_name = {abs(lit): name for name, lit in self.ts.state_lit.items()}
        bit_values: Dict[str, int] = {}
        for lit in cube:
            name = lit_to_name.get(abs(lit))
            if name is None:
                continue
            base_lit = self.ts.state_lit[name]
            value = 1 if (lit > 0) == (base_lit > 0) else 0
            bit_values[name] = value
        # Re-pack bit registers into word-level original names.
        state: Dict[str, int] = {}
        for orig, bit_sigs in self.lowered.bits.items():
            if not bit_sigs or bit_sigs[0].name not in bit_values and all(
                s.name not in bit_values for s in bit_sigs
            ):
                continue
            word = 0
            known = False
            for i, sig in enumerate(bit_sigs):
                if sig.name in bit_values:
                    known = True
                    word |= bit_values[sig.name] << i
            if known:
                state[orig] = word
        return state


def pdr_prove(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    max_frames: int = 100,
    time_limit: Optional[float] = None,
    initial_values: Optional[Dict[str, int]] = None,
    max_conflicts: Optional[int] = None,
    tracer=None,
) -> PdrResult:
    """Attempt an unbounded proof of ``prop`` with IC3/PDR.

    Notes:

    - counterexamples reported by PDR may be longer than minimal
      (unlike BMC's shortest-first search); replay them for the trace;
    - ``init_assumptions`` are treated as an over-approximation (PDR
      allows any initial state the reset/symbolic spec permits): proofs
      remain sound, and counterexamples are re-validated by replay —
      one that violates an init assumption is downgraded to UNKNOWN
      (use BMC to search for a genuine one);
    - ``max_conflicts`` bounds every individual SAT query by conflict
      count; an exceeded budget surfaces as UNKNOWN, deterministically;
    - ``tracer`` records one span per PDR level with the frame-clause
      count and the SAT counters spent on that level attached.
    """
    lowered = _as_lowered(circuit, prop)
    engine = _Pdr(lowered, prop, initial_values, max_conflicts=max_conflicts)
    result = engine.run(max_frames=max_frames, time_limit=time_limit, tracer=tracer)
    if (
        result.status is PdrStatus.COUNTEREXAMPLE
        and prop.init_assumptions
        and isinstance(circuit, Circuit)
    ):
        waveform = result.counterexample.replay(circuit)
        if any(waveform.value(name, 0) == 0 for name in prop.init_assumptions):
            return PdrResult(PdrStatus.UNKNOWN, result.frames,
                             elapsed=result.elapsed)
    return result

"""Self-composition: two-copy product machines (Section 2.1).

Self-composition verifies non-interference directly: duplicate the
design, share the public inputs, leave the secrets free in each copy,
and check that the sinks agree.  The paper uses it (a) as the baseline
verification style of Contract Shadow Logic and (b), in a bounded,
mostly-concrete form, as the *exact* falsely-tainted-signal test of
Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind


def _rename_signal(sig: Signal, prefix: str, shared: Set[str]) -> Signal:
    if sig.name in shared:
        return sig
    module = f"{prefix}.{sig.module}" if sig.module else prefix
    return Signal(f"{prefix}.{sig.name}", sig.width, sig.kind, module=module)


def rename_circuit(
    circuit: Circuit, prefix: str, shared_inputs: Optional[Set[str]] = None
) -> Circuit:
    """A structural copy of ``circuit`` with every name prefixed.

    Inputs listed in ``shared_inputs`` keep their original names so two
    renamed copies can be merged into one product circuit that feeds
    both from the same input.
    """
    shared = set(shared_inputs or ())
    out = Circuit(f"{prefix}.{circuit.name}")
    for sig in circuit.signals.values():
        out.add_signal(_rename_signal(sig, prefix, shared))
    for reg in circuit.registers:
        out.add_register(
            Register(
                _rename_signal(reg.q, prefix, shared),
                _rename_signal(reg.d, prefix, shared),
                reg.reset_value,
            )
        )
    for cell in circuit.cells:
        out.add_cell(
            Cell(
                cell.op,
                _rename_signal(cell.out, prefix, shared),
                tuple(_rename_signal(s, prefix, shared) for s in cell.ins),
                cell.params,
                module=f"{prefix}.{cell.module}" if cell.module else prefix,
            )
        )
    return out


@dataclass
class ProductCircuit:
    """Two renamed copies of a design merged into one circuit."""

    circuit: Circuit
    prefix1: str
    prefix2: str
    shared_inputs: Set[str]

    def c1(self, name: str) -> str:
        return name if name in self.shared_inputs else f"{self.prefix1}.{name}"

    def c2(self, name: str) -> str:
        return name if name in self.shared_inputs else f"{self.prefix2}.{name}"

    # ------------------------------------------------------------------
    def _monitor(self, op: CellOp, out_name: str, in_names: Tuple[str, ...]) -> str:
        # Monitors are OUTPUT signals so that netlist optimisation
        # passes (dead-code elimination) always preserve them.
        ins = tuple(self.circuit.signal(n) for n in in_names)
        out = Signal(out_name, 1, SignalKind.OUTPUT, module="_monitor")
        self.circuit.add_cell(Cell(op, out, ins, module="_monitor"))
        return out_name

    def equal(self, name: str) -> str:
        """1-bit signal that is 1 when the copies agree on ``name``."""
        out_name = f"_monitor.eq.{name}"
        if out_name in self.circuit.signals:
            return out_name
        return self._monitor(CellOp.EQ, out_name, (self.c1(name), self.c2(name)))

    def differs(self, name: str) -> str:
        out_name = f"_monitor.neq.{name}"
        if out_name in self.circuit.signals:
            return out_name
        return self._monitor(CellOp.NEQ, out_name, (self.c1(name), self.c2(name)))

    def any_differs(self, names: Sequence[str], label: str = "sinks") -> str:
        """1-bit signal: 1 when the copies disagree on any listed signal."""
        diff_names = [self.differs(n) for n in names]
        if len(diff_names) == 1:
            return diff_names[0]
        out_name = f"_monitor.any_neq.{label}"
        ins = tuple(self.circuit.signal(n) for n in diff_names)
        out = Signal(out_name, 1, SignalKind.OUTPUT, module="_monitor")
        self.circuit.add_cell(Cell(CellOp.OR, out, ins, module="_monitor"))
        return out_name

    def all_equal(self, names: Sequence[str], label: str = "obs") -> str:
        eq_names = [self.equal(n) for n in names]
        if len(eq_names) == 1:
            return eq_names[0]
        out_name = f"_monitor.all_eq.{label}"
        ins = tuple(self.circuit.signal(n) for n in eq_names)
        out = Signal(out_name, 1, SignalKind.OUTPUT, module="_monitor")
        self.circuit.add_cell(Cell(CellOp.AND, out, ins, module="_monitor"))
        return out_name

    def equal_registers_initially(self, register_names: Iterable[str], label: str = "init") -> str:
        """1-bit signal asserting the two copies' registers agree.

        Meant to be used as an *init assumption*: both copies start with
        the same (symbolic) values for the listed registers.
        """
        return self.all_equal(list(register_names), label=label)


def self_composition(
    circuit: Circuit,
    shared_inputs: Optional[Set[str]] = None,
    prefix1: str = "c1",
    prefix2: str = "c2",
) -> ProductCircuit:
    """Merge two renamed copies of ``circuit`` into one product circuit.

    Inputs in ``shared_inputs`` appear once and feed both copies (the
    "public inputs are equal" part of the self-composition recipe);
    every other input is duplicated (the free secrets).
    """
    shared = set(shared_inputs or ())
    unknown = shared - {s.name for s in circuit.inputs}
    if unknown:
        raise ValueError(f"shared inputs not found in circuit: {sorted(unknown)}")
    copy1 = rename_circuit(circuit, prefix1, shared)
    copy2 = rename_circuit(circuit, prefix2, shared)
    merged = Circuit(f"selfcomp.{circuit.name}")
    for source in (copy1, copy2):
        for sig in source.signals.values():
            merged.add_signal(sig)
        for reg in source.registers:
            if reg.q.name not in {r.q.name for r in merged.registers}:
                merged.add_register(reg)
        for cell in source.cells:
            if merged.producer(cell.out) is None:
                merged.add_cell(cell)
    return ProductCircuit(merged, prefix1, prefix2, shared)

"""k-induction: unbounded proofs (the paper's Mp/AM/I engines).

The base case is ordinary BMC; the inductive step checks that ``k``
consecutive good cycles from an *arbitrary* state cannot be followed by
a bad one.  With ``unique_states=True`` simple-path constraints are
added, making the method complete (it will eventually prove any true
invariant, at the cost of quadratic state-difference clauses).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit, lower_to_gates
from repro.formal.bmc import (
    BmcStatus,
    bounded_model_check,
    extract_counterexample,
    record_solver_stats,
)
from repro.formal.cache import SolveCache
from repro.formal.counterexample import Counterexample
from repro.formal.properties import SafetyProperty
from repro.formal.sat.solver import SolveStatus
from repro.formal.unroll import Unroller
from repro.obs import NULL_TRACER


class InductionStatus(enum.Enum):
    PROVED = "proved"
    COUNTEREXAMPLE = "counterexample"
    UNKNOWN = "unknown"


@dataclass
class InductionResult:
    status: InductionStatus
    k: int                                   # induction depth reached/used
    bound: int                               # base-case depth proven clean
    counterexample: Optional[Counterexample] = None
    elapsed: float = 0.0

    @property
    def proved(self) -> bool:
        return self.status is InductionStatus.PROVED


def k_induction(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    max_k: int = 20,
    time_limit: Optional[float] = None,
    unique_states: bool = True,
    max_conflicts: Optional[int] = None,
    cache: Optional[SolveCache] = None,
    tracer=None,
) -> InductionResult:
    """Attempt an unbounded proof of ``prop`` by k-induction.

    ``max_conflicts`` bounds each SAT call by conflict count (a
    deterministic budget); ``cache`` memoizes base-case frames, so an
    induction run following a BMC run on the same netlist answers its
    base case from cached verdicts.  ``tracer`` records per-k base and
    step spans with the SAT counters attached.
    """
    started = time.monotonic()
    tracer = tracer or NULL_TRACER

    def remaining() -> Optional[float]:
        if time_limit is None:
            return None
        return time_limit - (time.monotonic() - started)

    lowered = _as_lowered(circuit, prop)

    # Step-case unroller: arbitrary start state, no init assumptions.
    step = Unroller(lowered, symbolic_all=True)
    step.add_frame()
    for name in prop.assumptions:
        step.assume_signal(0, name, 1)

    base_proven = -1
    for k in range(1, max_k + 1):
        budget = remaining()
        if budget is not None and budget <= 0:
            return InductionResult(InductionStatus.UNKNOWN, k - 1, base_proven,
                                   elapsed=time.monotonic() - started)
        # Base case: no violation within the first k cycles (depths 0..k-1).
        with tracer.span("kind.base", cat="engine", k=k) as base_span:
            base = bounded_model_check(
                lowered, prop, max_bound=k - 1, time_limit=remaining(),
                start_bound=base_proven + 1,
                max_conflicts=max_conflicts, cache=cache, tracer=tracer,
            )
            base_span.set(status=base.status.value, bound=base.bound)
        if base.status is BmcStatus.COUNTEREXAMPLE:
            return InductionResult(
                InductionStatus.COUNTEREXAMPLE, k, base.bound, base.counterexample,
                elapsed=time.monotonic() - started,
            )
        if base.status is BmcStatus.TIMEOUT:
            return InductionResult(InductionStatus.UNKNOWN, k, base.bound,
                                   elapsed=time.monotonic() - started)
        base_proven = max(base_proven, base.bound)

        # Inductive step: frames 0..k, good at 0..k-1, bad at k.
        step.ensure_depth(k + 1)
        frame = k
        for name in prop.assumptions:
            step.assume_signal(frame, name, 1)
        prev_bad = step.lit_of_bit(k - 1, prop.bad)
        step.solver.add_clause((-prev_bad,))
        if unique_states:
            for earlier in range(k):
                step.add_state_uniqueness(earlier, k)
        bad_lit = step.lit_of_bit(k, prop.bad)
        with tracer.span("kind.step", cat="engine", k=k) as step_span:
            result = step.solver.solve(assumptions=[bad_lit], time_limit=remaining(),
                                       max_conflicts=max_conflicts)
            if tracer.enabled:
                step_span.set(status=result.status.value)
                record_solver_stats(tracer, step_span, result)
        if result.status is SolveStatus.UNSAT:
            return InductionResult(InductionStatus.PROVED, k, base_proven,
                                   elapsed=time.monotonic() - started)
        if result.status is SolveStatus.UNKNOWN:
            return InductionResult(InductionStatus.UNKNOWN, k, base_proven,
                                   elapsed=time.monotonic() - started)
        # SAT: the step fails at this k; deepen.
    return InductionResult(InductionStatus.UNKNOWN, max_k, base_proven,
                           elapsed=time.monotonic() - started)


def _as_lowered(circuit: Union[Circuit, LoweredCircuit], prop=None) -> LoweredCircuit:
    from repro.formal.bmc import _as_lowered as shared

    return shared(circuit, prop)

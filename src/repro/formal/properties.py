"""Safety property descriptions consumed by the model checker.

A :class:`SafetyProperty` is stated over 1-bit signals of a (cell-level)
circuit:

- ``bad`` — the property is violated in a cycle where this signal is 1
  (e.g. "the sink's taint bit", or "the two self-composition copies
  disagree at the sink");
- ``assumptions`` — environment constraints that must hold (be 1) at
  *every* cycle (e.g. the contract constraint check: the ISA machine's
  observation taint is 0);
- ``init_assumptions`` — constraints on the initial state only (e.g.
  "both copies start with equal public memory");
- ``symbolic_registers`` — registers whose initial value is left free
  (universally quantified) instead of taking their reset value.  This is
  how "arbitrary program in instruction memory" and "arbitrary secret"
  are modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple


@dataclass(frozen=True)
class SafetyProperty:
    """An invariant ("bad never becomes 1") with environment assumptions."""

    name: str
    bad: str
    assumptions: Tuple[str, ...] = ()
    init_assumptions: Tuple[str, ...] = ()
    symbolic_registers: FrozenSet[str] = frozenset()
    symbolic_all_registers: bool = False

    def with_extra_assumptions(self, *extra: str) -> "SafetyProperty":
        return SafetyProperty(
            name=self.name,
            bad=self.bad,
            assumptions=self.assumptions + tuple(extra),
            init_assumptions=self.init_assumptions,
            symbolic_registers=self.symbolic_registers,
            symbolic_all_registers=self.symbolic_all_registers,
        )

"""Inductive-invariant certificates for PDR proofs, with an
independent checker.

A PROVED verdict from :mod:`repro.formal.pdr` is only as trustworthy as
the engine that produced it.  A :class:`Certificate` makes the verdict
*checkable*: it names the inductive invariant PDR converged on — a
conjunction of clauses over register bits, each literal ``(bit name,
value)`` — in circuit-level terms, independent of any solver literal
numbering.  :func:`check_certificate` then re-establishes the three
conditions that make the invariant a proof, from scratch, on a fresh
solver and a fresh encoding:

1. **Initialisation** — every initial state satisfies the invariant.
   Checked by evaluation against the reset/symbolic initial-state
   spec (no solver involved).
2. **Consecution** — ``Inv ∧ A ∧ T → Inv'`` where ``A`` are the
   property's per-cycle assumption signals: for each clause ``c``,
   the query ``Inv ∧ A ∧ T ∧ ¬c'`` must be UNSAT.
3. **Safety** — ``Inv ∧ A → ¬bad``: the query ``Inv ∧ A ∧ bad`` must
   be UNSAT.

Together these imply no assumption-respecting execution from an
initial state ever reaches ``bad`` — the same statement the engines
make.  The checker shares only the lowering pipeline and the reference
:class:`~repro.formal.encode.FrameEncoder` with PDR; none of PDR's
frames, activation literals or generalization logic is involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.bmc import _as_lowered
from repro.formal.encode import FrameEncoder
from repro.formal.properties import SafetyProperty
from repro.formal.sat.solver import Solver, SolveStatus

# One invariant literal: (gate-level register bit name, required value).
Literal = Tuple[str, int]
# One invariant clause: a disjunction of literals.
Clause = Tuple[Literal, ...]


@dataclass(frozen=True)
class Certificate:
    """An inductive invariant proving a safety property.

    ``clauses`` are conjoined; each clause is a disjunction of
    ``(register bit name, value)`` literals.  The empty conjunction
    (``clauses == ()``) is the trivial invariant ``True`` — it
    certifies properties whose ``bad`` signal is structurally
    unreachable (the safety check alone must pass).
    """

    prop_name: str
    bad: str
    clauses: Tuple[Clause, ...] = ()

    def as_dict(self) -> dict:
        """A JSON-ready representation (also what pickles across the
        portfolio's worker boundary)."""
        return {
            "prop": self.prop_name,
            "bad": self.bad,
            "clauses": [[[name, value] for name, value in clause]
                        for clause in self.clauses],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        return cls(
            prop_name=data["prop"],
            bad=data["bad"],
            clauses=tuple(
                tuple((str(name), int(value)) for name, value in clause)
                for clause in data["clauses"]
            ),
        )


@dataclass
class CertificateCheck:
    """Outcome of :func:`check_certificate`."""

    ok: bool
    reason: str = ""
    clauses_checked: int = 0

    def __bool__(self) -> bool:
        return self.ok


def _pinned_initial_bits(
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    initial_values: Optional[Dict[str, int]],
) -> Dict[str, Optional[int]]:
    """Initial value per register bit name; None for symbolic bits."""
    initial_values = initial_values or {}
    symbolic = prop.symbolic_registers
    sym_all = prop.symbolic_all_registers
    orig_of: Dict[str, Tuple[str, int]] = {}
    for orig, bits in lowered.bits.items():
        for i, sig in enumerate(bits):
            orig_of[sig.name] = (orig, i)
    pinned: Dict[str, Optional[int]] = {}
    for reg in lowered.circuit.registers:
        orig, bit_index = orig_of.get(reg.q.name, (reg.q.name, 0))
        if sym_all or orig in symbolic or reg.q.name in symbolic:
            pinned[reg.q.name] = None
        elif orig in initial_values:
            pinned[reg.q.name] = (initial_values[orig] >> bit_index) & 1
        else:
            pinned[reg.q.name] = reg.reset_value & 1
    return pinned


def check_certificate(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    certificate: Certificate,
    initial_values: Optional[Dict[str, int]] = None,
    time_limit: Optional[float] = None,
) -> CertificateCheck:
    """Independently verify that ``certificate`` proves ``prop``.

    Returns a :class:`CertificateCheck`; ``ok`` is True only when all
    three conditions (initialisation, consecution, safety) hold.  A
    failed or inconclusive SAT query names the offending clause in
    ``reason``.
    """
    lowered = _as_lowered(circuit, prop)
    design = lowered.circuit

    # -- initialisation: pure evaluation, no solver -------------------
    pinned = _pinned_initial_bits(lowered, prop, initial_values)
    for idx, clause in enumerate(certificate.clauses):
        names = set()
        satisfied = False
        for name, value in clause:
            if name not in pinned:
                return CertificateCheck(
                    False, f"clause {idx} references unknown register bit {name!r}")
            if pinned[name] == value:
                satisfied = True
                break
            if (name, 1 - value) in names:
                satisfied = True  # (b=0 ∨ b=1): tautological on a free bit
                break
            names.add((name, value))
        if not satisfied:
            return CertificateCheck(
                False, f"clause {idx} can be violated by an initial state")

    # -- fresh encoding of one transition frame -----------------------
    solver = Solver()
    true_lit = solver.new_var()
    solver.add_clause((true_lit,))
    frame = FrameEncoder(solver, true_lit)
    for reg in design.registers:
        frame.fresh(reg.q.name)
    for sig in design.inputs:
        frame.fresh(sig.name)
    frame.encode_combinational(design)
    state_lit = {reg.q.name: frame.lit(reg.q.name) for reg in design.registers}
    next_lit = {reg.q.name: frame.lit(reg.d.name) for reg in design.registers}

    def signal_lit(original_name: str) -> int:
        return frame.lit(lowered.bits[original_name][0].name)

    for name in prop.assumptions:
        solver.add_clause((signal_lit(name),))

    def lit_of(name: str, value: int, table: Dict[str, int]) -> int:
        base = table[name]
        return base if value else -base

    # Assert the invariant itself over the current state.
    for clause in certificate.clauses:
        if not solver.add_clause([lit_of(n, v, state_lit) for n, v in clause]):
            # Inv ∧ A is contradictory: the invariant excludes every
            # assumption-respecting state, so consecution and safety
            # hold vacuously — but initialisation already passed above,
            # which is impossible unless A itself is unsatisfiable.
            return CertificateCheck(
                True, "invariant and assumptions are jointly unsatisfiable",
                clauses_checked=len(certificate.clauses))

    # -- consecution: Inv ∧ A ∧ T ∧ ¬c' UNSAT for every clause c ------
    for idx, clause in enumerate(certificate.clauses):
        assumptions = [-lit_of(n, v, next_lit) for n, v in clause]
        res = solver.solve(assumptions=assumptions, time_limit=time_limit)
        if res.status is SolveStatus.SAT:
            return CertificateCheck(
                False, f"clause {idx} is not inductive relative to the invariant",
                clauses_checked=idx)
        if res.status is SolveStatus.UNKNOWN:
            return CertificateCheck(
                False, f"consecution check for clause {idx} exceeded its budget",
                clauses_checked=idx)

    # -- safety: Inv ∧ A ∧ bad UNSAT ----------------------------------
    res = solver.solve(assumptions=[signal_lit(prop.bad)], time_limit=time_limit)
    if res.status is SolveStatus.SAT:
        return CertificateCheck(
            False, "invariant does not exclude the bad states",
            clauses_checked=len(certificate.clauses))
    if res.status is SolveStatus.UNKNOWN:
        return CertificateCheck(
            False, "safety check exceeded its budget",
            clauses_checked=len(certificate.clauses))
    return CertificateCheck(True, clauses_checked=len(certificate.clauses))

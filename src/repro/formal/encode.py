"""Tseitin encoding of gate-level circuits into solver clauses.

The encoder works frame-at-a-time: :class:`FrameEncoder` maps every
1-bit gate signal of one time frame to a solver literal.  Wiring ops
(``BUF``/``NOT``/``CONST``) are handled by *literal aliasing* — they add
no variables or clauses — and gates with constant inputs are folded, so
the CNF stays close to the design's real logic size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit
from repro.formal.sat.solver import Solver


class EncodingError(RuntimeError):
    pass


class FrameEncoder:
    """Encodes the combinational logic of a circuit for one time frame."""

    def __init__(self, solver: Solver, true_lit: int) -> None:
        self.solver = solver
        self.true_lit = true_lit
        self.lit_of: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def define(self, name: str, lit: int) -> None:
        self.lit_of[name] = lit

    def fresh(self, name: str) -> int:
        lit = self.solver.new_var()
        self.lit_of[name] = lit
        return lit

    def lit(self, name: str) -> int:
        try:
            return self.lit_of[name]
        except KeyError:
            raise EncodingError(f"signal {name!r} not yet encoded in this frame") from None

    def const_lit(self, value: int) -> int:
        return self.true_lit if value else -self.true_lit

    def _is_const(self, lit: int) -> Optional[int]:
        if lit == self.true_lit:
            return 1
        if lit == -self.true_lit:
            return 0
        return None

    # ------------------------------------------------------------------
    def encode_cell(self, cell: Cell) -> None:
        op = cell.op
        out_name = cell.out.name
        if op is CellOp.CONST:
            self.define(out_name, self.const_lit(cell.param("value") & 1))
            return
        ins = [self.lit(s.name) for s in cell.ins]
        if op is CellOp.BUF:
            self.define(out_name, ins[0])
            return
        if op is CellOp.NOT:
            self.define(out_name, -ins[0])
            return
        if op is CellOp.AND:
            self.define(out_name, self._encode_and(ins))
            return
        if op is CellOp.OR:
            # De Morgan via the AND encoder keeps folding logic in one place.
            self.define(out_name, -self._encode_and([-l for l in ins]))
            return
        if op is CellOp.XOR:
            self.define(out_name, self._encode_xor(ins))
            return
        raise EncodingError(f"cell op {op} is not gate-level; lower the circuit first")

    def _encode_and(self, ins: Sequence[int]) -> int:
        live: List[int] = []
        seen = set()
        for lit in ins:
            const = self._is_const(lit)
            if const == 0:
                return -self.true_lit
            if const == 1:
                continue
            if -lit in seen:
                return -self.true_lit  # a AND ~a
            if lit not in seen:
                seen.add(lit)
                live.append(lit)
        if not live:
            return self.true_lit
        if len(live) == 1:
            return live[0]
        out = self.solver.new_var()
        add = self.solver.add_clause
        for lit in live:
            add((-out, lit))
        add(tuple([out] + [-l for l in live]))
        return out

    def _encode_xor(self, ins: Sequence[int]) -> int:
        acc: Optional[int] = None
        parity = 0
        for lit in ins:
            const = self._is_const(lit)
            if const is not None:
                parity ^= const
                continue
            if acc is None:
                acc = lit
            else:
                acc = self._xor2(acc, lit)
        if acc is None:
            return self.const_lit(parity)
        return -acc if parity else acc

    def _xor2(self, a: int, b: int) -> int:
        if a == b:
            return -self.true_lit
        if a == -b:
            return self.true_lit
        out = self.solver.new_var()
        add = self.solver.add_clause
        add((-out, a, b))
        add((-out, -a, -b))
        add((out, -a, b))
        add((out, a, -b))
        return out

    # ------------------------------------------------------------------
    def encode_combinational(self, circuit: Circuit) -> None:
        """Encode all cells (inputs/registers must already have literals)."""
        for cell in circuit.topo_cells():
            self.encode_cell(cell)

"""A from-scratch CDCL SAT solver."""

from repro.formal.sat.cnf import CNF
from repro.formal.sat.solver import Solver, SolveStatus, SolveResult

__all__ = ["CNF", "Solver", "SolveStatus", "SolveResult"]

"""CDCL SAT solver (MiniSat-style), written from scratch.

Features: two-watched-literal propagation with *blocker* literals, 1UIP
conflict analysis with clause learning, VSIDS variable activities with
phase saving, Luby restarts, LBD-aware learned-clause deletion,
assumption literals, and conflict/time budgets (returning UNKNOWN
instead of blowing the model-checking time limit — this is how the
paper's timeouts are realised).

Hot-path representation: clauses of three or more literals live in one
flat Python list of ints (the *arena*).  A clause at integer reference
``ref`` has the layout::

    _ca[ref]     = size (number of literals)
    _ca[ref+1]   = 1 if learnt else 0
    _ca[ref+2..] = literals in internal encoding (2*v / 2*v+1)

Watch lists are flat ``blocker, ref`` pairs, so propagation touches the
arena only when the blocker literal is not already satisfied.

Binary clauses — the majority of a Tseitin encoding (every AND/OR input
contributes one) — never enter the arena at all: each literal has a
dedicated flat list of the *other* literals of its binary clauses,
walked before the long-clause watches in a tight loop with no arena
access and no watch relocation (a binary watch never moves).  A binary
*reason* is encoded in the reason slot itself as ``-2 - other_lit``
(arena references are ``>= 0``, ``-1`` means decision/assumption).
Arena slot 0 is a reserved scratch clause used to hand binary
conflicts to the analyzer in the uniform arena shape.

Frames stamped by the frame-template encoder enter the solver through
:meth:`Solver.stamp_clauses`, which offsets pre-encoded template
literals without re-normalising them.
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


class SolveStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolveResult:
    status: SolveStatus
    model: Optional[List[bool]] = None  # model[v] for v in 1..n; model[0] unused
    # Per-call search statistics (this solve() only, not cumulative):
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned: int = 0                    # clauses learned from conflicts
    restarts: int = 0
    # On UNSAT under assumptions: the subset of the passed assumption
    # literals (DIMACS-signed, as passed) the refutation actually used —
    # re-solving under just these is still UNSAT.  An empty list means
    # the formula is UNSAT regardless of the assumptions.  None when the
    # result is not UNSAT (or predates core extraction).
    core: Optional[List[int]] = None

    def value(self, var: int) -> bool:
        if self.model is None:
            raise ValueError("no model available")
        return self.model[var]

    def lit_true(self, lit: int) -> bool:
        v = self.value(abs(lit))
        return v if lit > 0 else not v


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


_NO_REASON = -1
_BINARY = -2  # reason encoding base: reason == -2 - other_lit for binaries


class Solver:
    """CDCL solver over internal literal encoding ``2*v`` / ``2*v+1``.

    The public API uses DIMACS-signed literals.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        # Arena slot 0 is the scratch clause for binary conflicts:
        # [size=2, learnt=0, lit, lit]; real clauses start at ref 4.
        self._ca: List[int] = [2, 0, 0, 0]
        self._clause_refs: List[int] = []   # problem clauses (>= 3 lits)
        self._learnt_refs: List[int] = []   # learnt clauses (>= 3 lits)
        self._num_binaries = 0              # binaries live only in watch lists
        self._cla_act: Dict[int, float] = {}
        self._cla_lbd: Dict[int, int] = {}
        self._watches: List[List[int]] = [[], []]  # flat (blocker, ref) pairs
        self._bin_watches: List[List[int]] = [[], []]  # other lit per binary
        self._assign: List[int] = [-1]  # -1 unassigned, 0 false, 1 true ; index by var
        self._level: List[int] = [0]
        self._reason: List[int] = [_NO_REASON]  # ref | -1 | (-2 - other_lit)
        self._activity: List[float] = [0.0]
        self._phase: List[int] = [0]
        self._trail: List[int] = []  # internal lits in assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._order_heap: List[tuple] = []  # lazy max-heap via (-activity, var)
        self._ok = True
        # Cumulative counters across every solve() on this instance
        # (per-call figures are returned on each SolveResult).
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # variable / clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(-1)
        self._level.append(0)
        self._reason.append(_NO_REASON)
        self._activity.append(0.0)
        self._phase.append(0)
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])
        return self.num_vars

    def new_vars(self, count: int) -> int:
        """Bulk-allocate ``count`` fresh variables; returns the first one.

        Equivalent to ``count`` calls of :meth:`new_var` but without the
        per-call overhead — the frame stamper allocates a whole frame's
        variables at once.
        """
        if count <= 0:
            return self.num_vars + 1
        first = self.num_vars + 1
        self.num_vars += count
        self._assign.extend([-1] * count)
        self._level.extend([0] * count)
        self._reason.extend([_NO_REASON] * count)
        self._activity.extend([0.0] * count)
        self._phase.extend([0] * count)
        self._watches.extend([] for _ in range(2 * count))
        self._bin_watches.extend([] for _ in range(2 * count))
        return first

    def ensure_vars(self, n: int) -> None:
        if n > self.num_vars:
            self.new_vars(n - self.num_vars)

    @property
    def num_clauses(self) -> int:
        """Problem + learnt clauses currently in the database."""
        return len(self._clause_refs) + len(self._learnt_refs) + self._num_binaries

    @staticmethod
    def _internal(lit: int) -> int:
        return (abs(lit) << 1) | (lit < 0)

    @staticmethod
    def _external(ilit: int) -> int:
        var = ilit >> 1
        return -var if ilit & 1 else var

    def _lit_value(self, ilit: int) -> int:
        """-1 unassigned, 1 true, 0 false."""
        v = self._assign[ilit >> 1]
        if v < 0:
            return -1
        return v ^ (ilit & 1)

    def _add_binary(self, l0: int, l1: int) -> None:
        # Indexed like _watches: _bin_watches[lit] is consulted when
        # lit itself becomes false, yielding the implied other literal.
        self._bin_watches[l0].append(l1)
        self._bin_watches[l1].append(l0)
        self._num_binaries += 1

    def _new_clause(self, ilits: Sequence[int], learnt: bool) -> int:
        """Append a clause (>= 3 literals) to the arena and watch it."""
        ca = self._ca
        ref = len(ca)
        ca.append(len(ilits))
        ca.append(1 if learnt else 0)
        ca.extend(ilits)
        l0, l1 = ilits[0], ilits[1]
        w0 = self._watches[l0]
        w0.append(l1)
        w0.append(ref)
        w1 = self._watches[l1]
        w1.append(l0)
        w1.append(ref)
        if learnt:
            self._learnt_refs.append(ref)
        else:
            self._clause_refs.append(ref)
        return ref

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause; returns False if the formula became UNSAT."""
        if not self._ok:
            return False
        for lit in lits:
            self.ensure_vars(abs(lit))
        # Normalise: dedupe, drop tautologies, drop false lits at level 0.
        seen: Dict[int, int] = {}
        norm: List[int] = []
        for lit in lits:
            ilit = self._internal(lit)
            if seen.get(ilit ^ 1):
                return True  # tautology
            if seen.get(ilit):
                continue
            value = self._lit_value(ilit)
            if value == 1 and self._level[ilit >> 1] == 0:
                return True  # already satisfied
            if value == 0 and self._level[ilit >> 1] == 0:
                continue  # already false forever
            seen[ilit] = 1
            norm.append(ilit)
        if not norm:
            self._ok = False
            return False
        if len(norm) == 1:
            if not self._enqueue(norm[0], _NO_REASON):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict >= 0:
                self._ok = False
                return False
            return True
        if len(norm) == 2:
            self._add_binary(norm[0], norm[1])
        else:
            self._new_clause(norm, learnt=False)
        return True

    def add_cnf(self, cnf) -> bool:
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def stamp_clauses(self, template: Sequence[int], first_var: int) -> None:
        """Bulk-add pre-encoded clauses by offsetting variable indices.

        ``template`` is a flat ``[size, lit, lit, ..., size, lit, ...]``
        stream whose literals are internal-encoded relative to variable
        0 (literal ``(k << 1) | sign`` refers to the k-th variable of a
        freshly allocated block).  ``first_var`` is the base returned by
        :meth:`new_vars` for that block.

        The caller guarantees every clause has >= 2 literals, no
        duplicate/complementary literals, and only variables from the
        fresh block — exactly what a pre-folded Tseitin frame template
        produces — so normalisation, tautology checks and level-0
        simplification are all skipped.  This is the frame-stamping
        fast path: a couple of list appends per clause, with binary
        clauses going straight into the watch lists.
        """
        ca = self._ca
        watches = self._watches
        bin_watches = self._bin_watches
        offset = first_var << 1
        refs = self._clause_refs
        i = 0
        n = len(template)
        while i < n:
            size = template[i]
            if size == 2:
                l0 = template[i + 1] + offset
                l1 = template[i + 2] + offset
                bin_watches[l0].append(l1)
                bin_watches[l1].append(l0)
                self._num_binaries += 1
                i += 3
                continue
            ref = len(ca)
            ca.append(size)
            ca.append(0)
            end = i + 1 + size
            for j in range(i + 1, end):
                ca.append(template[j] + offset)
            l0 = ca[ref + 2]
            l1 = ca[ref + 3]
            w0 = watches[l0]
            w0.append(l1)
            w0.append(ref)
            w1 = watches[l1]
            w1.append(l0)
            w1.append(ref)
            refs.append(ref)
            i = end

    # ------------------------------------------------------------------
    # assignment / propagation
    # ------------------------------------------------------------------
    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, ilit: int, reason: int) -> bool:
        value = self._lit_value(ilit)
        if value >= 0:
            return value == 1
        var = ilit >> 1
        self._assign[var] = 1 - (ilit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = 1 - (ilit & 1)
        self._trail.append(ilit)
        return True

    def _propagate(self) -> int:
        """Propagate the trail; returns a conflict clause ref or -1.

        For each newly-false literal the dedicated binary list is
        walked first (one value test per clause, nothing to relocate),
        then the long-clause watches, compacted in place with a write
        index.  A binary conflict is written into the arena's scratch
        slot (ref 0) so conflict analysis sees the uniform arena
        clause shape.
        """
        trail = self._trail
        assign = self._assign
        level = self._level
        reason = self._reason
        phase = self._phase
        watches = self._watches
        bin_watches = self._bin_watches
        ca = self._ca
        trail_lim = self._trail_lim
        visited = 0
        conflict = _NO_REASON
        while self._qhead < len(trail):
            ilit = trail[self._qhead]
            self._qhead += 1
            false_lit = ilit ^ 1  # this literal just became false
            bwl = bin_watches[false_lit]
            if bwl:
                visited += len(bwl)
                breason = -2 - false_lit
                for other in bwl:
                    ov = assign[other >> 1]
                    if ov < 0:
                        # Other literal unassigned: implied.
                        var = other >> 1
                        assign[var] = 1 - (other & 1)
                        level[var] = len(trail_lim)
                        reason[var] = breason
                        phase[var] = 1 - (other & 1)
                        trail.append(other)
                    elif not (ov ^ (other & 1)):
                        # Both literals of (false_lit, other) false.
                        ca[2] = false_lit
                        ca[3] = other
                        self._qhead = len(trail)
                        conflict = 0
                        break
                if conflict >= 0:
                    break
            wl = watches[false_lit]
            i = j = 0
            n = len(wl)
            while i < n:
                blocker = wl[i]
                ref = wl[i + 1]
                i += 2
                visited += 1
                bv = assign[blocker >> 1]
                if bv >= 0 and bv ^ (blocker & 1):
                    # Blocker satisfied: clause true, arena untouched.
                    wl[j] = blocker
                    wl[j + 1] = ref
                    j += 2
                    continue
                # Ensure the false literal sits at the second slot.
                first = ca[ref + 2]
                if first == false_lit:
                    first = ca[ref + 3]
                    ca[ref + 2] = first
                    ca[ref + 3] = false_lit
                fv = assign[first >> 1]
                if fv >= 0 and fv ^ (first & 1):
                    wl[j] = first
                    wl[j + 1] = ref
                    j += 2
                    continue
                # Look for a new watch.
                found = False
                for k in range(ref + 4, ref + 2 + ca[ref]):
                    other = ca[k]
                    ov = assign[other >> 1]
                    if ov < 0 or ov ^ (other & 1):
                        ca[ref + 3] = other
                        ca[k] = false_lit
                        wo = watches[other]
                        wo.append(first)
                        wo.append(ref)
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                wl[j] = first
                wl[j + 1] = ref
                j += 2
                if fv < 0:
                    var = first >> 1
                    assign[var] = 1 - (first & 1)
                    level[var] = len(trail_lim)
                    reason[var] = ref
                    phase[var] = 1 - (first & 1)
                    trail.append(first)
                else:
                    # Conflict: keep remaining watches and report.
                    if i < n:
                        wl[j: j + (n - i)] = wl[i:n]
                        j += n - i
                    self._qhead = len(trail)
                    conflict = ref
                    break
            del wl[j:]
            if conflict >= 0:
                break
        self.propagations += visited
        return conflict

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, ref: int) -> None:
        act = self._cla_act.get(ref, 0.0) + self._cla_inc
        self._cla_act[ref] = act
        if act > 1e20:
            for r in self._learnt_refs:
                self._cla_act[r] = self._cla_act.get(r, 0.0) * 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> tuple:
        """Return (learnt clause internal lits, backtrack level, lbd)."""
        ca = self._ca
        level = self._level
        reason_of = self._reason
        trail = self._trail
        seen = bytearray(self.num_vars + 1)
        learnt: List[int] = [0]  # placeholder for asserting literal
        path_count = 0
        ilit = -1
        index = len(trail) - 1
        ref = conflict
        current_level = len(self._trail_lim)

        while True:
            if ref <= _BINARY:
                # Binary reason: the clause implying ilit is (ilit, -2 - ref).
                reason_lits = (-2 - ref,)
            else:
                if ca[ref + 1]:
                    self._bump_clause(ref)
                reason_lits = ca[ref + 2: ref + 2 + ca[ref]]
            for lit in reason_lits:
                if lit == ilit:
                    continue  # the literal this reason implied
                var = lit >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(lit)
            # Select next literal to expand from trail.
            while not seen[trail[index] >> 1]:
                index -= 1
            ilit = trail[index]
            index -= 1
            var = ilit >> 1
            seen[var] = 0
            path_count -= 1
            if path_count == 0:
                break
            ref = reason_of[var]
        learnt[0] = ilit ^ 1

        # Conflict-clause minimisation (recursive, simple self-subsumption).
        abstract_levels = 0
        for lit in learnt[1:]:
            abstract_levels |= 1 << (level[lit >> 1] & 31)
        kept = [learnt[0]]
        for lit in learnt[1:]:
            if reason_of[lit >> 1] == _NO_REASON or not self._redundant(
                    lit, seen, abstract_levels):
                kept.append(lit)
        learnt = kept

        # Literal-block distance: distinct decision levels in the clause
        # (the glucose quality measure steering DB reduction).
        lbd = len({level[lit >> 1] for lit in learnt})

        if len(learnt) == 1:
            back_level = 0
        else:
            # Find the literal with the second-highest level; move to pos 1.
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = level[learnt[1] >> 1]
        return learnt, back_level, lbd

    def _redundant(self, lit: int, seen: bytearray, abstract_levels: int) -> bool:
        """Is ``lit`` implied by the rest of the learnt clause? (bounded DFS)"""
        ca = self._ca
        level = self._level
        reason_of = self._reason
        stack = [lit]
        cleared: List[int] = []
        while stack:
            current = stack.pop()
            ref = reason_of[current >> 1]
            if ref == _NO_REASON:
                for var in cleared:
                    seen[var] = 0
                return False
            if ref <= _BINARY:
                others = (-2 - ref,)
            else:
                others = ca[ref + 2: ref + 2 + ca[ref]]
            for other in others:
                if other == current or other == (current ^ 1):
                    continue
                var = other >> 1
                if seen[var] or level[var] == 0:
                    continue
                if reason_of[var] == _NO_REASON or not (
                        (1 << (level[var] & 31)) & abstract_levels):
                    for v in cleared:
                        seen[v] = 0
                    return False
                seen[var] = 1
                cleared.append(var)
                stack.append(other)
        return True

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        assign = self._assign
        reason = self._reason
        activity = self._activity
        heap = self._order_heap
        for ilit in reversed(self._trail[limit:]):
            var = ilit >> 1
            assign[var] = -1
            reason[var] = _NO_REASON
            heapq.heappush(heap, (-activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self._order_heap:
            neg_act, var = heapq.heappop(self._order_heap)
            if self._assign[var] < 0 and -neg_act == self._activity[var]:
                return var
            if self._assign[var] < 0:
                heapq.heappush(self._order_heap, (-self._activity[var], var))
                neg_act2, var2 = heapq.heappop(self._order_heap)
                if self._assign[var2] < 0 and -neg_act2 == self._activity[var2]:
                    return var2
        for var in range(1, self.num_vars + 1):
            if self._assign[var] < 0:
                return var
        return 0

    def _rebuild_heap(self) -> None:
        self._order_heap = [
            (-self._activity[v], v) for v in range(1, self.num_vars + 1) if self._assign[v] < 0
        ]
        heapq.heapify(self._order_heap)

    # ------------------------------------------------------------------
    # learned clause DB reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Drop the worst half of the learnt clauses, LBD-aware.

        Glue clauses (LBD <= 2), binary clauses (never in the arena)
        and clauses locked as reasons on the trail are always kept; the
        remaining candidates are ranked worst-first by (high LBD, low
        activity).  The arena is compacted afterwards so dead clauses
        free their memory.
        """
        reason = self._reason
        locked = set()
        for ilit in self._trail:
            ref = reason[ilit >> 1]
            if ref >= 0:
                locked.add(ref)
        lbd_of = self._cla_lbd
        cand = [
            ref for ref in self._learnt_refs
            if lbd_of.get(ref, 3) > 2 and ref not in locked
        ]
        if len(cand) < 2:
            return
        act_of = self._cla_act
        cand.sort(key=lambda ref: (-lbd_of.get(ref, 3), act_of.get(ref, 0.0)))
        removed = set(cand[: len(cand) // 2])
        if removed:
            self._compact(removed)

    def _compact(self, removed: set) -> None:
        """Rebuild the arena without ``removed``; remap refs and watches."""
        old = self._ca
        new_ca: List[int] = old[0:4]  # preserve the binary-conflict scratch
        remap: Dict[int, int] = {}

        def copy(ref: int) -> int:
            new_ref = len(new_ca)
            new_ca.extend(old[ref: ref + 2 + old[ref]])
            remap[ref] = new_ref
            return new_ref

        self._clause_refs = [copy(ref) for ref in self._clause_refs]
        new_learnts: List[int] = []
        new_act: Dict[int, float] = {}
        new_lbd: Dict[int, int] = {}
        for ref in self._learnt_refs:
            if ref in removed:
                continue
            new_ref = copy(ref)
            new_act[new_ref] = self._cla_act.get(ref, 0.0)
            new_lbd[new_ref] = self._cla_lbd.get(ref, 3)
            new_learnts.append(new_ref)
        self._ca = new_ca
        self._learnt_refs = new_learnts
        self._cla_act = new_act
        self._cla_lbd = new_lbd
        self._reason = [
            remap[ref] if ref >= 0 else ref for ref in self._reason
        ]
        # Rebuild long-clause watches (binary lists are arena-free and
        # untouched): re-watch every survivor on its first two slots.
        watches: List[List[int]] = [[] for _ in range(len(self._watches))]
        for ref in self._clause_refs:
            l0 = new_ca[ref + 2]
            l1 = new_ca[ref + 3]
            watches[l0].append(l1)
            watches[l0].append(ref)
            watches[l1].append(l0)
            watches[l1].append(ref)
        for ref in new_learnts:
            l0 = new_ca[ref + 2]
            l1 = new_ca[ref + 3]
            watches[l0].append(l1)
            watches[l0].append(ref)
            watches[l1].append(l0)
            watches[l1].append(ref)
        self._watches = watches

    def _analyze_final(self, ilits: Sequence[int]) -> List[int]:
        """Final-conflict analysis (MiniSat's ``analyze_final``).

        Starting from the literals of a conflicting clause (or a single
        falsified assumption literal), walk the reason graph down the
        trail and collect the *decisions* it rests on.  Inside an
        assumption-UNSAT exit every decision on the trail is an
        assumption, so the result — externalized back to DIMACS signs —
        is the failed-assumption core.  Must run before backtracking.
        """
        seen = bytearray(self.num_vars + 1)
        level = self._level
        for ilit in ilits:
            if level[ilit >> 1] > 0:
                seen[ilit >> 1] = 1
        core: List[int] = []
        trail = self._trail
        reason = self._reason
        ca = self._ca
        start = self._trail_lim[0] if self._trail_lim else len(trail)
        for i in range(len(trail) - 1, start - 1, -1):
            ilit = trail[i]
            var = ilit >> 1
            if not seen[var]:
                continue
            seen[var] = 0
            ref = reason[var]
            if ref == _NO_REASON:
                core.append(self._external(ilit))
            elif ref <= _BINARY:
                other = -2 - ref
                if level[other >> 1] > 0:
                    seen[other >> 1] = 1
            else:
                for k in range(ref + 2, ref + 2 + ca[ref]):
                    other = ca[k]
                    if other >> 1 != var and level[other >> 1] > 0:
                        seen[other >> 1] = 1
        return core

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Solve under assumptions with optional budgets."""
        local_conflicts = 0
        local_learned = 0
        local_restarts = 0
        decisions_at_entry = self.decisions
        propagations_at_entry = self.propagations

        def _result(status: SolveStatus, model=None, core=None) -> SolveResult:
            return SolveResult(
                status,
                model=model,
                conflicts=local_conflicts,
                decisions=self.decisions - decisions_at_entry,
                propagations=self.propagations - propagations_at_entry,
                learned=local_learned,
                restarts=local_restarts,
                core=core,
            )

        if not self._ok:
            return _result(SolveStatus.UNSAT, core=[])
        self._backtrack(0)
        conflict = self._propagate()
        if conflict >= 0:
            self._ok = False
            return _result(SolveStatus.UNSAT, core=[])
        self._rebuild_heap()

        for lit in assumptions:
            self.ensure_vars(abs(lit))
        iassumptions = [self._internal(l) for l in assumptions]
        deadline = time.monotonic() + time_limit if time_limit is not None else None
        conflict_budget = max_conflicts
        restart_idx = 1
        restart_limit = 64 * _luby(restart_idx)
        conflicts_since_restart = 0
        max_learnts = max(1000, len(self._clause_refs) // 2)
        decisions_until_poll = 256
        assign = self._assign

        while True:
            conflict = self._propagate()
            if conflict >= 0:
                self.conflicts += 1
                local_conflicts += 1
                conflicts_since_restart += 1
                if not self._trail_lim:
                    self._ok = False
                    return _result(SolveStatus.UNSAT)
                # A conflict below the assumption levels means the
                # assumptions themselves are inconsistent.
                learnt, back_level, lbd = self._analyze(conflict)
                if len(self._trail_lim) <= len(iassumptions):
                    # The conflict is entailed by the assumptions alone:
                    # extract which of them the refutation used before
                    # the trail is unwound.
                    ca = self._ca
                    core = self._analyze_final(
                        ca[conflict + 2: conflict + 2 + ca[conflict]])
                    self._backtrack(0)
                    return _result(SolveStatus.UNSAT, core=core)
                back_level = max(back_level, 0)
                self._backtrack(back_level)
                self.learned += 1
                local_learned += 1
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], _NO_REASON):
                        self._ok = False
                        return _result(SolveStatus.UNSAT)
                elif len(learnt) == 2:
                    # Learnt binaries go straight into the watch lists
                    # (and, like all binaries, are never deleted).
                    self._add_binary(learnt[0], learnt[1])
                    self._enqueue(learnt[0], -2 - learnt[1])
                else:
                    ref = self._new_clause(learnt, learnt=True)
                    self._cla_lbd[ref] = lbd
                    self._bump_clause(ref)
                    self._enqueue(learnt[0], ref)
                self._var_inc /= 0.95
                self._cla_inc /= 0.999
                if conflict_budget is not None and local_conflicts >= conflict_budget:
                    self._backtrack(0)
                    return _result(SolveStatus.UNKNOWN)
                if deadline is not None and local_conflicts % 256 == 0 and time.monotonic() > deadline:
                    self._backtrack(0)
                    return _result(SolveStatus.UNKNOWN)
                if conflicts_since_restart >= restart_limit:
                    restart_idx += 1
                    restart_limit = 64 * _luby(restart_idx)
                    conflicts_since_restart = 0
                    self.restarts += 1
                    local_restarts += 1
                    # Assumption levels are re-created as decisions after
                    # the restart, so a full backtrack is safe.
                    self._backtrack(0)
                if len(self._learnt_refs) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue

            # No conflict: extend assignment.  The deadline is also
            # polled on a decision counter — a low-conflict instance
            # would otherwise never reach the per-conflict check and
            # blow straight past its time limit.
            decisions_until_poll -= 1
            if decisions_until_poll <= 0:
                decisions_until_poll = 256
                if deadline is not None and time.monotonic() > deadline:
                    self._backtrack(0)
                    return _result(SolveStatus.UNKNOWN)
            if len(self._trail_lim) < len(iassumptions):
                ilit = iassumptions[len(self._trail_lim)]
                value = self._lit_value(ilit)
                if value == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    # The assumption is already falsified: its negation
                    # is implied by earlier assumptions (or by the
                    # formula itself at level 0).
                    if self._level[ilit >> 1] == 0:
                        core = [self._external(ilit)]
                    else:
                        core = [self._external(ilit)] + self._analyze_final([ilit])
                    self._backtrack(0)
                    return _result(SolveStatus.UNSAT, core=core)
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(ilit, _NO_REASON)
                continue

            var = self._pick_branch_var()
            if var == 0:
                model = [False] * (self.num_vars + 1)
                for v in range(1, self.num_vars + 1):
                    model[v] = assign[v] == 1
                result = _result(SolveStatus.SAT, model=model)
                self._backtrack(0)
                return result
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            ilit = (var << 1) | (1 - self._phase[var])
            self._enqueue(ilit, _NO_REASON)

"""CDCL SAT solver (MiniSat-style), written from scratch.

Features: two-watched-literal propagation, 1UIP conflict analysis with
clause learning, VSIDS variable activities with phase saving, Luby
restarts, activity-based learned-clause deletion, assumption literals,
and conflict/time budgets (returning UNKNOWN instead of blowing the
model-checking time limit — this is how the paper's timeouts are
realised).
"""

from __future__ import annotations

import enum
import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


class SolveStatus(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SolveResult:
    status: SolveStatus
    model: Optional[List[bool]] = None  # model[v] for v in 1..n; model[0] unused
    # Per-call search statistics (this solve() only, not cumulative):
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    learned: int = 0                    # clauses learned from conflicts
    restarts: int = 0

    def value(self, var: int) -> bool:
        if self.model is None:
            raise ValueError("no model available")
        return self.model[var]

    def lit_true(self, lit: int) -> bool:
        v = self.value(abs(lit))
        return v if lit > 0 else not v


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence 1,1,2,1,1,2,4,…"""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class _Clause:
    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: List[int], learnt: bool) -> None:
        self.lits = lits
        self.learnt = learnt
        self.activity = 0.0


class Solver:
    """CDCL solver over internal literal encoding ``2*v`` / ``2*v+1``.

    The public API uses DIMACS-signed literals.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self._clauses: List[_Clause] = []
        self._learnts: List[_Clause] = []
        self._watches: List[List[_Clause]] = [[], []]  # indexed by internal lit
        self._assign: List[int] = [-1]  # -1 unassigned, 0 false, 1 true ; index by var
        self._level: List[int] = [0]
        self._reason: List[Optional[_Clause]] = [None]
        self._activity: List[float] = [0.0]
        self._phase: List[int] = [0]
        self._trail: List[int] = []  # internal lits in assignment order
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._var_inc = 1.0
        self._cla_inc = 1.0
        self._order_heap: List[tuple] = []  # lazy max-heap via (-activity, var)
        self._ok = True
        # Cumulative counters across every solve() on this instance
        # (per-call figures are returned on each SolveResult).
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # variable / clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(-1)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(0)
        self._watches.append([])
        self._watches.append([])
        return self.num_vars

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    @staticmethod
    def _internal(lit: int) -> int:
        return (abs(lit) << 1) | (lit < 0)

    @staticmethod
    def _external(ilit: int) -> int:
        var = ilit >> 1
        return -var if ilit & 1 else var

    def _lit_value(self, ilit: int) -> int:
        """-1 unassigned, 1 true, 0 false."""
        v = self._assign[ilit >> 1]
        if v < 0:
            return -1
        return v ^ (ilit & 1)

    def add_clause(self, lits: Sequence[int]) -> bool:
        """Add a problem clause; returns False if the formula became UNSAT."""
        if not self._ok:
            return False
        for lit in lits:
            self.ensure_vars(abs(lit))
        # Normalise: dedupe, drop tautologies, drop false lits at level 0.
        seen: Dict[int, int] = {}
        norm: List[int] = []
        for lit in lits:
            ilit = self._internal(lit)
            if seen.get(ilit ^ 1):
                return True  # tautology
            if seen.get(ilit):
                continue
            value = self._lit_value(ilit)
            if value == 1 and self._level[ilit >> 1] == 0:
                return True  # already satisfied
            if value == 0 and self._level[ilit >> 1] == 0:
                continue  # already false forever
            seen[ilit] = 1
            norm.append(ilit)
        if not norm:
            self._ok = False
            return False
        if len(norm) == 1:
            if not self._enqueue(norm[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        clause = _Clause(norm, learnt=False)
        self._clauses.append(clause)
        self._watch(clause)
        return True

    def add_cnf(self, cnf) -> bool:
        self.ensure_vars(cnf.num_vars)
        for clause in cnf.clauses:
            if not self.add_clause(clause):
                return False
        return True

    def _watch(self, clause: _Clause) -> None:
        self._watches[clause.lits[0]].append(clause)
        self._watches[clause.lits[1]].append(clause)

    # ------------------------------------------------------------------
    # assignment / propagation
    # ------------------------------------------------------------------
    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, ilit: int, reason: Optional[_Clause]) -> bool:
        value = self._lit_value(ilit)
        if value >= 0:
            return value == 1
        var = ilit >> 1
        self._assign[var] = 1 - (ilit & 1)
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._phase[var] = 1 - (ilit & 1)
        self._trail.append(ilit)
        return True

    def _propagate(self) -> Optional[_Clause]:
        while self._qhead < len(self._trail):
            ilit = self._trail[self._qhead]
            self._qhead += 1
            false_lit = ilit ^ 1  # this literal just became false
            watch_list = self._watches[false_lit]
            self._watches[false_lit] = []
            i = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                self.propagations += 1
                lits = clause.lits
                # Ensure the false literal is at position 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == 1:
                    self._watches[false_lit].append(clause)
                    continue
                # Look for a new watch.
                found = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1]].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Unit or conflicting.
                self._watches[false_lit].append(clause)
                if not self._enqueue(first, clause):
                    # Conflict: restore remaining watches and report.
                    while i < n:
                        self._watches[false_lit].append(watch_list[i])
                        i += 1
                    self._qhead = len(self._trail)
                    return clause
        return None

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------
    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _bump_clause(self, clause: _Clause) -> None:
        clause.activity += self._cla_inc
        if clause.activity > 1e20:
            for c in self._learnts:
                c.activity *= 1e-20
            self._cla_inc *= 1e-20

    def _analyze(self, conflict: _Clause) -> tuple:
        """Return (learnt clause internal lits, backtrack level)."""
        seen = [False] * (self.num_vars + 1)
        learnt: List[int] = [0]  # placeholder for asserting literal
        path_count = 0
        ilit = -1
        index = len(self._trail) - 1
        reason: Optional[_Clause] = conflict
        current_level = self._decision_level

        while True:
            assert reason is not None
            self._bump_clause(reason)
            for lit in reason.lits:
                var = lit >> 1
                if lit == ilit:
                    continue  # the literal this reason implied
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        path_count += 1
                    else:
                        learnt.append(lit)
            # Select next literal to expand from trail.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            ilit = self._trail[index]
            index -= 1
            var = ilit >> 1
            seen[var] = False
            path_count -= 1
            if path_count == 0:
                break
            reason = self._reason[var]
        learnt[0] = ilit ^ 1

        # Conflict-clause minimisation (recursive, simple self-subsumption).
        abstract_levels = 0
        for lit in learnt[1:]:
            abstract_levels |= 1 << (self._level[lit >> 1] & 31)
        kept = [learnt[0]]
        for lit in learnt[1:]:
            if self._reason[lit >> 1] is None or not self._redundant(lit, seen, abstract_levels):
                kept.append(lit)
        learnt = kept

        if len(learnt) == 1:
            back_level = 0
        else:
            # Find the literal with the second-highest level; move to pos 1.
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[learnt[i] >> 1] > self._level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._level[learnt[1] >> 1]
        return learnt, back_level

    def _redundant(self, lit: int, seen: List[bool], abstract_levels: int) -> bool:
        """Is ``lit`` implied by the rest of the learnt clause? (bounded DFS)"""
        stack = [lit]
        cleared: List[int] = []
        while stack:
            current = stack.pop()
            reason = self._reason[current >> 1]
            if reason is None:
                for var in cleared:
                    seen[var] = False
                return False
            for other in reason.lits:
                if other == current or other == (current ^ 1):
                    continue
                var = other >> 1
                if seen[var] or self._level[var] == 0:
                    continue
                if self._reason[var] is None or not ((1 << (self._level[var] & 31)) & abstract_levels):
                    for v in cleared:
                        seen[v] = False
                    return False
                seen[var] = True
                cleared.append(var)
                stack.append(other)
        return True

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        limit = self._trail_lim[level]
        for ilit in reversed(self._trail[limit:]):
            var = ilit >> 1
            self._assign[var] = -1
            self._reason[var] = None
            heapq.heappush(self._order_heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        while self._order_heap:
            neg_act, var = heapq.heappop(self._order_heap)
            if self._assign[var] < 0 and -neg_act == self._activity[var]:
                return var
            if self._assign[var] < 0:
                heapq.heappush(self._order_heap, (-self._activity[var], var))
                neg_act2, var2 = heapq.heappop(self._order_heap)
                if self._assign[var2] < 0 and -neg_act2 == self._activity[var2]:
                    return var2
        for var in range(1, self.num_vars + 1):
            if self._assign[var] < 0:
                return var
        return 0

    def _rebuild_heap(self) -> None:
        self._order_heap = [
            (-self._activity[v], v) for v in range(1, self.num_vars + 1) if self._assign[v] < 0
        ]
        heapq.heapify(self._order_heap)

    # ------------------------------------------------------------------
    # learned clause DB reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        self._learnts.sort(key=lambda c: c.activity)
        keep_from = len(self._learnts) // 2
        removed = []
        kept = []
        locked = {id(self._reason[lit >> 1]) for lit in self._trail if self._reason[lit >> 1] is not None}
        for i, clause in enumerate(self._learnts):
            if i < keep_from and len(clause.lits) > 2 and id(clause) not in locked:
                removed.append(clause)
            else:
                kept.append(clause)
        if not removed:
            return
        removed_ids = {id(c) for c in removed}
        self._learnts = kept
        for lit in range(2, 2 * self.num_vars + 2):
            wl = self._watches[lit]
            if wl:
                self._watches[lit] = [c for c in wl if id(c) not in removed_ids]

    # ------------------------------------------------------------------
    # main search
    # ------------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
        time_limit: Optional[float] = None,
    ) -> SolveResult:
        """Solve under assumptions with optional budgets."""
        if not self._ok:
            return SolveResult(SolveStatus.UNSAT)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SolveResult(SolveStatus.UNSAT)
        self._rebuild_heap()

        for lit in assumptions:
            self.ensure_vars(abs(lit))
        iassumptions = [self._internal(l) for l in assumptions]
        deadline = time.monotonic() + time_limit if time_limit is not None else None
        conflict_budget = max_conflicts
        restart_idx = 1
        restart_limit = 64 * _luby(restart_idx)
        conflicts_since_restart = 0
        max_learnts = max(1000, len(self._clauses) // 2)
        local_conflicts = 0
        local_learned = 0
        local_restarts = 0
        decisions_at_entry = self.decisions
        propagations_at_entry = self.propagations

        def _result(status: SolveStatus, model=None) -> SolveResult:
            return SolveResult(
                status,
                model=model,
                conflicts=local_conflicts,
                decisions=self.decisions - decisions_at_entry,
                propagations=self.propagations - propagations_at_entry,
                learned=local_learned,
                restarts=local_restarts,
            )

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                local_conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level == 0:
                    self._ok = False
                    return _result(SolveStatus.UNSAT)
                # A conflict below the assumption levels means the
                # assumptions themselves are inconsistent.
                learnt, back_level = self._analyze(conflict)
                if self._decision_level <= len(iassumptions):
                    self._backtrack(0)
                    return _result(SolveStatus.UNSAT)
                back_level = max(back_level, 0)
                self._backtrack(back_level)
                self.learned += 1
                local_learned += 1
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._ok = False
                        return _result(SolveStatus.UNSAT)
                else:
                    clause = _Clause(learnt, learnt=True)
                    self._learnts.append(clause)
                    self._watch(clause)
                    self._bump_clause(clause)
                    self._enqueue(learnt[0], clause)
                self._var_inc /= 0.95
                self._cla_inc /= 0.999
                if conflict_budget is not None and local_conflicts >= conflict_budget:
                    self._backtrack(0)
                    return _result(SolveStatus.UNKNOWN)
                if deadline is not None and local_conflicts % 256 == 0 and time.monotonic() > deadline:
                    self._backtrack(0)
                    return _result(SolveStatus.UNKNOWN)
                if conflicts_since_restart >= restart_limit:
                    restart_idx += 1
                    restart_limit = 64 * _luby(restart_idx)
                    conflicts_since_restart = 0
                    self.restarts += 1
                    local_restarts += 1
                    # Assumption levels are re-created as decisions after
                    # the restart, so a full backtrack is safe.
                    self._backtrack(0)
                if len(self._learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue

            # No conflict: extend assignment.
            if self._decision_level < len(iassumptions):
                ilit = iassumptions[self._decision_level]
                value = self._lit_value(ilit)
                if value == 1:
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == 0:
                    self._backtrack(0)
                    return _result(SolveStatus.UNSAT)
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(ilit, None)
                continue

            var = self._pick_branch_var()
            if var == 0:
                model = [False] * (self.num_vars + 1)
                for v in range(1, self.num_vars + 1):
                    model[v] = self._assign[v] == 1
                result = _result(SolveStatus.SAT, model=model)
                self._backtrack(0)
                return result
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            ilit = (var << 1) | (1 - self._phase[var])
            self._enqueue(ilit, None)

"""CNF formula container and DIMACS I/O.

Literals use the DIMACS convention: variable ``v`` is a positive
integer, literal ``-v`` is its negation.  Variable 0 does not exist.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TextIO, Tuple


class CNF:
    """A growable CNF formula."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> List[int]:
        first = self.num_vars + 1
        self.num_vars += count
        return list(range(first, self.num_vars + 1))

    def add_clause(self, lits: Sequence[int]) -> None:
        clause = tuple(lits)
        for lit in clause:
            var = abs(lit)
            if var == 0:
                raise ValueError("literal 0 is not allowed")
            if var > self.num_vars:
                self.num_vars = var
        self.clauses.append(clause)

    def extend(self, clauses: Iterable[Sequence[int]]) -> None:
        for clause in clauses:
            self.add_clause(clause)

    def __len__(self) -> int:
        return len(self.clauses)

    # ------------------------------------------------------------------
    def write_dimacs(self, stream: TextIO, comments: Sequence[str] = ()) -> None:
        for comment in comments:
            stream.write(f"c {comment}\n")
        stream.write(f"p cnf {self.num_vars} {len(self.clauses)}\n")
        for clause in self.clauses:
            stream.write(" ".join(str(l) for l in clause) + " 0\n")

    @classmethod
    def read_dimacs(cls, stream: TextIO) -> "CNF":
        cnf = cls()
        declared_vars = None
        for line in stream:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                if len(parts) != 4 or parts[1] != "cnf":
                    raise ValueError(f"bad problem line: {line!r}")
                declared_vars = int(parts[2])
                continue
            lits = [int(tok) for tok in line.split()]
            if lits and lits[-1] == 0:
                lits = lits[:-1]
            if lits:
                cnf.add_clause(lits)
        if declared_vars is not None:
            cnf.num_vars = max(cnf.num_vars, declared_vars)
        return cnf

"""Time-frame expansion of sequential circuits for SAT-based checking.

An :class:`Unroller` owns a solver and incrementally appends time
frames.  Register values flow between frames by literal aliasing (frame
``t+1``'s ``q`` literal *is* frame ``t``'s ``d`` literal), so the CNF
contains only real logic.

By default frames are *stamped* from a pre-compiled
:class:`~repro.formal.frameprog.FrameProgram` — the combinational
logic is folded into a clause template once and each frame is added by
offsetting variable indices (see :mod:`repro.formal.frameprog`).  Pass
``use_templates=False`` to re-encode every frame through the reference
:class:`FrameEncoder`; the property suite runs both paths and checks
them equisatisfiable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.encode import FrameEncoder
from repro.formal.frameprog import (
    InterpretedFrame,
    StampedFrame,
    execute_ops,
    frame_program_for,
)
from repro.formal.sat.solver import Solver

#: All frame kinds expose ``lit(name)`` / ``const_lit(value)`` / ``true_lit``.
Frame = Union[FrameEncoder, StampedFrame, InterpretedFrame]


class Unroller:
    """Incremental unroller over a gate-level circuit.

    Args:
        lowered: the gate-level circuit with bit provenance.
        solver: the CDCL solver collecting clauses.
        initial_values: original-signal-name -> word value for the
            initial state of registers not listed as symbolic
            (defaults to each register's reset value).
        symbolic_registers: original register names whose initial
            values are free (universally quantified by the check).
        symbolic_all: make every register's initial value free.
        use_templates: stamp frames from a compiled frame program
            (default) instead of re-encoding via ``FrameEncoder``.
    """

    def __init__(
        self,
        lowered: LoweredCircuit,
        solver: Optional[Solver] = None,
        initial_values: Optional[Mapping[str, int]] = None,
        symbolic_registers: Optional[Set[str]] = None,
        symbolic_all: bool = False,
        use_templates: bool = True,
    ) -> None:
        self.lowered = lowered
        self.circuit = lowered.circuit
        self.solver = solver or Solver()
        self.true_lit = self.solver.new_var()
        self.solver.add_clause((self.true_lit,))
        self.frames: List[Frame] = []
        self._use_templates = use_templates
        self._program = frame_program_for(lowered) if use_templates else None
        self._initial_values = dict(initial_values or {})
        self._symbolic = set(symbolic_registers or ())
        self._symbolic_all = symbolic_all
        # Map gate-level register bit name -> (original name, bit index).
        self._orig_of_gate_reg: Dict[str, tuple] = {}
        for orig_name, bit_sigs in lowered.bits.items():
            for i, bit_sig in enumerate(bit_sigs):
                self._orig_of_gate_reg[bit_sig.name] = (orig_name, i)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of frames encoded so far."""
        return len(self.frames)

    def add_frame(self) -> Frame:
        """Encode one more time frame and return its encoder."""
        if self._program is not None:
            return self._stamp_frame()
        frame = FrameEncoder(self.solver, self.true_lit)
        previous = self.frames[-1] if self.frames else None
        for sig in self.circuit.inputs:
            frame.fresh(sig.name)
        for reg in self.circuit.registers:
            if previous is None:
                frame.define(reg.q.name, self._initial_lit(reg))
            else:
                frame.define(reg.q.name, previous.lit(reg.d.name))
        frame.encode_combinational(self.circuit)
        self.frames.append(frame)
        return frame

    def _stamp_frame(self) -> Frame:
        """Add one frame from the compiled program.

        While any boundary literal is still a constant — frame 0 under
        a concrete reset, and succeeding frames for as long as constant
        register values keep propagating — the op program is
        *interpreted* so the encoder's constant folding fires exactly
        as in the reference path.  Once the boundary is fully symbolic
        (always, for a free initial state) folding cannot trigger and
        the pre-folded template is stamped by index offsetting.
        """
        program = self._program
        solver = self.solver
        true_lit = self.true_lit
        previous = self.frames[-1] if self.frames else None
        if previous is None:
            boundary = [self._initial_lit(reg) for reg in self.circuit.registers]
        else:
            boundary = [previous.lit(reg.d.name) for reg in self.circuit.registers]
        if any(lit == true_lit or lit == -true_lit for lit in boundary):
            inputs = [solver.new_var() for _ in program.input_slots]
            frame: Frame = execute_ops(program, solver, true_lit, boundary, inputs)
        else:
            base = solver.num_vars + 1
            solver.new_vars(program.n_fresh)
            frame = StampedFrame(program, true_lit, boundary, base)
            if program.pure:
                solver.stamp_clauses(program.pure, base)
            resolve = frame.resolve
            add = solver.add_clause
            for clause in program.mixed:
                add([resolve(tv) for tv in clause])
        self.frames.append(frame)
        return frame

    def ensure_depth(self, depth: int) -> None:
        while self.depth < depth:
            self.add_frame()

    def _initial_lit(self, reg) -> int:
        orig_name, bit_index = self._orig_of_gate_reg.get(reg.q.name, (reg.q.name, 0))
        if self._symbolic_all or orig_name in self._symbolic or reg.q.name in self._symbolic:
            return self.solver.new_var()
        if orig_name in self._initial_values:
            value = self._initial_values[orig_name]
            return self.true_lit if (value >> bit_index) & 1 else -self.true_lit
        return self.true_lit if reg.reset_value & 1 else -self.true_lit

    # ------------------------------------------------------------------
    # convenience lookups on original (word-level) names
    # ------------------------------------------------------------------
    def lit_of_bit(self, frame_index: int, original_name: str, bit: int = 0) -> int:
        gate_sig = self.lowered.bits[original_name][bit]
        return self.frames[frame_index].lit(gate_sig.name)

    def word_value(self, frame_index: int, original_name: str, model) -> int:
        """Read a word-level value of a signal from a SAT model."""
        frame = self.frames[frame_index]
        pruned = self.lowered.pruned_resets
        value = 0
        for i, gate_sig in enumerate(self.lowered.bits[original_name]):
            if gate_sig.name in pruned:
                # The cone-of-influence reduction dropped this register
                # bit: the property cannot observe it, so the run's
                # value is its (initial-value-overridden) reset bit.
                if original_name in self._initial_values:
                    bit = (self._initial_values[original_name] >> i) & 1
                else:
                    bit = pruned[gate_sig.name]
                value |= bit << i
                continue
            lit = frame.lit(gate_sig.name)
            if lit == self.true_lit:
                bit = 1
            elif lit == -self.true_lit:
                bit = 0
            else:
                bit = 1 if (model[abs(lit)] ^ (lit < 0)) else 0
            value |= bit << i
        return value

    def assume_signal(self, frame_index: int, original_name: str, value: int = 1) -> None:
        """Permanently constrain a 1-bit original signal in a frame."""
        lit = self.lit_of_bit(frame_index, original_name)
        self.solver.add_clause((lit if value else -lit,))

    def constrain_word(self, frame_index: int, original_name: str, value: int) -> None:
        """Permanently pin a word-level signal to a concrete value."""
        for i, _ in enumerate(self.lowered.bits[original_name]):
            lit = self.lit_of_bit(frame_index, original_name, i)
            bit = (value >> i) & 1
            self.solver.add_clause((lit if bit else -lit,))

    def add_state_uniqueness(self, frame_a: int, frame_b: int) -> None:
        """Require the register states of two frames to differ.

        Used for simple-path constraints that make k-induction complete.
        """
        diff_lits: List[int] = []
        encoder = FrameEncoder(self.solver, self.true_lit)
        for reg in self.circuit.registers:
            la = self.frames[frame_a].lit(reg.q.name)
            lb = self.frames[frame_b].lit(reg.q.name)
            diff_lits.append(encoder._xor2(la, lb))
        live = [l for l in diff_lits if l != -self.true_lit]
        if any(l == self.true_lit for l in live):
            return
        self.solver.add_clause(tuple(live) if live else (-self.true_lit,))

"""Time-frame expansion of sequential circuits for SAT-based checking.

An :class:`Unroller` owns a solver and incrementally appends time
frames.  Register values flow between frames by literal aliasing (frame
``t+1``'s ``q`` literal *is* frame ``t``'s ``d`` literal), so the CNF
contains only real logic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.encode import FrameEncoder
from repro.formal.sat.solver import Solver


class Unroller:
    """Incremental unroller over a gate-level circuit.

    Args:
        lowered: the gate-level circuit with bit provenance.
        solver: the CDCL solver collecting clauses.
        initial_values: original-signal-name -> word value for the
            initial state of registers not listed as symbolic
            (defaults to each register's reset value).
        symbolic_registers: original register names whose initial
            values are free (universally quantified by the check).
        symbolic_all: make every register's initial value free.
    """

    def __init__(
        self,
        lowered: LoweredCircuit,
        solver: Optional[Solver] = None,
        initial_values: Optional[Mapping[str, int]] = None,
        symbolic_registers: Optional[Set[str]] = None,
        symbolic_all: bool = False,
    ) -> None:
        self.lowered = lowered
        self.circuit = lowered.circuit
        self.solver = solver or Solver()
        self.true_lit = self.solver.new_var()
        self.solver.add_clause((self.true_lit,))
        self.frames: List[FrameEncoder] = []
        self._initial_values = dict(initial_values or {})
        self._symbolic = set(symbolic_registers or ())
        self._symbolic_all = symbolic_all
        # Map gate-level register bit name -> (original name, bit index).
        self._orig_of_gate_reg: Dict[str, tuple] = {}
        for orig_name, bit_sigs in lowered.bits.items():
            for i, bit_sig in enumerate(bit_sigs):
                self._orig_of_gate_reg[bit_sig.name] = (orig_name, i)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of frames encoded so far."""
        return len(self.frames)

    def add_frame(self) -> FrameEncoder:
        """Encode one more time frame and return its encoder."""
        frame = FrameEncoder(self.solver, self.true_lit)
        previous = self.frames[-1] if self.frames else None
        for sig in self.circuit.inputs:
            frame.fresh(sig.name)
        for reg in self.circuit.registers:
            if previous is None:
                frame.define(reg.q.name, self._initial_lit(frame, reg))
            else:
                frame.define(reg.q.name, previous.lit(reg.d.name))
        frame.encode_combinational(self.circuit)
        self.frames.append(frame)
        return frame

    def ensure_depth(self, depth: int) -> None:
        while self.depth < depth:
            self.add_frame()

    def _initial_lit(self, frame: FrameEncoder, reg) -> int:
        orig_name, bit_index = self._orig_of_gate_reg.get(reg.q.name, (reg.q.name, 0))
        if self._symbolic_all or orig_name in self._symbolic or reg.q.name in self._symbolic:
            return self.solver.new_var()
        if orig_name in self._initial_values:
            value = self._initial_values[orig_name]
            return frame.const_lit((value >> bit_index) & 1)
        return frame.const_lit(reg.reset_value & 1)

    # ------------------------------------------------------------------
    # convenience lookups on original (word-level) names
    # ------------------------------------------------------------------
    def lit_of_bit(self, frame_index: int, original_name: str, bit: int = 0) -> int:
        gate_sig = self.lowered.bits[original_name][bit]
        return self.frames[frame_index].lit(gate_sig.name)

    def word_value(self, frame_index: int, original_name: str, model) -> int:
        """Read a word-level value of a signal from a SAT model."""
        frame = self.frames[frame_index]
        value = 0
        for i, gate_sig in enumerate(self.lowered.bits[original_name]):
            lit = frame.lit(gate_sig.name)
            if lit == self.true_lit:
                bit = 1
            elif lit == -self.true_lit:
                bit = 0
            else:
                bit = 1 if (model[abs(lit)] ^ (lit < 0)) else 0
            value |= bit << i
        return value

    def assume_signal(self, frame_index: int, original_name: str, value: int = 1) -> None:
        """Permanently constrain a 1-bit original signal in a frame."""
        lit = self.lit_of_bit(frame_index, original_name)
        self.solver.add_clause((lit if value else -lit,))

    def constrain_word(self, frame_index: int, original_name: str, value: int) -> None:
        """Permanently pin a word-level signal to a concrete value."""
        for i, _ in enumerate(self.lowered.bits[original_name]):
            lit = self.lit_of_bit(frame_index, original_name, i)
            bit = (value >> i) & 1
            self.solver.add_clause((lit if bit else -lit,))

    def add_state_uniqueness(self, frame_a: int, frame_b: int) -> None:
        """Require the register states of two frames to differ.

        Used for simple-path constraints that make k-induction complete.
        """
        diff_lits: List[int] = []
        encoder = FrameEncoder(self.solver, self.true_lit)
        for reg in self.circuit.registers:
            la = self.frames[frame_a].lit(reg.q.name)
            lb = self.frames[frame_b].lit(reg.q.name)
            diff_lits.append(encoder._xor2(la, lb))
        live = [l for l in diff_lits if l != -self.true_lit]
        if any(l == self.true_lit for l in live):
            return
        self.solver.add_clause(tuple(live) if live else (-self.true_lit,))

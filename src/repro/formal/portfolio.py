"""Parallel verification portfolio over the formal engines.

The paper's Section 4 flow hands each model-checking obligation to
JasperGold, which races several proof engines (``Mp``/``AM``/``I``
unbounded, ``Ht`` bounded) and takes whichever converges first.  This
module reproduces that scheduling layer over our own engines:

- **bmc** — bounded search, definitive on *violations*;
- **pdr** — IC3-family unbounded proof, definitive on both outcomes;
- **kind** — k-induction, definitive on proofs and base-case violations.

:func:`verify_portfolio` runs the engines concurrently in
``multiprocessing`` worker processes (at most ``jobs`` at a time), each
under its own wall-clock deadline.  The first *definitive* verdict wins:
the remaining workers are terminated and their partial results (depths
proven clean so far) are folded into the final bound.  Engines beyond
the ``jobs`` limit are queued; when a running engine retires without a
definitive verdict, the next queued engine starts — seeded with every
solve result the finished engines cached, so e.g. a k-induction worker
launched after BMC answers its base case from the cache instead of
re-solving the frames.

When process spawning is unavailable (restricted environments,
pickling failures) or ``jobs == 1``, the portfolio degrades gracefully
to in-process sequential execution with identical verdict semantics —
engines then share the live cache directly.

Verdicts are memoized in a :class:`~repro.formal.cache.SolveCache`
keyed on the lowered netlist's content hash, the property, and the
engine parameters, so a CEGAR loop that re-poses an already-answered
question (re-verification, pruning, benchmark reruns) returns
instantly.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

from repro.faults import FaultPlan
from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.bmc import BmcStatus, _as_lowered, bounded_model_check
from repro.formal.cache import CachedVerdict, CacheStats, SolveCache, solve_key
from repro.formal.certificate import Certificate, check_certificate
from repro.formal.counterexample import Counterexample
from repro.formal.induction import InductionStatus, k_induction
from repro.formal.pdr import PdrStatus, pdr_prove
from repro.formal.properties import SafetyProperty
from repro.obs import NULL_TRACER, Tracer

#: Engine launch order.  BMC first: it retires quickly on small bounds
#: and its cached frames seed the k-induction base case; PDR second as
#: the strongest unbounded engine; k-induction last (it profits most
#: from running after BMC).
ENGINE_NAMES: Tuple[str, ...] = ("bmc", "pdr", "kind")

#: Engines accepted in ``PortfolioConfig.engines``: the SAT racers
#: above plus the opt-in SAT-free abstract-interpretation engine
#: (:func:`repro.analyze.static_verify`).  ``static`` is deliberately
#: not in the default lineup — it answers a strictly weaker class of
#: questions and is selected explicitly (``--engine static`` or a
#: custom engine tuple) or used as the CEGAR pre-screen.
ALL_ENGINE_NAMES: Tuple[str, ...] = ENGINE_NAMES + ("static",)


class PortfolioStatus(enum.Enum):
    PROVED = "proved"                  # some engine closed an unbounded proof
    COUNTEREXAMPLE = "counterexample"  # some engine found a violation
    BOUND_REACHED = "bound_reached"    # clean up to `bound`, nothing definitive
    UNKNOWN = "unknown"                # every engine timed out with no bound


@dataclass
class PortfolioConfig:
    """Engine selection, budgets and scheduling knobs."""

    engines: Tuple[str, ...] = ENGINE_NAMES
    #: Maximum concurrently running engine processes; 0 means one per
    #: engine, 1 selects the in-process sequential mode.
    jobs: int = 0
    max_bound: int = 20                # BMC depth
    induction_max_k: int = 12
    unique_states: bool = True
    pdr_max_frames: int = 50
    #: Overall wall-clock deadline for the whole portfolio call.
    time_limit: Optional[float] = None
    #: Per-engine wall-clock deadlines (seconds); engines not listed
    #: inherit the overall ``time_limit``.  When empty, the scheduler
    #: fair-shares the remaining window over the unfinished engines so
    #: the ones queued behind the ``jobs`` limit always get a slot.
    engine_deadlines: Dict[str, float] = field(default_factory=dict)
    #: Deterministic per-SAT-call conflict budget (see Solver.solve).
    max_conflicts: Optional[int] = None
    #: BMC skips SAT queries below this depth — the caller (the CEGAR
    #: pre-screen) vouches those cycles are violation-free.
    start_bound: int = 0
    #: Frame budget of the ``static`` engine's bounded ternary pass.
    static_max_frames: int = 64
    #: multiprocessing start method ("fork"/"spawn"); None picks the
    #: platform default.
    start_method: Optional[str] = None
    #: Skip process workers entirely (forced degraded mode).
    force_sequential: bool = False
    #: How often the scheduler polls workers for results/deadlines.
    poll_interval: float = 0.05
    #: Supervision: how many times a *crashed* worker (process dead
    #: without shipping a verdict — OOM kill, segfault, injected fault)
    #: is relaunched before its engine is written off.  Deadline and
    #: in-worker Python errors are not retried: the former already
    #: spent its budget, the latter is deterministic.
    max_worker_retries: int = 2
    #: Exponential retry backoff base (seconds): the n-th relaunch of a
    #: crashed worker waits ``retry_backoff * 2**(n-1)`` first.
    retry_backoff: float = 0.1
    #: Deterministic fault-injection plan (:mod:`repro.faults`) shipped
    #: into every worker; None injects nothing.  Tests use this to
    #: prove the supervision/recovery paths actually work.
    faults: Optional[FaultPlan] = None
    #: Validate PDR proof certificates with the independent checker
    #: (:func:`repro.formal.certificate.check_certificate`) before
    #: reporting PROVED; a certificate that fails to check downgrades
    #: the verdict to UNKNOWN instead of shipping an untrusted proof.
    certify: bool = True

    def deadline_for(self, engine: str) -> Optional[float]:
        if engine in self.engine_deadlines:
            return self.engine_deadlines[engine]
        return self.time_limit


@dataclass
class EngineReport:
    """What one engine contributed to a portfolio call."""

    engine: str
    #: Engine status string, or one of the scheduler's own outcomes:
    #: not_run / cancelled / deadline (budget spent) / error (in-worker
    #: exception) / crashed (process dead without a verdict, retries
    #: exhausted) / retrying (crashed, relaunch scheduled).
    status: str = "not_run"
    bound: int = -1             # deepest cycle this engine proved clean
    elapsed: float = 0.0
    winner: bool = False
    detail: str = ""
    attempts: int = 0           # worker launches (> 1 after a retry)
    retries: int = 0            # supervised relaunches after a crash

    def row(self) -> str:
        mark = " <- winner" if self.winner else ""
        bound = f" bound={self.bound}" if self.bound >= 0 else ""
        retries = f" retries={self.retries}" if self.retries else ""
        return (f"{self.engine:<5} {self.status:<15} "
                f"{self.elapsed:6.2f}s{bound}{retries}{mark}")


@dataclass
class PortfolioResult:
    status: PortfolioStatus
    winner: Optional[str] = None
    bound: int = -1
    counterexample: Optional[Counterexample] = None
    elapsed: float = 0.0
    reports: List[EngineReport] = field(default_factory=list)
    mode: str = "process"        # "process" | "sequential"
    cache_hit: bool = False      # whole verdict answered from the cache
    #: PDR's inductive-invariant certificate when it won with a proof.
    certificate: Optional[Certificate] = None
    #: True/False once the independent checker ran; None when there was
    #: no certificate to check (other winner, cache hit, certify off).
    certificate_ok: Optional[bool] = None

    @property
    def proved(self) -> bool:
        return self.status is PortfolioStatus.PROVED

    @property
    def found_cex(self) -> bool:
        return self.status is PortfolioStatus.COUNTEREXAMPLE


# ---------------------------------------------------------------------------
# Engine adapters: run one engine, produce a uniform plain-data verdict.
# ---------------------------------------------------------------------------

def _run_engine(
    engine: str,
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    config: PortfolioConfig,
    deadline: Optional[float],
    cache: Optional[SolveCache],
    tracer=None,
) -> Dict[str, object]:
    """Execute one engine; returns a picklable verdict record.

    ``definitive`` marks outcomes that settle the property (violation
    or unbounded proof); everything else is partial information.
    """
    started = time.monotonic()
    if engine == "bmc":
        res = bounded_model_check(
            lowered, prop, max_bound=config.max_bound, time_limit=deadline,
            start_bound=config.start_bound,
            max_conflicts=config.max_conflicts, cache=cache, tracer=tracer,
        )
        definitive = res.status is BmcStatus.COUNTEREXAMPLE
        return {
            "engine": engine,
            "status": res.status.value,
            "definitive": definitive,
            "proved": False,
            "bound": res.bound,
            "counterexample": res.counterexample,
            "elapsed": time.monotonic() - started,
        }
    if engine == "kind":
        res = k_induction(
            lowered, prop, max_k=config.induction_max_k, time_limit=deadline,
            unique_states=config.unique_states,
            max_conflicts=config.max_conflicts, cache=cache, tracer=tracer,
        )
        definitive = res.status in (InductionStatus.PROVED,
                                    InductionStatus.COUNTEREXAMPLE)
        return {
            "engine": engine,
            "status": res.status.value,
            "definitive": definitive,
            "proved": res.status is InductionStatus.PROVED,
            "bound": res.bound,
            "counterexample": res.counterexample,
            "elapsed": time.monotonic() - started,
        }
    if engine == "pdr":
        res = pdr_prove(
            lowered, prop, max_frames=config.pdr_max_frames, time_limit=deadline,
            max_conflicts=config.max_conflicts, tracer=tracer,
        )
        definitive = res.status in (PdrStatus.PROVED, PdrStatus.COUNTEREXAMPLE)
        return {
            "engine": engine,
            "status": res.status.value,
            "definitive": definitive,
            "proved": res.status is PdrStatus.PROVED,
            "bound": -1,  # PDR frames are not cycle bounds
            "counterexample": res.counterexample,
            "elapsed": time.monotonic() - started,
            # Plain tuples/strings: pickles across the worker boundary.
            "certificate": res.certificate,
        }
    if engine == "static":
        from repro.analyze import static_verify

        res = static_verify(lowered, prop,
                            max_frames=config.static_max_frames,
                            tracer=tracer)
        detail = res.reason
        if res.suspects:
            detail += f"; {len(res.suspects)} suspects"
        return {
            "engine": engine,
            "status": res.status,
            "definitive": res.definitive,
            "proved": res.proved,
            "bound": res.bound,
            "counterexample": res.counterexample,
            "elapsed": time.monotonic() - started,
            "detail": detail,
            "suspects": res.suspects,
        }
    raise ValueError(f"unknown portfolio engine {engine!r} "
                     f"(expected one of {ENGINE_NAMES})")


class _StreamingCache(SolveCache):
    """Worker-side cache that forwards every store to the parent.

    Entries reach the scheduler as soon as they are solved, not only
    with the final verdict — so an engine launched from the queue is
    seeded with everything the running engines have learned so far,
    and a terminated loser's partial work still survives.
    """

    def __init__(self, queue, engine: str,
                 faults: Optional[FaultPlan] = None, attempt: int = 0) -> None:
        super().__init__()
        self._queue = queue
        self._engine = engine
        self._faults = faults
        self._attempt = attempt

    def put(self, key: str, entry: CachedVerdict) -> None:
        super().put(key, entry)
        payload = entry
        if self._faults is not None:
            # Injected message loss/corruption; None drops the message.
            payload = self._faults.filter_entry(self._engine, self._attempt,
                                                entry)
        if payload is not None:
            try:
                self._queue.put({"type": "entry", "engine": self._engine,
                                 "key": key, "entry": payload})
            except Exception:  # pragma: no cover - queue torn down mid-put
                pass
        if self._faults is not None:
            # One put == one completed solve; may os._exit the worker.
            self._faults.on_worker_solve(self._engine, self._attempt)


def _worker_main(queue, engine, lowered, prop, config, deadline, seed_entries,
                 traced=False, attempt=0):
    """Entry point of an engine worker process.

    ``attempt`` counts supervised relaunches (0 on the first launch);
    the fault plan uses it to scope injected faults to one attempt so a
    retried worker runs clean.

    With ``traced`` the worker records into its own local
    :class:`~repro.obs.Tracer` (absolute monotonic timestamps, the
    worker's pid as track id) and ships the events with its verdict;
    the scheduler merges them onto the parent timeline.  Workers killed
    by the scheduler backstop lose their events — acceptable, as they
    normally retire on their own through the in-worker time budget.
    """
    import os

    faults = config.faults
    local = _StreamingCache(queue, engine, faults=faults, attempt=attempt)
    if seed_entries:
        local.merge_entries(seed_entries)
    baseline = replace(local.stats)
    tracer = Tracer() if traced else None
    try:
        verdict = _run_engine(engine, lowered, prop, config, deadline, local,
                              tracer=tracer)
        verdict["entries"] = local.snapshot_entries()
        stats = local.stats
        stats.hits -= baseline.hits  # report only this worker's traffic
        stats.misses -= baseline.misses
        stats.stores -= baseline.stores
        stats.evictions -= baseline.evictions
        stats.rejected -= baseline.rejected
        verdict["cache_stats"] = stats
        if tracer is not None:
            verdict["trace_events"] = tracer.snapshot_events()
            verdict["trace_pid"] = os.getpid()
        if faults is not None:
            delay = faults.verdict_delay(engine, attempt)
            if delay > 0:
                time.sleep(delay)
        queue.put(verdict)
    except Exception as exc:  # pragma: no cover - defensive
        queue.put({
            "engine": engine, "status": "error", "definitive": False,
            "proved": False, "bound": -1, "counterexample": None,
            "elapsed": 0.0, "entries": {}, "cache_stats": CacheStats(),
            "detail": f"{type(exc).__name__}: {exc}",
        })


# ---------------------------------------------------------------------------
# Result assembly
# ---------------------------------------------------------------------------

_PROOF_KEY_PARAMS = ("max_bound", "induction_max_k", "unique_states",
                     "pdr_max_frames", "max_conflicts", "start_bound",
                     "static_max_frames")


def _portfolio_key(lowered: LoweredCircuit, prop: SafetyProperty,
                   config: PortfolioConfig) -> str:
    params = {name: getattr(config, name) for name in _PROOF_KEY_PARAMS}
    params["engines"] = sorted(config.engines)
    return solve_key(lowered.circuit, prop, "portfolio", params)


def _finalize(
    reports: Dict[str, EngineReport],
    order: Tuple[str, ...],
    winner: Optional[Dict[str, object]],
    elapsed: float,
    mode: str,
) -> PortfolioResult:
    bound = max((r.bound for r in reports.values()), default=-1)
    ordered = [reports[name] for name in order]
    if winner is not None:
        name = winner["engine"]
        reports[name].winner = True
        if winner["proved"]:
            status = PortfolioStatus.PROVED
        else:
            status = PortfolioStatus.COUNTEREXAMPLE
        return PortfolioResult(
            status, winner=name, bound=bound,
            counterexample=winner["counterexample"],
            elapsed=elapsed, reports=ordered, mode=mode,
            certificate=winner.get("certificate"),
        )
    status = PortfolioStatus.BOUND_REACHED if bound >= 0 else PortfolioStatus.UNKNOWN
    return PortfolioResult(status, bound=bound, elapsed=elapsed,
                           reports=ordered, mode=mode)


def _memoize(cache: Optional[SolveCache], key: Optional[str],
             result: PortfolioResult) -> None:
    if cache is None or key is None:
        return
    if result.status is PortfolioStatus.UNKNOWN:
        return  # nothing worth replaying
    cache.put(key, CachedVerdict(
        result.status.value, bound=result.bound,
        counterexample=result.counterexample,
        detail={"winner": result.winner},
    ))


def _from_memo(entry: CachedVerdict, order: Tuple[str, ...]) -> PortfolioResult:
    status = PortfolioStatus(entry.status)
    winner = entry.detail.get("winner")
    reports = [EngineReport(name, status="cached") for name in order]
    return PortfolioResult(
        status, winner=winner, bound=entry.bound,
        counterexample=entry.counterexample,
        elapsed=0.0, reports=reports, mode="cache", cache_hit=True,
    )


# ---------------------------------------------------------------------------
# Schedulers
# ---------------------------------------------------------------------------

def _run_sequential(
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    config: PortfolioConfig,
    cache: Optional[SolveCache],
    started: float,
    tracer=None,
) -> PortfolioResult:
    """Degraded mode: engines run in-process, in order, sharing the cache."""
    tracer = tracer or NULL_TRACER
    reports = {name: EngineReport(name) for name in config.engines}
    winner: Optional[Dict[str, object]] = None
    for position, engine in enumerate(config.engines):
        remaining = None
        if config.time_limit is not None:
            remaining = config.time_limit - (time.monotonic() - started)
            if remaining <= 0:
                break
        deadline = config.deadline_for(engine)
        if not config.engine_deadlines and remaining is not None:
            # Same fair-share policy as process mode: split what is
            # left of the window over the engines still to run, so one
            # engine cannot starve the ones behind it.
            deadline = remaining / (len(config.engines) - position)
        if deadline is None:
            deadline = remaining
        elif remaining is not None:
            deadline = min(deadline, remaining)
        with tracer.span("portfolio.engine", cat="portfolio", engine=engine) as span:
            verdict = _run_engine(engine, lowered, prop, config, deadline, cache,
                                  tracer=tracer)
            span.set(status=str(verdict["status"]))
        report = reports[engine]
        report.status = str(verdict["status"])
        report.bound = int(verdict["bound"])
        report.elapsed = float(verdict["elapsed"])
        if verdict["definitive"]:
            winner = verdict
            break
    return _finalize(reports, config.engines, winner,
                     time.monotonic() - started, mode="sequential")


def _run_processes(
    lowered: LoweredCircuit,
    prop: SafetyProperty,
    config: PortfolioConfig,
    cache: Optional[SolveCache],
    started: float,
    jobs: int,
    tracer=None,
) -> PortfolioResult:
    """Process mode: up to ``jobs`` concurrent engine workers."""
    import multiprocessing
    import queue as queue_mod

    tracer = tracer or NULL_TRACER
    ctx = (multiprocessing.get_context(config.start_method)
           if config.start_method else multiprocessing.get_context())
    result_queue = ctx.Queue()
    reports = {name: EngineReport(name) for name in config.engines}
    pending = list(config.engines)
    # engine -> (process, launch time, kill-at budget)
    running: Dict[str, Tuple[object, float, Optional[float]]] = {}
    delayed: Dict[str, float] = {}                  # crashed, relaunch not before
    dead_since: Dict[str, float] = {}               # exit seen, verdict not yet
    winner: Optional[Dict[str, object]] = None

    def launch(engine: str) -> bool:
        """Start one engine worker; False when its budget is spent.

        The engine's wall-clock budget (its own deadline capped by the
        remaining overall time) is enforced *inside* the worker as the
        engine ``time_limit``, so the worker retires on its own with a
        partial verdict and its cache entries intact.  Parent-side
        termination is only the backstop for a wedged worker, with a
        grace allowance past the budget.
        """
        budget = config.deadline_for(engine)
        if config.time_limit is not None:
            remaining = config.time_limit - (time.monotonic() - started)
            if remaining <= 0:
                return False
            if not config.engine_deadlines:
                # No explicit per-engine budgets: fair-share the
                # remaining window over the unfinished engines so the
                # ones queued behind the ``jobs`` limit are guaranteed
                # a slot before the overall deadline.
                unfinished = 1 + len(pending) + len(running) + len(delayed)
                share = remaining * jobs / unfinished
                budget = share if budget is None else min(budget, share)
            budget = remaining if budget is None else min(budget, remaining)
        # Relaunches are seeded with the current cache snapshot, which
        # includes everything the crashed attempt streamed back before
        # dying — a retried worker resumes from that work, it does not
        # start over.
        seed = cache.snapshot_entries() if cache is not None else None
        attempt = reports[engine].attempts
        reports[engine].attempts += 1
        proc = ctx.Process(
            target=_worker_main,
            args=(result_queue, engine, lowered, prop, config, budget, seed,
                  tracer.enabled, attempt),
            daemon=True,
        )
        proc.start()
        kill_at = None if budget is None else budget + 2.0 + 0.25 * budget
        running[engine] = (proc, time.monotonic(), kill_at)
        return True

    def reap(engine: str, status: str) -> None:
        proc, engine_started, _kill_at = running.pop(engine)
        dead_since.pop(engine, None)
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - ignores SIGTERM: escalate
            proc.kill()
            proc.join(timeout=5.0)
        reports[engine].status = status
        reports[engine].elapsed = time.monotonic() - engine_started

    def supervise_crash(engine: str) -> None:
        """A worker died without a verdict: back off and retry, or give up.

        ``crashed`` is distinct from ``deadline`` (budget spent, worker
        reaped by the backstop) and ``error`` (in-worker exception,
        reported through the queue): only crashes are worth retrying —
        the work is recoverable and the cause (OOM kill, segfault) is
        usually environmental.
        """
        proc, engine_started, _kill_at = running.pop(engine)
        proc.join(timeout=5.0)
        dead_since.pop(engine, None)
        report = reports[engine]
        report.elapsed = time.monotonic() - engine_started
        exitcode = proc.exitcode
        tracer.count("portfolio.worker_crashes")
        if report.retries < config.max_worker_retries:
            backoff = config.retry_backoff * (2 ** report.retries)
            report.retries += 1
            report.status = "retrying"
            report.detail = (f"crashed (exit {exitcode}), "
                             f"retry {report.retries} in {backoff:.2f}s")
            delayed[engine] = time.monotonic() + backoff
            tracer.count("portfolio.worker_retries")
        else:
            report.status = "crashed"
            report.detail = (f"exit {exitcode} after "
                             f"{report.attempts} attempt(s)")

    try:
        while running or pending or delayed:
            now = time.monotonic()
            for engine in [e for e, at in delayed.items() if now >= at]:
                # Backoff expired: relaunch the crashed engine ahead of
                # anything still queued behind the jobs limit.
                delayed.pop(engine)
                pending.insert(0, engine)
            while len(running) < jobs and pending:
                if not launch(pending.pop(0)):
                    # Overall budget exhausted before this engine got a
                    # slot; its report stays "not_run".
                    pending.clear()
                    delayed.clear()
                    break
            if (config.time_limit is not None
                    and time.monotonic() - started > config.time_limit + 5.0):
                # Backstop only: workers receive the remaining overall
                # budget as their own time_limit, so they normally ship
                # a (partial) verdict before this fires.
                pending.clear()
                delayed.clear()
                for engine in list(running):
                    reap(engine, "cancelled")
                break
            if not running:
                if delayed:  # nothing to poll; sleep out the backoff
                    time.sleep(min(config.poll_interval,
                                   max(0.0, min(delayed.values())
                                       - time.monotonic())))
                continue
            try:
                verdict = result_queue.get(timeout=config.poll_interval)
            except queue_mod.Empty:
                verdict = None
            if verdict is not None and verdict.get("type") == "entry":
                # A streamed solve result from a still-running worker.
                if cache is not None:
                    cache.merge_entries({str(verdict["key"]): verdict["entry"]})
                continue
            if verdict is not None:
                engine = str(verdict["engine"])
                if engine in running:
                    proc, engine_started, _kill_at = running.pop(engine)
                    dead_since.pop(engine, None)
                    proc.join(timeout=5.0)
                    report = reports[engine]
                    report.status = str(verdict["status"])
                    report.bound = int(verdict["bound"])
                    report.elapsed = float(verdict["elapsed"])
                    report.detail = str(verdict.get("detail", ""))
                    if tracer.enabled and verdict.get("trace_events"):
                        tracer.adopt(verdict["trace_events"])
                        tracer.label_track(int(verdict["trace_pid"]),
                                           f"{engine} worker")
                    if cache is not None:
                        cache.merge_entries(verdict.get("entries") or {})
                        stats = verdict.get("cache_stats")
                        if isinstance(stats, CacheStats):
                            # Worker lookups count toward the shared stats;
                            # its stores already counted via merge_entries.
                            cache.stats.hits += stats.hits
                            cache.stats.misses += stats.misses
                            cache.stats.rejected += stats.rejected
                    if verdict["definitive"]:
                        winner = verdict
                        for other in list(running):
                            reap(other, "cancelled")
                        for other in delayed:
                            reports[other].status = "cancelled"
                        delayed.clear()
                        pending.clear()
                        break
                continue  # a result may unblock a queued engine below
            # No result this tick: enforce the per-engine backstop and
            # notice workers that died without reporting a verdict.
            now = time.monotonic()
            for engine in list(running):
                proc, engine_started, kill_at = running[engine]
                if kill_at is not None and now - engine_started > kill_at:
                    # Worker overran its own time_limit by the grace
                    # allowance: assume it is wedged and cut it loose.
                    reap(engine, "deadline")
                elif not proc.is_alive():
                    # The process exited; its verdict may still be in
                    # flight through the queue, so give it a grace
                    # period before treating the exit as a crash.
                    if engine not in dead_since:
                        dead_since[engine] = now
                    elif now - dead_since[engine] > 1.0:
                        supervise_crash(engine)
    finally:
        pending.clear()
        for engine in delayed:
            if reports[engine].status == "retrying":
                reports[engine].status = "cancelled"
        delayed.clear()
        for engine in list(running):
            reap(engine, "cancelled")
        # Close our end of the queue and drop its feeder thread so a
        # half-drained queue can never hang interpreter shutdown.
        result_queue.close()
        result_queue.cancel_join_thread()

    return _finalize(reports, config.engines, winner,
                     time.monotonic() - started, mode="process")


def verify_portfolio(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    config: Optional[PortfolioConfig] = None,
    cache: Optional[SolveCache] = None,
    tracer=None,
) -> PortfolioResult:
    """Race the verification engines on ``prop``; first definitive wins.

    Args:
        circuit: design under verification (cell- or gate-level).
        prop: the safety property.
        config: engine selection, budgets and scheduling knobs.
        cache: optional cross-call :class:`SolveCache`; consulted for a
            memoized verdict first, seeded into workers, and updated
            with everything they solve.
        tracer: optional :class:`~repro.obs.Tracer`; engine frames and
            SAT counters are recorded (worker events merged back with
            per-process track ids) along with solve-cache hit/miss
            counters for this call.

    Returns a :class:`PortfolioResult`; ``reports`` lists what every
    engine did (status, time, partial bound) for observability.
    """
    config = config or PortfolioConfig()
    if not config.engines:
        raise ValueError("portfolio needs at least one engine")
    for engine in config.engines:
        if engine not in ALL_ENGINE_NAMES:
            raise ValueError(f"unknown portfolio engine {engine!r} "
                             f"(expected one of {ALL_ENGINE_NAMES})")
    started = time.monotonic()
    tracer = tracer or NULL_TRACER
    lowered = _as_lowered(circuit, prop)

    key = None
    if cache is not None:
        key = _portfolio_key(lowered, prop, config)
        entry = cache.get(key)
        if entry is not None:
            tracer.count("solve_cache.memo_hits")
            return _from_memo(entry, config.engines)

    stats_before = replace(cache.stats) if cache is not None else None
    jobs = config.jobs if config.jobs > 0 else len(config.engines)
    result: Optional[PortfolioResult] = None
    # Process mode whenever more than one concurrent job is allowed —
    # even for a single engine, since a worker process buys crash
    # isolation and supervised retry; jobs == 1 or a single engine with
    # default jobs stays in-process.
    if not config.force_sequential and jobs > 1:
        try:
            result = _run_processes(lowered, prop, config, cache, started, jobs,
                                    tracer=tracer)
        except (ImportError, OSError, PermissionError):
            # Restricted environments (no /dev/shm, no fork) land here:
            # degrade to in-process sequential execution.
            result = None
    if result is None:
        result = _run_sequential(lowered, prop, config, cache, started,
                                 tracer=tracer)
    if (config.certify and result.status is PortfolioStatus.PROVED
            and result.certificate is not None):
        # Re-check PDR's invariant on a fresh encoding before the
        # verdict leaves the portfolio.  A certificate that does not
        # check means the proof cannot be trusted: downgrade rather
        # than ship it.
        check = check_certificate(lowered, prop, result.certificate)
        result.certificate_ok = bool(check.ok)
        tracer.count("portfolio.certificates_checked")
        if not check.ok:
            tracer.count("portfolio.certificate_failures")
            result.status = PortfolioStatus.UNKNOWN
            for report in result.reports:
                if report.winner:
                    report.winner = False
                    report.detail = f"certificate rejected: {check.reason}"
            result.winner = None
    _memoize(cache, key, result)
    if tracer.enabled and stats_before is not None:
        tracer.count("solve_cache.hits", cache.stats.hits - stats_before.hits)
        tracer.count("solve_cache.misses", cache.stats.misses - stats_before.misses)
        tracer.count("solve_cache.stores", cache.stats.stores - stats_before.stores)
    return result

"""Versioned JSON-lines wire protocol of the job daemon.

Every message is one JSON object on one ``\\n``-terminated line with a
``v`` (protocol version) and a ``type`` field.  Client-to-server
types::

    submit    {id, job, deadline?, progress?}   run (or attach to) a job
    cancel    {id}                              detach/cancel a submission
    stats     {}                                server + store counters
    ping      {}                                liveness probe
    shutdown  {}                                drain and stop the daemon

Server-to-client types::

    result    {id, ok, result, dedup, elapsed}  terminal answer for a job
    error     {id?, error}                      terminal failure
    progress  {id, elapsed, events, counters}   tracer sample (opt-in)
    stats     {stats}                           reply to ``stats``
    pong      {}                                reply to ``ping``
    bye       {}                                reply to ``shutdown``

The version is checked on *every* incoming message: a daemon never
guesses at messages from a future client (or vice versa), it rejects
them with a ``protocol version`` error the peer can report verbatim.
"""

from __future__ import annotations

import json
from typing import Any, Dict

PROTOCOL_VERSION = 1

CLIENT_TYPES = frozenset({"submit", "cancel", "stats", "ping", "shutdown"})
SERVER_TYPES = frozenset({"result", "error", "progress", "stats", "pong",
                          "bye"})
#: Hard cap on one encoded message; a runaway (or hostile) peer cannot
#: make the other side buffer unbounded input.
MAX_MESSAGE = 64 * 1024 * 1024


class ProtocolError(Exception):
    """The peer sent something that is not a valid protocol message."""


def encode_message(msg: Dict[str, Any]) -> bytes:
    """Serialize one message to its wire form (adds the version)."""
    doc = dict(msg)
    doc.setdefault("v", PROTOCOL_VERSION)
    line = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_MESSAGE:  # pragma: no cover - requires a huge job
        raise ProtocolError(f"message too large ({len(data)} bytes)")
    return data


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse and validate one wire line; raises :class:`ProtocolError`."""
    if len(line) > MAX_MESSAGE:
        raise ProtocolError(f"message too large ({len(line)} bytes)")
    try:
        doc = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not a JSON message: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(doc).__name__}")
    version = doc.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} != {PROTOCOL_VERSION} "
            "(upgrade the older peer)")
    mtype = doc.get("type")
    if not isinstance(mtype, str) or not mtype:
        raise ProtocolError("message has no 'type'")
    return doc

"""Job handlers: what the daemon actually runs, one dict in/out each.

A *job* is a plain JSON document — ``{"kind": ..., ...}`` — and its
result is another plain JSON document, so the exact same handler code
serves both sides of the ``--remote`` flag: the daemon runs jobs
arriving over the socket, and the thin client falls back to calling
:func:`run_job` in-process when the daemon is unreachable.  Keeping
the boundary JSON-only (no pickles over the wire) means a hostile or
stale peer can at worst submit a malformed *job*, which the handler
whitelist rejects with :class:`JobError` — it can never inject code.

Job kinds::

    solve      one portfolio model-checking call on a serialized circuit
    verify     the full Compass CEGAR loop on a registered core
    candidate  one CEGAR candidate-scheme verification on a serialized
               circuit (the speculative scheduler's remote unit)
    lint       the static linter over a registered core
    analyze    the SAT-free dataflow summary (repro-analyze/v1)
    simulate   a benchmark workload on a core (optionally bit-parallel)

:func:`job_digest` is the daemon's dedup key: two clients submitting
the same canonical job document attach to one running computation.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from typing import Any, Callable, Dict, Optional

JOB_KINDS = ("solve", "verify", "candidate", "lint", "analyze", "simulate")


class JobError(Exception):
    """The job document is malformed or names unknown entities."""


def job_digest(job: Dict[str, Any]) -> str:
    """Stable content digest of one job document (the dedup key).

    Canonical-JSON based, so two submitters that serialize the same
    circuit/config produce the same digest and share one computation.
    A fault-injection plan is part of the identity: a faulted job never
    dedups against its clean twin.
    """
    try:
        canon = json.dumps(job, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise JobError(f"job is not JSON-serializable: {exc}") from exc
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Shared pieces
# ---------------------------------------------------------------------------

def _require_dict(job: Dict[str, Any], key: str) -> Dict[str, Any]:
    value = job.get(key)
    if not isinstance(value, dict):
        raise JobError(f"job field {key!r} must be an object, "
                       f"got {type(value).__name__}")
    return value


def _core_from_doc(doc: Dict[str, Any]):
    """Build a registered core from a job's ``core`` object."""
    from repro.cores import CoreConfig, core_registry

    registry = core_registry()
    name = doc.get("name", "Sodor")
    if name not in registry:
        raise JobError(f"unknown core {name!r} "
                       f"(expected one of {sorted(registry)})")
    cfg = CoreConfig(
        xlen=int(doc.get("xlen", 8)),
        imem_depth=int(doc.get("imem", 8)),
        dmem_depth=int(doc.get("dmem", 8)),
        secret_words=int(doc.get("secret_words", 2)),
    )
    return registry[name](cfg, bool(doc.get("with_shadow", True)))


def _faults_from_doc(job: Dict[str, Any]):
    """Reconstruct a :class:`repro.faults.FaultPlan` from job JSON.

    ``{"faults": {"seed": 0, "specs": [{"kind": ..., ...}, ...]}}``.
    Only the documented :data:`repro.faults.KINDS` pass; anything else
    is a :class:`JobError` (fault plans are test machinery, and a typo
    silently injecting nothing would defeat the chaos tests).
    """
    doc = job.get("faults")
    if doc is None:
        return None
    from repro.faults import FaultPlan, FaultSpec

    if not isinstance(doc, dict):
        raise JobError("job field 'faults' must be an object")
    specs = []
    allowed = {"kind", "engine", "after", "attempt", "delay", "pid"}
    for spec in doc.get("specs", ()):
        if not isinstance(spec, dict):
            raise JobError("each fault spec must be an object")
        unknown = set(spec) - allowed
        if unknown:
            raise JobError(f"unknown fault spec fields {sorted(unknown)}")
        try:
            specs.append(FaultSpec(**spec))
        except (TypeError, ValueError) as exc:
            raise JobError(f"bad fault spec: {exc}") from exc
    return FaultPlan(tuple(specs), seed=int(doc.get("seed", 0)))


def _config_kwargs(doc: Dict[str, Any], allowed: Dict[str, Callable],
                   what: str) -> Dict[str, Any]:
    """Whitelist + coerce a job's config object into constructor kwargs."""
    kwargs: Dict[str, Any] = {}
    for key, value in doc.items():
        if key not in allowed:
            raise JobError(f"unknown {what} config field {key!r}")
        kwargs[key] = allowed[key](value) if value is not None else None
    return kwargs


def _cex_doc(cex) -> Optional[Dict[str, Any]]:
    if cex is None:
        return None
    return {
        "length": cex.length,
        "inputs": [dict(frame) for frame in cex.inputs],
        "initial_state": dict(cex.initial_state),
        "bad_signal": cex.bad_signal,
    }


# ---------------------------------------------------------------------------
# Handlers
# ---------------------------------------------------------------------------

_SOLVE_FIELDS = {
    "engines": lambda v: tuple(v),
    "jobs": int,
    "max_bound": int,
    "induction_max_k": int,
    "unique_states": bool,
    "pdr_max_frames": int,
    "time_limit": float,
    "max_conflicts": int,
    "start_bound": int,
    "static_max_frames": int,
    "force_sequential": bool,
    "certify": bool,
    "max_worker_retries": int,
    "retry_backoff": float,
}


def _run_solve(job, cache, tracer, deadline):
    from repro.formal.portfolio import PortfolioConfig, verify_portfolio
    from repro.formal.properties import SafetyProperty
    from repro.hdl.serialize import circuit_from_dict

    try:
        circuit = circuit_from_dict(_require_dict(job, "circuit"))
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"bad circuit document: {exc}") from exc
    pdoc = _require_dict(job, "prop")
    if "bad" not in pdoc:
        raise JobError("prop object needs a 'bad' signal name")
    prop = SafetyProperty(
        name=str(pdoc.get("name", "served")),
        bad=str(pdoc["bad"]),
        assumptions=tuple(pdoc.get("assumptions", ())),
        init_assumptions=tuple(pdoc.get("init_assumptions", ())),
        symbolic_registers=frozenset(pdoc.get("symbolic_registers", ())),
        symbolic_all_registers=bool(pdoc.get("symbolic_all", False)),
    )
    kwargs = _config_kwargs(job.get("config", {}) or {}, _SOLVE_FIELDS,
                            "solve")
    if deadline is not None:
        limit = kwargs.get("time_limit")
        kwargs["time_limit"] = (deadline if limit is None
                                else min(limit, deadline))
    config = PortfolioConfig(faults=_faults_from_doc(job), **kwargs)
    result = verify_portfolio(circuit, prop, config, cache=cache,
                              tracer=tracer)
    return {
        "kind": "solve",
        "status": result.status.value,
        "winner": result.winner,
        "bound": result.bound,
        "elapsed": round(result.elapsed, 3),
        "mode": result.mode,
        "cache_hit": result.cache_hit,
        "certificate_ok": result.certificate_ok,
        "counterexample": _cex_doc(result.counterexample),
        "reports": [
            {"engine": r.engine, "status": r.status, "bound": r.bound,
             "elapsed": round(r.elapsed, 3), "retries": r.retries,
             "winner": r.winner}
            for r in result.reports
        ],
    }


_VERIFY_FIELDS = {
    "max_bound": int,
    "mc_time_limit": float,
    "use_induction": bool,
    "induction_max_k": int,
    "max_counterexamples": int,
    "max_refinements": int,
    "total_time_limit": float,
    "exact_validation": bool,
    "seed": int,
    "sim_prefilter": bool,
    "sim_trials": int,
    "sim_depth": int,
    "mc_enabled": bool,
    "engine": str,
    "static_prescreen": bool,
    "static_max_frames": int,
    "jobs": int,
    "pdr_max_frames": int,
    "max_conflicts": int,
    "certify": bool,
    "max_worker_retries": int,
    "retry_backoff": float,
    "speculate": int,
}


def _run_verify(job, cache, tracer, deadline):
    from repro.cegar import CegarConfig, run_compass
    from repro.contracts import make_contract_task
    from repro.taint.scheme_io import save_scheme

    core = _core_from_doc(job.get("core", {}) or {})
    task = make_contract_task(core)
    kwargs = _config_kwargs(job.get("config", {}) or {}, _VERIFY_FIELDS,
                            "verify")
    if deadline is not None:
        limit = kwargs.get("total_time_limit")
        kwargs["total_time_limit"] = (deadline if limit is None
                                      else min(limit, deadline))
    config = CegarConfig(solve_cache=cache, trace=tracer,
                         faults=_faults_from_doc(job), **kwargs)
    result = run_compass(task, config)
    stats = result.stats
    rows = [stats.row(core.name)]
    rows += stats.portfolio_rows()
    rows += stats.analyze_rows()
    rows += stats.robustness_rows()
    buf = io.StringIO()
    save_scheme(result.scheme, buf)
    return {
        "kind": "verify",
        "core": core.name,
        "status": result.status.value,
        "secure": result.secure,
        "bound": result.bound,
        "refinements": stats.refinements,
        "counterexamples_eliminated": stats.counterexamples_eliminated,
        "rows": rows,
        "scheme": json.loads(buf.getvalue()),
        "leak": _cex_doc(result.leak),
    }


_CANDIDATE_FIELDS = {
    "engine": str,
    "mc_enabled": bool,
    "use_induction": bool,
    "max_bound": int,
    "induction_max_k": int,
    "unique_states": bool,
    "static_prescreen": bool,
    "static_max_frames": int,
    "jobs": int,
    "portfolio_engines": lambda v: tuple(v),
    "pdr_max_frames": int,
    "max_conflicts": int,
    "certify": bool,
    "mc_time_limit": float,
    "max_worker_retries": int,
    "retry_backoff": float,
}


def _run_candidate(job, cache, tracer, deadline):
    """Verify one candidate taint scheme on a serialized task.

    The remote unit behind ``repro verify --speculate N --remote``:
    the speculative scheduler ships ``{"task": ..., "scheme": ...,
    "config": ...}`` and gets back a :class:`~repro.cegar.speculate.
    CandidateVerdict` document.  The task travels as a serialized
    circuit (not a registered-core name) so speculation works on any
    design, and the daemon's store-backed cache absorbs every solve —
    an abandoned (advisorily-cancelled) candidate still warms the
    store for the next submission.
    """
    from repro.cegar.loop import TaintVerificationTask
    from repro.cegar.speculate import verdict_to_doc, verify_candidate
    from repro.cegar import CegarConfig
    from repro.hdl.serialize import circuit_from_dict
    from repro.taint.instrument import TaintSources
    from repro.taint.scheme_io import scheme_from_dict

    tdoc = _require_dict(job, "task")
    try:
        circuit = circuit_from_dict(_require_dict(tdoc, "circuit"))
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"bad circuit document: {exc}") from exc
    sdoc = tdoc.get("sources") or {}
    try:
        task = TaintVerificationTask(
            name=str(tdoc.get("name", "candidate")),
            circuit=circuit,
            sources=TaintSources(
                registers={str(k): int(v) for k, v in
                           (sdoc.get("registers") or {}).items()},
                inputs={str(k): int(v) for k, v in
                        (sdoc.get("inputs") or {}).items()},
            ),
            sinks=tuple(tdoc.get("sinks", ())),
            clean_assumptions=tuple(tdoc.get("clean_assumptions", ())),
            gated_clean_assumptions=tuple(
                (str(a), str(b))
                for a, b in tdoc.get("gated_clean_assumptions", ())),
            assumption_outputs=tuple(tdoc.get("assumption_outputs", ())),
            init_assumption_outputs=tuple(
                tdoc.get("init_assumption_outputs", ())),
            symbolic_registers=frozenset(tdoc.get("symbolic_registers", ())),
            blackbox_modules=(tuple(tdoc["blackbox_modules"])
                              if tdoc.get("blackbox_modules") is not None
                              else None),
            precise_modules=tuple(tdoc.get("precise_modules", ())),
        )
    except (TypeError, ValueError) as exc:
        raise JobError(f"bad task document: {exc}") from exc
    try:
        scheme = scheme_from_dict(_require_dict(job, "scheme"))
    except (KeyError, TypeError, ValueError) as exc:
        raise JobError(f"bad scheme document: {exc}") from exc
    kwargs = _config_kwargs(job.get("config", {}) or {}, _CANDIDATE_FIELDS,
                            "candidate")
    time_limit = kwargs.pop("mc_time_limit", None)
    if deadline is not None:
        time_limit = deadline if time_limit is None else min(time_limit,
                                                             deadline)
    config = CegarConfig(faults=_faults_from_doc(job), **kwargs)
    verdict = verify_candidate(task, scheme, config, cache=cache,
                               tracer=tracer, time_limit=time_limit)
    doc = verdict_to_doc(verdict)
    doc["kind"] = "candidate"
    return doc


def _run_lint(job, cache, tracer, deadline):
    from repro.lint import LintConfig, lint

    core = _core_from_doc(job.get("core", {}) or {})
    config = LintConfig(
        disabled=set(job.get("disable", ()) or ()),
        semantic=not job.get("no_semantic", False),
    )
    started = time.monotonic()
    report = lint(core.circuit, None, config=config)
    return {
        "kind": "lint",
        "core": core.name,
        "ok": report.ok,
        "elapsed": round(time.monotonic() - started, 3),
        "report": report.to_stable_dict(),
    }


def _run_analyze(job, cache, tracer, deadline):
    from repro.cli import analyze_document

    core = _core_from_doc(job.get("core", {}) or {})
    doc = analyze_document(core, max_frames=int(job.get("max_frames", 64)))
    return {"kind": "analyze", "core": core.name, "document": doc}


def _run_simulate(job, cache, tracer, deadline):
    from repro.bench.workloads import (WORKLOADS, run_workload_batch,
                                       run_workload_on_core)
    from repro.cores import CoreConfig, core_registry

    registry = core_registry()
    core_name = job.get("core", "Rocket")
    if core_name not in registry:
        raise JobError(f"unknown core {core_name!r}")
    workload_name = job.get("workload", "median")
    if workload_name not in WORKLOADS:
        raise JobError(f"unknown workload {workload_name!r} "
                       f"(expected one of {sorted(WORKLOADS)})")
    core = registry[core_name](CoreConfig.simulation(), False)
    workload = WORKLOADS[workload_name]
    seed = int(job.get("seed", 0))
    lanes = int(job.get("lanes", 1))
    started = time.monotonic()
    if lanes > 1:
        seeds = list(range(seed, seed + lanes))
        cycles, _sim = run_workload_batch(core, workload, seeds,
                                          tracer=tracer)
        cycles = list(cycles)
    else:
        count, _sim = run_workload_on_core(core, workload, seed=seed)
        cycles = [count]
    return {
        "kind": "simulate",
        "core": core.name,
        "workload": workload.name,
        "seed": seed,
        "lanes": lanes,
        "cycles": cycles,
        "elapsed": round(time.monotonic() - started, 3),
    }


_HANDLERS: Dict[str, Callable] = {
    "solve": _run_solve,
    "verify": _run_verify,
    "candidate": _run_candidate,
    "lint": _run_lint,
    "analyze": _run_analyze,
    "simulate": _run_simulate,
}


def run_job(
    job: Dict[str, Any],
    cache=None,
    tracer=None,
    deadline: Optional[float] = None,
) -> Dict[str, Any]:
    """Execute one job document; returns its JSON-able result document.

    Args:
        job: the job object (``{"kind": ..., ...}``).
        cache: optional :class:`~repro.formal.cache.SolveCache` (the
            daemon passes its store-backed cache; solve/verify jobs
            consult and update it).
        tracer: optional :class:`~repro.obs.Tracer` for progress
            sampling.
        deadline: remaining wall-clock seconds; caps the job's own time
            limits so a submitted deadline cannot be out-waited.

    Raises:
        JobError: malformed document, unknown kind/core/workload.
    """
    if not isinstance(job, dict):
        raise JobError(f"job must be an object, got {type(job).__name__}")
    kind = job.get("kind")
    if kind not in _HANDLERS:
        raise JobError(f"unknown job kind {kind!r} "
                       f"(expected one of {JOB_KINDS})")
    return _HANDLERS[kind](job, cache, tracer, deadline)

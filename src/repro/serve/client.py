"""Thin synchronous client for the job daemon.

This is what ``repro verify --remote SOCKET`` (and friends) talk
through.  It is deliberately boring: blocking unix-socket I/O, one
message per line, no threads.  The one interesting contract is
*graceful degradation*: every transport-level problem — no daemon,
stale socket file, daemon died mid-job — surfaces as
:class:`ServeUnavailable`, which the CLI catches to fall back to local
in-process execution.  Only :class:`ServeJobError` (the daemon ran the
job and reported a real error, e.g. an unknown core) propagates as a
user-visible failure, because retrying locally would fail identically.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.serve.protocol import ProtocolError, decode_message, encode_message


class ServeUnavailable(Exception):
    """The daemon cannot be reached (caller should run locally)."""


class ServeJobError(Exception):
    """The daemon processed the submission and reported an error."""


def connect(path: str, retries: int = 0, retry_delay: float = 0.1,
            timeout: Optional[float] = None) -> "ServeClient":
    """Connect to the daemon at ``path``; raises ServeUnavailable.

    ``retries`` > 0 waits for a daemon that is still starting up —
    handy for scripts that launch the daemon and immediately submit.
    """
    last: Optional[Exception] = None
    for attempt in range(retries + 1):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(timeout)
            sock.connect(path)
            return ServeClient(sock)
        except OSError as exc:
            sock.close()
            last = exc
            if attempt < retries:
                time.sleep(retry_delay)
    raise ServeUnavailable(f"no job daemon at {path!r}: {last}")


class ServeClient:
    """One connection to the daemon; submit jobs, read replies."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0

    # -- transport ---------------------------------------------------------

    def _send(self, msg: Dict[str, Any]) -> None:
        try:
            self._file.write(encode_message(msg))
            self._file.flush()
        except (OSError, ValueError) as exc:
            raise ServeUnavailable(f"daemon connection lost: {exc}") from exc

    def _recv(self) -> Dict[str, Any]:
        try:
            line = self._file.readline()
        except (OSError, ValueError) as exc:
            raise ServeUnavailable(f"daemon connection lost: {exc}") from exc
        if not line:
            raise ServeUnavailable("daemon closed the connection")
        try:
            return decode_message(line)
        except ProtocolError as exc:
            raise ServeUnavailable(f"daemon spoke garbage: {exc}") from exc

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- requests ----------------------------------------------------------

    def ping(self) -> bool:
        self._send({"type": "ping"})
        return self._recv()["type"] == "pong"

    def stats(self) -> Dict[str, Any]:
        """The daemon's counter snapshot (serve / cache / store blocks)."""
        self._send({"type": "stats"})
        reply = self._recv()
        if reply["type"] != "stats":
            raise ServeUnavailable(
                f"expected stats reply, got {reply['type']!r}")
        return reply.get("stats", {})

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit."""
        self._send({"type": "shutdown"})
        try:
            self._recv()  # "bye"
        except ServeUnavailable:
            pass  # it may exit before the reply lands; that is success

    def submit(
        self,
        job: Dict[str, Any],
        deadline: Optional[float] = None,
        progress: bool = False,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run one job to completion; returns the full result message.

        The returned dict has ``result`` (the job's result document)
        and ``dedup`` (True when this submission attached to a
        computation another client started).  ``on_progress`` receives
        every progress event when ``progress`` is on.

        Raises:
            ServeJobError: the daemon rejected or failed the job.
            ServeUnavailable: the transport died before a verdict.
        """
        msg_id = self._next_id
        self._next_id += 1
        submit: Dict[str, Any] = {"type": "submit", "id": msg_id, "job": job,
                                  "progress": bool(progress or on_progress)}
        if deadline is not None:
            submit["deadline"] = deadline
        self._send(submit)
        while True:
            reply = self._recv()
            if reply.get("id") != msg_id:
                if reply.get("type") == "error" and reply.get("id") is None:
                    # The daemon could not attribute the failure to any
                    # submission (our line was undecodable or oversized,
                    # so it never became a job) — no reply carrying our
                    # id will ever arrive.  Transport-level, hence
                    # ServeUnavailable: the caller falls back to local
                    # execution, which does not involve the wire format.
                    raise ServeUnavailable(
                        "daemon rejected the submission line: "
                        f"{reply.get('error', 'unknown error')}")
                continue  # stale event from an earlier submission
            rtype = reply["type"]
            if rtype == "progress":
                if on_progress is not None:
                    on_progress(reply)
                continue
            if rtype == "result":
                return reply
            if rtype == "error":
                raise ServeJobError(str(reply.get("error", "unknown error")))
            raise ServeUnavailable(f"unexpected reply type {rtype!r}")

"""The asyncio job daemon behind ``python -m repro serve``.

One :class:`JobServer` owns a unix socket, a bounded thread pool of
job workers and (optionally) a persistent solve store.  The event loop
only shuffles messages; every job body runs on a worker thread, and
heavyweight verifications inside a job reuse the portfolio scheduler's
supervised *process* workers — a SIGKILLed engine worker is relaunched
with backoff by the machinery that already existed, not re-implemented
here.

Robustness posture:

- **Dedup**: submissions are keyed by :func:`repro.serve.jobs
  .job_digest`; a second client submitting an identical job document
  attaches to the running computation and receives the same result
  (marked ``dedup: true``).
- **Store**: verdicts write through the persistent store; the store is
  flushed after every completed job, so a daemon killed between jobs
  loses nothing.  A locked or corrupt store degrades to an in-memory
  cache with a warning — serving never depends on persistence.
- **Deadlines**: a per-job deadline caps the job's own time budgets
  before it starts; a deadline cannot be out-waited by a slow engine.
- **Progress**: clients that opt in receive ``progress`` events — one
  immediately on submit, then periodic samples of the job's
  :class:`~repro.obs.Tracer` (event count + counter totals).
- **Isolation**: a malformed message or job poisons only its own
  submission; the connection and the daemon keep serving.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.serve.jobs import JobError, job_digest, run_job
from repro.serve.protocol import ProtocolError, decode_message, encode_message


@dataclass
class ServeStats:
    """Daemon-lifetime counters (the ``stats`` reply's ``serve`` block)."""

    connections: int = 0
    submitted: int = 0           # submissions accepted (incl. attachments)
    deduped: int = 0             # submissions served by attaching
    completed: int = 0           # jobs that produced a result
    failed: int = 0              # jobs that raised
    cancelled: int = 0           # submissions detached by cancel
    progress_events: int = 0     # progress messages sent
    protocol_errors: int = 0     # undecodable/invalid messages

    def row(self) -> str:
        return (
            f"serve: {self.submitted} submitted ({self.deduped} deduped), "
            f"{self.completed} completed, {self.failed} failed, "
            f"{self.cancelled} cancelled, "
            f"{self.progress_events} progress events"
        )


@dataclass
class _Submission:
    """One client's interest in a job."""

    writer: asyncio.StreamWriter
    msg_id: Any
    progress: bool
    attached: bool               # True when this submission deduped


@dataclass
class _Job:
    """One running computation, possibly shared by many submissions."""

    digest: str
    job: Dict[str, Any]
    future: "asyncio.Future[Dict[str, Any]]"
    tracer: Any
    started: float
    subs: List[_Submission] = field(default_factory=list)


class JobServer:
    """Async job daemon over a local unix socket.

    Args:
        socket_path: where to listen (stale socket files are replaced).
        store_dir: optional persistent solve store directory; opened
            read-write at start, gracefully skipped when unavailable.
        workers: concurrent job threads (each may itself fan out into
            portfolio processes).
        default_deadline: per-job wall-clock cap in seconds applied
            when the submission does not carry its own.
        progress_interval: seconds between progress samples.
    """

    def __init__(
        self,
        socket_path: str,
        store_dir: Optional[str] = None,
        workers: int = 2,
        default_deadline: Optional[float] = None,
        progress_interval: float = 0.25,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.socket_path = socket_path
        self.store_dir = store_dir
        self.workers = workers
        self.default_deadline = default_deadline
        self.progress_interval = progress_interval
        self.stats = ServeStats()
        self.store = None
        self.cache = None
        self._inflight: Dict[str, _Job] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._stopped: Optional[asyncio.Event] = None
        self._tasks: "set[asyncio.Task]" = set()

    # -- lifecycle ---------------------------------------------------------

    def _open_store(self) -> None:
        """Attach the persistent store; degrade to in-memory on trouble.

        Both paths hand the worker pool a *thread-safe* cache: the
        store-backed adapter locks internally, and the in-memory
        fallback is a :class:`ThreadSafeSolveCache` — a plain
        :class:`SolveCache` would corrupt its LRU bookkeeping under
        ``workers >= 2``.
        """
        from repro.formal.cache import ThreadSafeSolveCache

        if self.store_dir is not None:
            from repro.store import SolveStore, StoreError, StoreLockedError

            try:
                self.store = SolveStore(self.store_dir)
                self.cache = self.store.cache()
                return
            except (StoreLockedError, StoreError, OSError) as exc:
                warnings.warn(
                    f"solve store {self.store_dir!r} unavailable ({exc}); "
                    "serving with an in-memory cache instead",
                    stacklevel=2,
                )
        self.cache = ThreadSafeSolveCache()

    async def start(self) -> None:
        import os

        self._open_store()
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve")
        self._stopped = asyncio.Event()
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path)

    async def wait_stopped(self) -> None:
        assert self._stopped is not None, "start() first"
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain in-flight jobs, close the socket and the store."""
        if self._stopped is not None and self._stopped.is_set():
            return
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Let running jobs finish so attached clients get their result,
        # then let their finisher/progress tasks deliver it.
        pending = [job.future for job in self._inflight.values()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.store is not None:
            self.store.close()
            self.store = None
        if self._stopped is not None:
            self._stopped.set()

    def run(self) -> None:
        """Blocking helper: serve until a ``shutdown`` message arrives."""

        async def _main() -> None:
            await self.start()
            try:
                await self.wait_stopped()
            finally:
                if self._stopped is not None and not self._stopped.is_set():
                    await self.stop()

        asyncio.run(_main())

    # -- connection handling -----------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                try:
                    msg = decode_message(line)
                except ProtocolError as exc:
                    self.stats.protocol_errors += 1
                    await self._send(writer, {"type": "error",
                                              "error": str(exc)})
                    continue
                if not await self._dispatch(msg, writer):
                    break
        finally:
            self._detach_writer(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    msg: Dict[str, Any]) -> None:
        try:
            writer.write(encode_message(msg))
            await writer.drain()
        except (ConnectionError, OSError):
            self._detach_writer(writer)

    def _detach_writer(self, writer: asyncio.StreamWriter) -> None:
        """Forget a gone client's subscriptions (jobs keep running:
        another submitter may be attached, and the verdict still lands
        in the store either way)."""
        for job in self._inflight.values():
            job.subs = [s for s in job.subs if s.writer is not writer]

    # -- message dispatch ---------------------------------------------------

    async def _dispatch(self, msg: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one message; returns False to end the connection."""
        mtype = msg["type"]
        if mtype == "ping":
            await self._send(writer, {"type": "pong"})
            return True
        if mtype == "stats":
            await self._send(writer, {"type": "stats",
                                      "stats": self.snapshot_stats()})
            return True
        if mtype == "shutdown":
            await self._send(writer, {"type": "bye"})
            await self.stop()
            return False
        if mtype == "cancel":
            self._cancel(msg.get("id"), writer)
            return True
        if mtype == "submit":
            await self._submit(msg, writer)
            return True
        self.stats.protocol_errors += 1
        await self._send(writer, {
            "type": "error", "id": msg.get("id"),
            "error": f"server cannot handle message type {mtype!r}",
        })
        return True

    def _cancel(self, msg_id: Any, writer: asyncio.StreamWriter) -> None:
        for job in self._inflight.values():
            before = len(job.subs)
            job.subs = [s for s in job.subs
                        if not (s.writer is writer and s.msg_id == msg_id)]
            self.stats.cancelled += before - len(job.subs)

    async def _submit(self, msg: Dict[str, Any],
                      writer: asyncio.StreamWriter) -> None:
        msg_id = msg.get("id")
        job_doc = msg.get("job")
        try:
            if not isinstance(job_doc, dict):
                raise JobError("submit needs a 'job' object")
            digest = job_digest(job_doc)
        except JobError as exc:
            self.stats.protocol_errors += 1
            await self._send(writer, {"type": "error", "id": msg_id,
                                      "error": str(exc)})
            return
        self.stats.submitted += 1
        deadline = msg.get("deadline")
        if deadline is None:
            deadline = self.default_deadline
        wants_progress = bool(msg.get("progress"))

        job = self._inflight.get(digest)
        attached = job is not None
        if job is None:
            job = self._launch(digest, job_doc, deadline)
        else:
            self.stats.deduped += 1
        sub = _Submission(writer=writer, msg_id=msg_id,
                          progress=wants_progress, attached=attached)
        job.subs.append(sub)
        if wants_progress:
            # First event immediately: a subscriber always sees >= 1
            # progress message, however fast the job is.
            await self._send_progress(job, only=sub)

    def _launch(self, digest: str, job_doc: Dict[str, Any],
                deadline: Optional[float]) -> _Job:
        from repro.obs import Tracer

        assert self._pool is not None, "start() first"
        loop = asyncio.get_running_loop()
        tracer = Tracer()
        future = loop.run_in_executor(
            self._pool, self._execute, job_doc, tracer, deadline)
        job = _Job(digest=digest, job=job_doc, future=future,
                   tracer=tracer, started=time.monotonic())
        self._inflight[digest] = job
        finisher = asyncio.ensure_future(self._finish(job))
        self._tasks.add(finisher)
        finisher.add_done_callback(self._tasks.discard)
        ticker = asyncio.ensure_future(self._progress_loop(job))
        self._tasks.add(ticker)
        ticker.add_done_callback(self._tasks.discard)
        return job

    def _execute(self, job_doc: Dict[str, Any], tracer,
                 deadline: Optional[float]) -> Dict[str, Any]:
        """Worker-thread body: run the job against the shared cache."""
        return run_job(job_doc, cache=self.cache, tracer=tracer,
                       deadline=deadline)

    # -- completion / progress ---------------------------------------------

    async def _finish(self, job: _Job) -> None:
        try:
            result = await job.future
            ok, payload = True, result
        except JobError as exc:
            ok, payload = False, str(exc)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            ok, payload = False, f"{type(exc).__name__}: {exc}"
        finally:
            self._inflight.pop(job.digest, None)
        if ok:
            self.stats.completed += 1
        else:
            self.stats.failed += 1
        if self.store is not None:
            # Durability point: everything this job decided is on disk
            # before any client sees the verdict.  Safe to call from
            # the event loop while workers append through the cache:
            # the store serializes flush/append on its own mutex.
            self.store.flush()
        elapsed = round(time.monotonic() - job.started, 3)
        for sub in job.subs:
            if ok:
                await self._send(sub.writer, {
                    "type": "result", "id": sub.msg_id, "ok": True,
                    "result": payload, "dedup": sub.attached,
                    "elapsed": elapsed,
                })
            else:
                await self._send(sub.writer, {
                    "type": "error", "id": sub.msg_id, "error": payload,
                })

    async def _send_progress(self, job: _Job,
                             only: Optional[_Submission] = None) -> None:
        msg = {
            "type": "progress",
            "elapsed": round(time.monotonic() - job.started, 3),
            "events": len(job.tracer),
            "counters": job.tracer.counter_totals(),
        }
        targets = [only] if only is not None else [
            s for s in job.subs if s.progress]
        for sub in targets:
            self.stats.progress_events += 1
            await self._send(sub.writer, dict(msg, id=sub.msg_id))

    async def _progress_loop(self, job: _Job) -> None:
        while not job.future.done():
            try:
                await asyncio.wait_for(asyncio.shield(job.future),
                                       timeout=self.progress_interval)
            except asyncio.TimeoutError:
                await self._send_progress(job)
            except Exception:
                return  # _finish reports the failure

    # -- observability ------------------------------------------------------

    def snapshot_stats(self) -> Dict[str, Any]:
        """JSON-able counters: serve + cache + store blocks."""
        doc: Dict[str, Any] = {
            "serve": asdict(self.stats),
            "inflight": len(self._inflight),
            "workers": self.workers,
        }
        if self.cache is not None:
            cs = self.cache.stats
            doc["cache"] = {
                "hits": cs.hits, "misses": cs.misses, "stores": cs.stores,
                "evictions": cs.evictions, "rejected": cs.rejected,
            }
        if self.store is not None:
            doc["store"] = asdict(self.store.stats)
        return doc

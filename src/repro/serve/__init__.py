"""Verification-as-a-service: an async job daemon over a unix socket.

``python -m repro serve --socket PATH --store DIR`` starts a long-lived
:class:`JobServer` that accepts verify/lint/analyze/simulate jobs over
a local unix socket (versioned JSON-lines protocol,
:mod:`repro.serve.protocol`), dedups in-flight requests by
circuit+property digest (a second submitter attaches to the first
job's future instead of re-running it), shards jobs onto a bounded
worker pool — each verification reuses the portfolio scheduler's
supervised crash-detection/backoff-retry machinery — streams progress
events sampled from the :mod:`repro.obs` tracer to subscribed clients,
and backs every verdict with the persistent solve store
(:mod:`repro.store`) so answers survive daemon restarts.

The thin client (:mod:`repro.serve.client`) is what the CLI's
``--remote`` flag uses; when the daemon is unreachable it degrades
gracefully to local in-process execution with a warning instead of
failing.  See ``docs/serving.md``.
"""

from repro.serve.client import (
    ServeClient,
    ServeJobError,
    ServeUnavailable,
    connect,
)
from repro.serve.jobs import JobError, job_digest, run_job
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)
from repro.serve.server import JobServer, ServeStats

__all__ = [
    "JobError",
    "JobServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeJobError",
    "ServeStats",
    "ServeUnavailable",
    "connect",
    "decode_message",
    "encode_message",
    "job_digest",
    "run_job",
]

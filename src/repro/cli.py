"""Command-line interface: ``python -m repro <command> ...``.

Commands:

- ``verify``     — run the Compass CEGAR loop on a core's contract.
- ``analyze``    — SAT-free dataflow summary of a core's contract.
- ``lint``       — static analysis over a core or netlist file.
- ``leak-check`` — directed formal leak check with a gadget program.
- ``overhead``   — Figure-5-style instrumentation overhead comparison.
- ``simulate``   — run a benchmark kernel on a core (optionally tainted).
- ``serve``      — run the verification job daemon on a unix socket.
- ``export``     — emit a core's circuit as Verilog or JSON netlist.
- ``trace``      — summarize a performance trace from ``verify --trace``.
- ``tables``     — print the static tables (Table 1 and Table 5).

``verify``, ``lint``, ``analyze`` and ``simulate`` accept ``--remote
SOCKET`` to submit their job to a running daemon (``repro serve``);
an unreachable daemon degrades to local execution with a warning.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.cores import CoreConfig, core_registry


def _core_names() -> List[str]:
    return list(core_registry())


def _build_core(args, with_shadow: bool = True):
    cfg = CoreConfig(
        xlen=args.xlen, imem_depth=args.imem, dmem_depth=args.dmem,
        secret_words=args.secret_words,
    )
    return core_registry()[args.core](cfg, with_shadow)


def _add_core_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--core", choices=_core_names(), default="Sodor")
    parser.add_argument("--xlen", type=int, default=8)
    parser.add_argument("--imem", type=int, default=8)
    parser.add_argument("--dmem", type=int, default=8)
    parser.add_argument("--secret-words", type=int, default=2)


def _add_remote_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--remote", metavar="SOCKET", default=None,
                        help="submit the job to the daemon listening on "
                             "this unix socket (repro serve); falls back "
                             "to local execution with a warning when the "
                             "daemon is unreachable")


def _core_doc(args) -> dict:
    """The job document's ``core`` object for the current CLI args."""
    return {
        "name": args.core, "xlen": args.xlen, "imem": args.imem,
        "dmem": args.dmem, "secret_words": args.secret_words,
    }


def _remote_submit(socket_path: str, job: dict,
                   deadline: Optional[float] = None) -> Optional[dict]:
    """Submit one job to the daemon; None means "run locally instead".

    Transport failures (no daemon, daemon died mid-job) degrade to
    local execution; a job the daemon *rejected* exits with an error,
    because retrying the same document locally would fail identically.
    """
    from repro.serve import ServeJobError, ServeUnavailable, connect

    try:
        client = connect(socket_path)
    except ServeUnavailable as exc:
        print(f"warning: {exc}; running locally", file=sys.stderr)
        return None
    try:
        return client.submit(job, deadline=deadline)
    except ServeUnavailable as exc:
        print(f"warning: {exc}; running locally", file=sys.stderr)
        return None
    except ServeJobError as exc:
        print(f"error: daemon rejected the job: {exc}", file=sys.stderr)
        raise SystemExit(2)
    finally:
        client.close()


def _remote_analyze(args) -> Optional[dict]:
    job = {"kind": "analyze", "core": _core_doc(args),
           "max_frames": args.max_frames}
    reply = _remote_submit(args.remote, job)
    if reply is None:
        return None
    return reply["result"]["document"]


def cmd_verify(args) -> int:
    from repro.contracts import make_contract_task
    from repro.cegar import (
        CegarConfig,
        CegarStatus,
        CheckpointError,
        prune_refinements,
        run_compass,
    )

    if args.remote and not args.speculate:
        # --speculate keeps the loop local and dispatches *candidates*
        # to the daemon instead of shipping the whole verify.
        outcome = _remote_verify(args)
        if outcome is not None:
            return outcome

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    core = _build_core(args)
    task = make_contract_task(core)
    print(f"verifying {core.name}: {core.circuit!r}")
    config = CegarConfig(
        max_bound=args.max_bound,
        use_induction=False,
        mc_enabled=not args.testing_only,
        mc_time_limit=args.budget / 3 if args.budget else None,
        total_time_limit=args.budget,
        max_refinements=args.max_refinements,
        seed=args.seed,
        engine=args.engine,
        jobs=args.jobs,
        static_prescreen=args.static_prescreen,
        certify=args.certify,
        store_dir=args.store,
        trace=tracer,
        speculate=args.speculate,
        speculate_remote=args.remote if args.speculate else None,
    )
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return 2
    try:
        result = run_compass(task, config, checkpoint_dir=args.checkpoint,
                             resume=args.resume)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"status: {result.status.value} (bound {result.bound})")
    print(result.stats.row(core.name))
    if args.engine == "portfolio" and (args.cache_stats or result.stats.portfolio_calls):
        for line in result.stats.portfolio_rows():
            print(line)
    elif args.cache_stats and result.stats.cache is not None:
        # Sequential engines share the cache too once checkpointing (or
        # resume) brings one into the run.
        print(result.stats.cache.row())
    for line in result.stats.analyze_rows():
        print(line)
    for line in result.stats.speculation_rows():
        print(line)
    for line in result.stats.robustness_rows():
        print(line)
    for line in result.stats.refinement_log:
        print(f"  {line}")
    scheme = result.scheme
    if args.prune and result.secure:
        scheme, report = prune_refinements(task, result.scheme,
                                           result.stats.eliminated)
        print(report.row())
        for line in report.removed_log:
            print(f"  pruned: {line}")
    if args.save_scheme:
        from repro.ioutil import atomic_write
        from repro.taint.scheme_io import save_scheme

        with atomic_write(args.save_scheme) as handle:
            save_scheme(scheme, handle)
        print(f"saved refined scheme to {args.save_scheme}")
    if tracer is not None:
        from repro.obs import write_trace_file

        write_trace_file(tracer, args.trace, args.trace_format)
        print(f"wrote {args.trace_format} trace ({len(tracer)} events) "
              f"to {args.trace}")
    if args.report:
        from repro.cegar.report import render_report
        from repro.ioutil import atomic_write

        with atomic_write(args.report) as handle:
            handle.write(render_report(result, task, tracer=tracer))
        print(f"wrote verification report to {args.report}")
    return 0 if result.secure else 1


def _remote_verify(args) -> Optional[int]:
    """Serve ``repro verify --remote`` from the daemon; None = fallback."""
    import json as _json

    job = {
        "kind": "verify",
        "core": _core_doc(args),
        "config": {
            "max_bound": args.max_bound,
            "use_induction": False,
            "mc_enabled": not args.testing_only,
            "mc_time_limit": args.budget / 3 if args.budget else None,
            "total_time_limit": args.budget,
            "max_refinements": args.max_refinements,
            "seed": args.seed,
            "engine": args.engine,
            "jobs": args.jobs,
            "static_prescreen": args.static_prescreen,
            "certify": args.certify,
        },
    }
    reply = _remote_submit(args.remote, job, deadline=args.budget)
    if reply is None:
        return None
    result = reply["result"]
    dedup = " [served from a deduplicated in-flight job]" \
        if reply.get("dedup") else ""
    print(f"status: {result['status']} (bound {result['bound']}) "
          f"[remote, {reply.get('elapsed', 0.0):.2f}s]{dedup}")
    for line in result["rows"]:
        print(line)
    if args.save_scheme:
        from repro.ioutil import atomic_write

        with atomic_write(args.save_scheme) as handle:
            _json.dump(result["scheme"], handle, indent=1)
        print(f"saved refined scheme to {args.save_scheme}")
    return 0 if result["secure"] else 1


def analyze_document(core, max_frames: int = 64) -> dict:
    """The ``repro-analyze/v1`` summary document for one core.

    Shared between ``repro analyze`` and the job daemon's ``analyze``
    handler so both surfaces emit the identical schema.
    """
    from repro.analyze import (
        constant_fixpoint,
        static_verify,
        taint_reachability,
        x_reachability,
        x_sources,
    )
    from repro.cegar.loop import instrument_task
    from repro.contracts import make_contract_task
    from repro.hdl.lowering import lower_to_gates
    from repro.taint import cellift_scheme

    task = make_contract_task(core)
    circuit = task.circuit
    started = time.monotonic()

    # Structural taint reachability under the CellIFT (fully precise)
    # region structure: which contract sinks can taint reach at all?
    reach = taint_reachability(circuit, cellift_scheme(), task.sources)
    hot_sinks = reach.reachable(task.sinks)

    # Ternary constant facts, with the universally quantified and
    # never-initialized state left unpinned.
    symbolic = frozenset(task.symbolic_registers)
    lowered = lower_to_gates(circuit)
    facts = constant_fixpoint(
        lowered, symbolic | frozenset(x_sources(circuit))
    )
    constants = facts.constant_names()

    # X reachability: which outputs can observe uninitialized state?
    xreach = x_reachability(
        circuit,
        x_sources(circuit, symbolic),
        constant_signals=[
            name for name in circuit.signals
            if facts.word_value(lowered, name) is not None
        ],
    )
    x_outputs = xreach.observable(sig.name for sig in circuit.outputs)

    # The static engine's verdict on the instrumented contract property.
    design, prop = instrument_task(task, task.initial_scheme())
    verdict = static_verify(design.circuit, prop, max_frames=max_frames)
    elapsed = time.monotonic() - started

    return {
        "schema": "repro-analyze/v1",
        "task": task.name,
        "cells": len(circuit.cells),
        "state_bits": circuit.state_bits(),
        "outputs": len(circuit.outputs),
        "taint": {
            "sources": len(reach.sources),
            "tainted_signals": len(reach.tainted),
            "sinks": list(task.sinks),
            "reachable_sinks": list(hot_sinks),
        },
        "constants": {
            "slots": len(facts.values),
            "pinned": len(constants),
            "worklist_pops": facts.pops,
        },
        "xprop": {
            "sources": list(xreach.sources),
            "observable_outputs": list(x_outputs),
        },
        "static": {
            "status": verdict.status,
            "bound": verdict.bound,
            "frames": verdict.frames,
            "reason": verdict.reason,
            "suspects": list(verdict.suspects),
            "elapsed": round(verdict.elapsed, 3),
        },
        "elapsed": round(elapsed, 3),
    }


def render_analyze_document(doc: dict) -> List[str]:
    """Human-readable lines for an ``analyze_document`` summary."""
    taint, const = doc["taint"], doc["constants"]
    xprop, static = doc["xprop"], doc["static"]
    lines = [
        f"analyze {doc['task']}: {doc['cells']} cells, "
        f"{doc['state_bits']} state bits",
        f"  taint : {len(taint['reachable_sinks'])}/{len(taint['sinks'])} "
        f"sinks reachable from {taint['sources']} sources "
        f"({taint['tainted_signals']} signals ever-tainted)",
        f"  const : {const['pinned']}/{const['slots']} gate-level "
        f"signals pinned at the ternary fixpoint",
        f"  xprop : {len(xprop['sources'])} uninitialized sources; "
        f"observable at {len(xprop['observable_outputs'])}/{doc['outputs']} "
        f"outputs",
        f"  static: {static['status']} (bound {static['bound']}, "
        f"{static['frames']} frames) in {static['elapsed']:.2f}s",
    ]
    if static["reason"]:
        lines.append(f"          {static['reason']}")
    if static["suspects"]:
        shown = ", ".join(static["suspects"][:8])
        suffix = ", ..." if len(static["suspects"]) > 8 else ""
        lines.append(f"          suspects: {shown}{suffix}")
    lines.append(f"  ({doc['elapsed']:.2f}s total)")
    return lines


def cmd_analyze(args) -> int:
    """SAT-free dataflow summary of a core's contract task."""
    import json as _json

    if getattr(args, "remote", None):
        doc = _remote_analyze(args)
        if doc is None:
            doc = analyze_document(_build_core(args),
                                   max_frames=args.max_frames)
    else:
        doc = analyze_document(_build_core(args), max_frames=args.max_frames)
    if args.json:
        print(_json.dumps(doc, indent=1))
        return 0
    for line in render_analyze_document(doc):
        print(line)
    return 0


def cmd_leak_check(args) -> int:
    from repro.bench import gadgets
    from repro.contracts import make_contract_task
    from repro.cegar.falsetaint import exact_false_taint_check
    from repro.cegar.loop import instrument_task
    from repro.formal import BmcStatus, SafetyProperty, bounded_model_check
    from repro.taint import cellift_scheme

    gadget = {
        "spectre": gadgets.SPECTRE_GADGET,
        "nested": gadgets.NESTED_BRANCH_GADGET,
        "mul": gadgets.MUL_TIMING_GADGET,
    }[args.gadget]
    core = _build_core(args)
    task = make_contract_task(core)
    scheme = cellift_scheme()
    for module in core.precise_modules:
        scheme.module_defaults[module] = scheme.default
    design, prop = instrument_task(task, scheme)
    pinned = core.initial_state_for(gadget)
    free = frozenset(set(task.symbolic_registers) - set(core.imem_words))
    directed = SafetyProperty(prop.name, prop.bad, prop.assumptions,
                              prop.init_assumptions, free)
    started = time.monotonic()
    result = bounded_model_check(design.circuit, directed, max_bound=args.max_bound,
                                 time_limit=args.budget, initial_values=pinned)
    elapsed = time.monotonic() - started
    if result.status is not BmcStatus.COUNTEREXAMPLE:
        print(f"{core.name}: no taint violation up to cycle {result.bound} "
              f"({elapsed:.1f}s) — secure on this gadget")
        return 0
    cex = result.counterexample.with_initial_state(pinned)
    taint_wf = cex.replay(design.circuit)
    sink = next(s for s in core.sinks
                if taint_wf.value(design.taint_name[s], taint_wf.length - 1))
    real = not exact_false_taint_check(
        core.circuit, cex, task.secret_registers(), sink,
        init_assumption_outputs=core.init_assumption_outputs,
    )
    verdict = "REAL LEAK" if real else "spurious taint (refine the scheme)"
    print(f"{core.name}: taint on {sink} at cycle {cex.length - 1} "
          f"({elapsed:.1f}s) — {verdict}")
    if args.trace:
        from repro.sim.trace_view import format_counterexample

        print()
        print(format_counterexample(cex, core.circuit, signals=list(core.sinks)))
    return 2 if real else 0


def cmd_overhead(args) -> int:
    from repro.contracts import make_contract_task
    from repro.cegar import CegarConfig, run_compass
    from repro.cegar.loop import instrument_task
    from repro.taint import cellift_scheme, instrumentation_overhead, scheme_summary

    core = _build_core(args)
    task = make_contract_task(core)
    refined = run_compass(task, CegarConfig(
        mc_enabled=False, sim_trials=96, sim_depth=16,
        exact_validation=False, max_refinements=400,
        max_counterexamples=200, seed=args.seed,
    )).scheme
    cellift = cellift_scheme()
    cellift.module_defaults = dict(refined.module_defaults)
    for label, scheme in (("CellIFT", cellift), ("Compass", refined)):
        design, _ = instrument_task(task, scheme.copy())
        print(instrumentation_overhead(design).row())
        if label == "Compass" and args.detail:
            for row in scheme_summary(design, depth=2):
                print("  " + row.format())
    return 0


def cmd_simulate(args) -> int:
    from repro.bench.workloads import (WORKLOADS, run_workload_batch,
                                       run_workload_on_core)
    from repro.taint import TaintSources, cellift_scheme, instrument
    from repro.sim import make_simulator

    if args.remote and not args.taint and not args.trace:
        job = {"kind": "simulate", "core": args.core,
               "workload": args.workload, "seed": args.seed,
               "lanes": args.lanes}
        reply = _remote_submit(args.remote, job)
        if reply is not None:
            result = reply["result"]
            cycles = result["cycles"]
            if result["lanes"] > 1:
                print(f"{result['workload']} on {result['core']}: "
                      f"{result['lanes']} lanes, "
                      f"{min(cycles)}-{max(cycles)} cycles/lane, "
                      f"{result['elapsed']:.3f}s [remote]")
            else:
                print(f"{result['workload']} on {result['core']}: "
                      f"{cycles[0]} cycles, {result['elapsed']:.3f}s "
                      "[remote]")
            return 0

    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer()
    cfg = CoreConfig.simulation()
    core = core_registry()[args.core](cfg, False)
    workload = WORKLOADS[args.workload]
    if args.lanes > 1:
        # Bit-parallel sweep: one lane per data seed, one pass.
        seeds = list(range(args.seed, args.seed + args.lanes))
        started = time.monotonic()
        cycles_per_lane, sim = run_workload_batch(core, workload, seeds,
                                                  tracer=tracer)
        elapsed = time.monotonic() - started
        lane_steps = sum(cycles_per_lane)
        if tracer is not None and elapsed > 0:
            tracer.gauge("sim.steps_per_sec", lane_steps / elapsed)
        print(f"{workload.name} on {core.name}: {args.lanes} lanes "
              f"(seeds {seeds[0]}..{seeds[-1]}), "
              f"{min(cycles_per_lane)}-{max(cycles_per_lane)} cycles/lane, "
              f"{elapsed:.3f}s, {lane_steps / elapsed if elapsed else 0:,.0f} "
              "lane-steps/s (every lane self-checked against the ISA "
              "interpreter)")
    else:
        started = time.monotonic()
        cycles, sim = run_workload_on_core(core, workload, seed=args.seed)
        elapsed = time.monotonic() - started
        if tracer is not None:
            tracer.gauge("sim.lanes", 1)
            tracer.count("sim.steps", cycles)
            tracer.count("sim.lane_steps", cycles)
            if elapsed > 0:
                tracer.gauge("sim.steps_per_sec", cycles / elapsed)
        print(f"{workload.name} on {core.name}: {cycles} cycles, {elapsed:.3f}s "
              "(self-checked against the ISA interpreter)")
    if args.taint:
        sources = TaintSources(registers={core.dmem_words[i]: -1 for i in range(4)})
        design = instrument(core.circuit, cellift_scheme(), sources)
        import random

        if args.lanes > 1:
            tcycles, tsim = run_workload_batch(
                core, workload, seeds, circuit=design.circuit, tracer=tracer)
            for lane, seed in enumerate(seeds):
                tainted = [i for i in range(cfg.dmem_depth)
                           if tsim.peek(design.taint_name[core.dmem_words[i]],
                                        lane) != 0]
                print(f"  seed {seed}: tainted memory words "
                      f"(inputs 0-3 tainted): {tainted}")
        else:
            data = workload.make_data(random.Random(args.seed), cfg)
            tsim = make_simulator(design.circuit, compiled=True,
                                  initial_state=core.initial_state_for(workload.program, data))
            for _ in range(cycles):
                tsim.step({})
            tainted = [i for i in range(cfg.dmem_depth)
                       if tsim.peek(design.taint_name[core.dmem_words[i]]) != 0]
            print(f"tainted memory words after run (inputs 0-3 tainted): {tainted}")
    if tracer is not None:
        from repro.obs import write_trace_file

        write_trace_file(tracer, args.trace, "jsonl")
        print(f"wrote jsonl trace ({len(tracer)} events) to {args.trace}")
    return 0


def cmd_export(args) -> int:
    from repro.hdl.serialize import dump
    from repro.hdl.verilog import write_verilog

    core = _build_core(args, with_shadow=not args.no_shadow)

    def emit(out) -> None:
        if args.format == "verilog":
            write_verilog(core.circuit, out)
        else:
            dump(core.circuit, out)

    if args.output:
        from repro.ioutil import atomic_write

        with atomic_write(args.output) as out:
            emit(out)
        print(f"wrote {args.format} for {core.name} to {args.output}")
    else:
        emit(sys.stdout)
    return 0


def cmd_lint(args) -> int:
    """Lint a design: a core name or a JSON netlist file."""
    import json as _json
    import os

    from repro.lint import LintConfig, Severity, SourceMap, lint

    if args.selftest:
        return _lint_selftest()
    if args.design is None:
        print("error: a design (core name or netlist file) is required "
              "unless --selftest is given", file=sys.stderr)
        return 2
    if args.remote and args.design in core_registry():
        # Remote linting covers registered cores (netlist files stay
        # local: the daemon has no access to the client's filesystem).
        job = {
            "kind": "lint",
            "core": {"name": args.design, "xlen": args.xlen,
                     "imem": args.imem, "dmem": args.dmem,
                     "secret_words": args.secret_words,
                     "with_shadow": not args.no_shadow},
            "no_semantic": args.no_semantic,
            "disable": sorted(args.disable or ()),
        }
        reply = _remote_submit(args.remote, job)
        if reply is not None:
            result = reply["result"]
            print(_json.dumps(result["report"], indent=1))
            return 0 if result["ok"] else 1

    scheme = None
    if args.scheme:
        from repro.taint.scheme_io import load_scheme

        with open(args.scheme) as handle:
            scheme = load_scheme(handle, allow_custom=True)

    source_map = None
    if args.design in core_registry():
        cfg = CoreConfig(xlen=args.xlen, imem_depth=args.imem,
                         dmem_depth=args.dmem, secret_words=args.secret_words)
        core = core_registry()[args.design](cfg, not args.no_shadow)
        circuit = core.circuit
    elif os.path.exists(args.design):
        # Load leniently: a netlist with invariant violations is exactly
        # what the linter is for.
        from repro.hdl.serialize import circuit_from_dict

        try:
            with open(args.design) as handle:
                doc = _json.load(handle)
            circuit = circuit_from_dict(doc, validate=False)
        except (ValueError, KeyError, TypeError) as exc:
            print(f"error: {args.design} is not a readable netlist "
                  f"document: {exc}", file=sys.stderr)
            return 2
        if doc.get("provenance"):
            source_map = SourceMap.from_provenance(doc["provenance"])
    else:
        print(f"error: {args.design!r} is neither a known core "
              f"({', '.join(_core_names())}) nor a netlist file",
              file=sys.stderr)
        return 2

    waivers = []
    for entry in args.waive or ():
        rule_id, sep, pattern = entry.partition(":")
        if not sep or not rule_id or not pattern:
            print(f"error: --waive expects RULE:GLOB, got {entry!r}",
                  file=sys.stderr)
            return 2
        waivers.append((rule_id, pattern))
    waivers_file = args.waivers
    if waivers_file is None and not args.no_waivers:
        from repro.lint import find_waivers_file

        found = find_waivers_file()
        waivers_file = str(found) if found is not None else None
    if waivers_file:
        from repro.lint import WaiverError, load_waivers

        try:
            waivers.extend(load_waivers(waivers_file))
        except (OSError, WaiverError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    config = LintConfig(
        disabled=set(args.disable or ()),
        semantic=not args.no_semantic,
        waivers=tuple(waivers),
    )
    started = time.monotonic()
    report = lint(circuit, scheme, config=config, source_map=source_map)
    elapsed = time.monotonic() - started
    if args.format == "json":
        print(_json.dumps(report.to_stable_dict(), indent=1))
    elif args.json:
        print(report.to_json())
    else:
        min_severity = {"error": Severity.ERROR, "warning": Severity.WARNING,
                        "info": Severity.INFO}[args.min_severity]
        print(report.render_text(min_severity=min_severity))
        print(f"({len(circuit.cells)} cells linted in {elapsed:.2f}s)")
    return 0 if report.ok else 1


def _lint_selftest() -> int:
    """Verify the linter catches known-bad inputs (exit 0 iff it does)."""
    from repro.hdl import ModuleBuilder
    from repro.hdl.cells import Cell, CellOp
    from repro.hdl.circuit import Circuit
    from repro.hdl.signals import Signal, SignalKind
    from repro.lint import lint
    from repro.taint import TaintScheme
    from repro.taint.custom import ConstantCleanTaint

    failures = []

    # 1. A custom handler that drops taint on a pass-through.
    b = ModuleBuilder("selftest")
    sec = b.reg("secret", 1)
    sec.drive(sec)
    a = b.reg("a", 1)
    a.drive(a)
    with b.scope("masker"):
        out = b.named("out", sec & a)
    b.output("sink", out)
    circuit = b.build()
    scheme = TaintScheme("unsound")
    scheme.custom_modules["masker"] = ConstantCleanTaint()
    report = lint(circuit, scheme)
    if report.by_rule("unsound-handler"):
        print("PASS unsound custom handler flagged as error")
    else:
        failures.append("unsound-handler not reported")

    # 2. A hand-built combinational loop.
    loopy = Circuit("loopy")
    x = Signal("x", 1, SignalKind.WIRE)
    y = Signal("y", 1, SignalKind.WIRE)
    z = Signal("z", 1, SignalKind.OUTPUT)
    for sig in (x, y):
        loopy.signals[sig.name] = sig
    loopy.add_signal(z)
    loopy.cells.append(Cell(CellOp.BUF, x, (y,)))
    loopy.cells.append(Cell(CellOp.BUF, y, (x,)))
    loopy.cells.append(Cell(CellOp.BUF, z, (x,)))
    report = lint(loopy)
    if any(d.severity.value == "error" for d in report.by_rule("comb-loop")):
        print("PASS combinational loop flagged as error")
    else:
        failures.append("comb-loop not reported")

    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_trace(args) -> int:
    """Inspect a trace file written by ``verify --trace``."""
    from repro.obs import render_summary, load_trace

    if args.action == "summarize":
        try:
            summary = load_trace(args.file)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load trace {args.file!r}: {exc}",
                  file=sys.stderr)
            return 2
        print(render_summary(summary, top=args.top))
        return 0
    raise AssertionError(f"unhandled trace action {args.action!r}")


def cmd_serve(args) -> int:
    """Run the verification job daemon on a local unix socket."""
    from repro.serve import JobServer

    server = JobServer(
        args.socket,
        store_dir=args.store,
        workers=args.workers,
        default_deadline=args.deadline,
        progress_interval=args.progress_interval,
    )
    suffix = f" (store: {args.store})" if args.store else ""
    print(f"repro job daemon listening on {args.socket}{suffix}")
    try:
        server.run()
    except KeyboardInterrupt:
        pass
    print(server.stats.row())
    return 0


def cmd_tables(_args) -> int:
    from repro.cores.configs import format_table1
    from repro.taint import PRESETS

    print(format_table1())
    print("\nTable 5 rows (scheme -> dimensions):")
    for scheme, dims in PRESETS.items():
        print(f"  {scheme:<16} unit={','.join(dims['unit'])} "
              f"granularity={','.join(dims['granularity'])} "
              f"complexity={','.join(dims['complexity'])}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("verify", help="run the Compass CEGAR loop on a core")
    _add_core_options(p)
    p.add_argument("--budget", type=float, default=180.0)
    p.add_argument("--max-bound", type=int, default=10)
    p.add_argument("--max-refinements", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prune", action="store_true",
                   help="prune unnecessary refinements afterwards")
    p.add_argument("--testing-only", action="store_true",
                   help="refinement by simulation only (no model checker)")
    p.add_argument("--engine", choices=("sequential", "portfolio", "static"),
                   default="sequential",
                   help="model-checking engine: the classic k-induction/BMC "
                        "cascade, the parallel BMC+PDR+k-induction "
                        "portfolio with a cross-iteration solve cache, or "
                        "the SAT-free ternary static engine")
    p.add_argument("--static-prescreen", action="store_true",
                   help="run the SAT-free ternary pre-screen before each "
                        "model-check call (implied by --engine static)")
    p.add_argument("--jobs", type=int, default=0,
                   help="portfolio: concurrent engine processes "
                        "(0 = one per engine, 1 = in-process sequential)")
    p.add_argument("--cache-stats", action="store_true",
                   help="portfolio: print solve-cache hit/miss/eviction "
                        "counters and per-engine timings after the run")
    p.add_argument("--certify", dest="certify", action="store_true",
                   default=True,
                   help="portfolio: validate every PDR proof's inductive-"
                        "invariant certificate with the independent checker "
                        "before accepting the verdict (the default)")
    p.add_argument("--no-certify", dest="certify", action="store_false",
                   help="portfolio: accept PDR proofs without re-checking "
                        "their certificates")
    p.add_argument("--checkpoint", metavar="DIR", default=None,
                   help="journal CEGAR state to DIR after every iteration "
                        "(atomic, checksummed entries) so an interrupted "
                        "run can be resumed")
    p.add_argument("--resume", action="store_true",
                   help="resume from the newest intact checkpoint in the "
                        "--checkpoint directory instead of starting fresh")
    p.add_argument("--save-scheme", metavar="FILE", default=None,
                   help="save the refined taint scheme as JSON")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write a Markdown verification report")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="record a performance trace of the run (spans per "
                        "CEGAR phase and engine frame, SAT counters) and "
                        "write it to FILE")
    p.add_argument("--trace-format", choices=("jsonl", "chrome"),
                   default="chrome",
                   help="trace file format: chrome trace-event JSON "
                        "(load in Perfetto / about:tracing) or JSONL "
                        "(one event per line; repro trace summarize "
                        "reads both)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="persistent solve store: seed the run's cache "
                        "from DIR and persist every new verdict there "
                        "(crash-safe; a locked or corrupt store degrades "
                        "to an in-memory cache with a warning)")
    p.add_argument("--speculate", type=int, default=0, metavar="N",
                   help="speculative CEGAR: verify up to N candidate "
                        "schemes concurrently in supervised worker "
                        "processes, cancelling losers on the first "
                        "refinement signal; the result is bit-identical "
                        "to the sequential walk (0 disables).  With "
                        "--remote, candidates are dispatched to the "
                        "daemon instead of local workers")
    _add_remote_option(p)
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("analyze",
                       help="SAT-free dataflow analysis of a core's contract")
    _add_core_options(p)
    p.add_argument("--max-frames", type=int, default=64,
                   help="frame budget of the bounded ternary pass")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON (repro-analyze/v1)")
    _add_remote_option(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("leak-check", help="directed formal leak check")
    _add_core_options(p)
    p.add_argument("--gadget", choices=("spectre", "nested", "mul"),
                   default="spectre")
    p.add_argument("--budget", type=float, default=240.0)
    p.add_argument("--max-bound", type=int, default=12)
    p.add_argument("--trace", action="store_true",
                   help="print the observation trace of the counterexample")
    p.set_defaults(func=cmd_leak_check)

    p = sub.add_parser("overhead", help="CellIFT vs Compass overhead")
    _add_core_options(p)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--detail", action="store_true")
    p.set_defaults(func=cmd_overhead)

    p = sub.add_parser("simulate", help="run a workload on a core")
    p.add_argument("--core", choices=_core_names(), default="Rocket")
    p.add_argument("--workload", default="median")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--lanes", type=int, default=1, metavar="K",
                   help="run K data seeds bit-parallel (one lane per seed, "
                        "one simulation pass; seeds are SEED..SEED+K-1)")
    p.add_argument("--taint", action="store_true",
                   help="also run CellIFT-instrumented taint simulation")
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="record a performance trace (sim.lanes / "
                        "sim.steps_per_sec counters; repro trace summarize "
                        "reads it)")
    _add_remote_option(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("export", help="emit a core as Verilog or JSON")
    _add_core_options(p)
    p.add_argument("--format", choices=("verilog", "json"), default="verilog")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--no-shadow", action="store_true")
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("lint", help="static analysis over a core or netlist")
    p.add_argument("design", nargs="?", default=None,
                   help="core name or JSON netlist file")
    p.add_argument("--xlen", type=int, default=8)
    p.add_argument("--imem", type=int, default=8)
    p.add_argument("--dmem", type=int, default=8)
    p.add_argument("--secret-words", type=int, default=2)
    p.add_argument("--no-shadow", action="store_true",
                   help="lint the core without its ISA shadow machine")
    p.add_argument("--scheme", metavar="FILE", default=None,
                   help="also check a saved taint scheme against the design")
    p.add_argument("--no-semantic", action="store_true",
                   help="skip SAT-backed semantic rules")
    p.add_argument("--json", action="store_true",
                   help="emit the report as JSON (legacy compact form)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="output format; json is the stable machine "
                        "schema (repro-lint/v1)")
    p.add_argument("--disable", action="append", metavar="RULE",
                   help="disable a rule id (repeatable)")
    p.add_argument("--waive", action="append", metavar="RULE:GLOB",
                   help="waive findings of RULE on paths matching GLOB")
    p.add_argument("--waivers", metavar="FILE", default=None,
                   help="committed waivers file (default: nearest "
                        "lint-waivers.toml up from the working directory)")
    p.add_argument("--no-waivers", action="store_true",
                   help="ignore any committed lint-waivers.toml")
    p.add_argument("--min-severity", choices=("error", "warning", "info"),
                   default="info", help="lowest severity to print")
    p.add_argument("--selftest", action="store_true",
                   help="check the linter catches known-bad designs")
    _add_remote_option(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("trace", help="inspect performance traces")
    trace_sub = p.add_subparsers(dest="action", required=True)
    ps = trace_sub.add_parser("summarize",
                              help="top spans by self-time, counter totals")
    ps.add_argument("file", help="trace file (chrome or JSONL format)")
    ps.add_argument("--top", type=int, default=15,
                    help="number of span names to list")
    ps.set_defaults(func=cmd_trace)

    p = sub.add_parser("serve",
                       help="run the verification job daemon on a unix "
                            "socket (verify/lint/analyze/simulate jobs, "
                            "in-flight dedup, persistent solve store)")
    p.add_argument("--socket", metavar="PATH", required=True,
                   help="unix socket to listen on (replaced if stale)")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="persistent solve store backing every job's "
                        "cache; verdicts survive daemon restarts")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent job threads (each verification may "
                        "itself fan out into portfolio processes)")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-job wall-clock cap in seconds "
                        "(submissions may carry their own)")
    p.add_argument("--progress-interval", type=float, default=0.25,
                   help="seconds between progress samples streamed to "
                        "subscribed clients")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("tables", help="print Table 1 and Table 5")
    p.set_defaults(func=cmd_tables)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

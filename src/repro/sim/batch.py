"""Bit-parallel batch simulation: K testbenches per Python integer.

The scalar engines (:class:`~repro.sim.simulator.Simulator` and its
compiled twin) evaluate one stimulus at a time.  But every cell
semantics in :func:`repro.hdl.cells.evaluate_cell` is bitwise-definable,
and Python integers are arbitrary-width — so the design can be
*transposed*: instead of one W-bit value per signal, hold W integer
*bit-planes* per signal, where bit ``k`` of plane ``b`` is lane ``k``'s
value of design bit ``b``.  One pass over the plane program then
simulates K concurrent testbenches (GLIFT-style bitslicing, K up to the
native integer width and beyond).

The netlist is compiled **once** into a flat plane program — the
``FrameProgram`` idiom from :mod:`repro.formal.frameprog` applied to
two-value simulation: wiring ops (``BUF``/``SLICE``/``CONCAT``/
``ZEXT``/``SEXT``) become compile-time plane aliases that cost nothing
at runtime, constants fold into the code, and arithmetic lowers to
carry/borrow chains over planes.  The generated step function is plain
Python over a flat list of plane integers.

Semantics are pinned to the scalar engines by the differential test
battery (``tests/property/test_batch_differential.py``): bit-identical
per-lane signal values, waveforms, and error behavior — out-of-range or
missing inputs raise :class:`SimulationError` with the exact message the
scalar simulators produce for the first failing lane.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit
from repro.sim.simulator import SimulationError
from repro.sim.waveform import BatchWaveform, Waveform

#: Plane descriptors: a nonnegative int is a slot in the plane array;
#: the two negatives are the compile-time constants.
CONST0 = -1
CONST1 = -2

LaneInputs = Union[Mapping[str, int], Sequence[Mapping[str, int]], None]


class _PlaneCompiler:
    """Compiles a circuit's cells into bit-plane assignment code.

    ``desc_of[name]`` maps every signal to its LSB-first tuple of plane
    descriptors.  Emitted lines form the body of ``_step(p, M)`` where
    ``p`` is the plane array and ``M`` the all-lanes-one mask; within
    the lane mask, bitwise NOT is ``M ^ x``.
    """

    def __init__(self) -> None:
        self.n_slots = 0
        self.lines: List[str] = []
        self.desc_of: Dict[str, Tuple[int, ...]] = {}
        self._not_cache: Dict[int, int] = {}

    # -- slot / expression helpers -------------------------------------
    def alloc(self) -> int:
        slot = self.n_slots
        self.n_slots += 1
        return slot

    def ref(self, desc: int) -> str:
        if desc == CONST0:
            return "0"
        if desc == CONST1:
            return "M"
        return f"p[{desc}]"

    def emit(self, expr: str) -> int:
        slot = self.alloc()
        self.lines.append(f"    p[{slot}] = {expr}")
        return slot

    # -- descriptor-level boolean algebra ------------------------------
    def not_(self, desc: int) -> int:
        if desc == CONST0:
            return CONST1
        if desc == CONST1:
            return CONST0
        cached = self._not_cache.get(desc)
        if cached is None:
            cached = self.emit(f"M ^ p[{desc}]")
            self._not_cache[desc] = cached
            self._not_cache[cached] = desc
        return cached

    def and_(self, descs: Sequence[int]) -> int:
        live: List[int] = []
        seen = set()
        for d in descs:
            if d == CONST0:
                return CONST0
            if d == CONST1 or d in seen:
                continue
            seen.add(d)
            live.append(d)
        if not live:
            return CONST1
        if len(live) == 1:
            return live[0]
        return self.emit(" & ".join(self.ref(d) for d in live))

    def or_(self, descs: Sequence[int]) -> int:
        live: List[int] = []
        seen = set()
        for d in descs:
            if d == CONST1:
                return CONST1
            if d == CONST0 or d in seen:
                continue
            seen.add(d)
            live.append(d)
        if not live:
            return CONST0
        if len(live) == 1:
            return live[0]
        return self.emit(" | ".join(self.ref(d) for d in live))

    def xor_(self, descs: Sequence[int]) -> int:
        parity = 0
        counts: Dict[int, int] = {}
        order: List[int] = []
        for d in descs:
            if d == CONST1:
                parity ^= 1
                continue
            if d == CONST0:
                continue
            if d not in counts:
                counts[d] = 0
                order.append(d)
            counts[d] ^= 1
        live = [d for d in order if counts[d]]
        if not live:
            return CONST1 if parity else CONST0
        if len(live) == 1:
            return self.not_(live[0]) if parity else live[0]
        expr = " ^ ".join(self.ref(d) for d in live)
        if parity:
            expr = f"M ^ ({expr})"
        return self.emit(expr)

    def mux_(self, sel: int, a: int, b: int) -> int:
        """``sel ? a : b`` on one plane."""
        if sel == CONST1:
            return a
        if sel == CONST0:
            return b
        if a == b:
            return a
        nsel = self.not_(sel)
        return self.or_([self.and_([sel, a]), self.and_([nsel, b])])

    # -- word-level building blocks ------------------------------------
    def add_chain(
        self, a: Sequence[int], b: Sequence[int], carry: int
    ) -> Tuple[List[int], int]:
        """Ripple-carry add; returns (sum planes, carry out)."""
        sums: List[int] = []
        for ai, bi in zip(a, b):
            axb = self.xor_([ai, bi])
            sums.append(self.xor_([axb, carry]))
            carry = self.or_([self.and_([ai, bi]), self.and_([carry, axb])])
        return sums, carry

    def sub_chain(self, a: Sequence[int], b: Sequence[int]) -> Tuple[List[int], int]:
        """``a - b`` as ``a + ~b + 1``; returns (diff planes, carry out).

        The carry out is 1 iff no borrow occurred, i.e. ``a >= b``.
        """
        nb = [self.not_(d) for d in b]
        return self.add_chain(a, nb, CONST1)

    def ult(self, a: Sequence[int], b: Sequence[int]) -> int:
        _, carry = self.sub_chain(a, b)
        return self.not_(carry)

    def const_planes(self, value: int, width: int) -> List[int]:
        return [CONST1 if (value >> b) & 1 else CONST0 for b in range(width)]

    # -- cell compilation ----------------------------------------------
    def compile_cell(self, cell: Cell) -> None:
        op = cell.op
        out_w = cell.out.width
        if op is CellOp.CONST:
            planes = self.const_planes(cell.param("value"), out_w)
            self.desc_of[cell.out.name] = tuple(planes)
            return
        ins = [self.desc_of[s.name] for s in cell.ins]
        if op is CellOp.BUF:
            planes = list(ins[0])
        elif op is CellOp.NOT:
            planes = [self.not_(d) for d in ins[0]]
        elif op is CellOp.AND:
            planes = [self.and_([w[b] for w in ins]) for b in range(out_w)]
        elif op is CellOp.OR:
            planes = [self.or_([w[b] for w in ins]) for b in range(out_w)]
        elif op is CellOp.XOR:
            planes = [self.xor_([w[b] for w in ins]) for b in range(out_w)]
        elif op is CellOp.MUX:
            sel = ins[0][0]
            planes = [self.mux_(sel, a, b) for a, b in zip(ins[1], ins[2])]
        elif op is CellOp.ADD:
            planes, _ = self.add_chain(ins[0], ins[1], CONST0)
        elif op is CellOp.SUB:
            planes, _ = self.sub_chain(ins[0], ins[1])
        elif op is CellOp.EQ:
            planes = [self.and_([self.not_(self.xor_([a, b]))
                                 for a, b in zip(ins[0], ins[1])])]
        elif op is CellOp.NEQ:
            planes = [self.or_([self.xor_([a, b])
                                for a, b in zip(ins[0], ins[1])])]
        elif op is CellOp.ULT:
            planes = [self.ult(ins[0], ins[1])]
        elif op is CellOp.ULE:
            # a <= b  <=>  not (b < a)  <=>  carry out of b - a... inverted twice
            planes = [self.not_(self.ult(ins[1], ins[0]))]
        elif op in (CellOp.SHL, CellOp.SHR):
            planes = self._compile_shift(cell, ins, left=op is CellOp.SHL)
        elif op is CellOp.CONCAT:
            planes = []
            for word in reversed(ins):  # ins[0] is most significant
                planes.extend(word)
        elif op is CellOp.SLICE:
            lo, hi = cell.param("lo"), cell.param("hi")
            planes = list(ins[0][lo:hi + 1])
        elif op is CellOp.ZEXT:
            planes = list(ins[0]) + [CONST0] * (out_w - len(ins[0]))
        elif op is CellOp.SEXT:
            sign = ins[0][-1]
            planes = list(ins[0]) + [sign] * (out_w - len(ins[0]))
        elif op is CellOp.REDOR:
            planes = [self.or_(list(ins[0]))]
        elif op is CellOp.REDAND:
            planes = [self.and_(list(ins[0]))]
        elif op is CellOp.REDXOR:
            planes = [self.xor_(list(ins[0]))]
        else:  # pragma: no cover - exhaustive over CellOp
            raise SimulationError(f"cannot batch-compile op {op}")
        self.desc_of[cell.out.name] = tuple(planes)

    def _compile_shift(
        self, cell: Cell, ins: Sequence[Tuple[int, ...]], left: bool
    ) -> List[int]:
        """Barrel shifter over the shamt planes, zeroed when shamt >= W."""
        data, shamt = list(ins[0]), ins[1]
        width = cell.out.width
        acc = data
        for j, sel in enumerate(shamt):
            amount = 1 << j
            if amount >= width:
                break  # larger shamt bits only matter via the >=W predicate
            if sel == CONST0:
                continue
            if left:
                shifted = [CONST0] * amount + acc[:width - amount]
            else:
                shifted = acc[amount:] + [CONST0] * amount
            if sel == CONST1:
                acc = shifted
            else:
                acc = [self.mux_(sel, s, a) for s, a in zip(shifted, acc)]
        max_shamt = (1 << len(shamt)) - 1
        if max_shamt < width:
            return acc  # shamt can never reach W: no zero-out needed
        cmp_width = max(len(shamt), width.bit_length())
        padded = list(shamt) + [CONST0] * (cmp_width - len(shamt))
        in_range = self.ult(padded, self.const_planes(width, cmp_width))
        return [self.and_([in_range, d]) for d in acc]


class BatchProgram:
    """A circuit compiled once for bit-parallel simulation.

    Lane-count independent: the same program serves any K.  Cached on
    the circuit via :func:`batch_program_for` (circuits are immutable
    after construction, the same invariant ``frame_program_for`` uses).
    """

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        comp = _PlaneCompiler()
        # Register q planes live in dedicated, stable slots (written by
        # reset and the clock function, never by combinational code).
        self.reg_slots: List[Tuple[str, int, Tuple[int, ...]]] = []
        for reg in circuit.registers:
            slots = tuple(comp.alloc() for _ in range(reg.q.width))
            comp.desc_of[reg.q.name] = slots
            self.reg_slots.append((reg.q.name, reg.reset_value, slots))
        # Input planes likewise: the pack step writes them directly.
        self.input_slots: List[Tuple[str, int, Tuple[int, ...]]] = []
        for sig in circuit.inputs:
            slots = tuple(comp.alloc() for _ in range(sig.width))
            comp.desc_of[sig.name] = slots
            self.input_slots.append((sig.name, sig.width, slots))
        comp.lines.append("    pass")
        for cell in circuit.topo_cells():
            comp.compile_cell(cell)
        self.n_slots = comp.n_slots
        self.desc_of = comp.desc_of
        self.step_fn = self._compile_fn(
            "_batch_step", comp.lines, f"<batch-step:{circuit.name}>")
        self.clock_fn = self._compile_fn(
            "_batch_clock", self._clock_lines(comp), f"<batch-clock:{circuit.name}>")
        self.widths = {name: sig.width for name, sig in circuit.signals.items()}

    def _clock_lines(self, comp: _PlaneCompiler) -> List[str]:
        """``q <= d`` for every register bit, reads-before-writes.

        A single tuple assignment evaluates every d-plane before any q
        slot is written, so register-to-register chains clock correctly.
        """
        targets: List[str] = []
        sources: List[str] = []
        for reg in self.circuit.registers:
            d_descs = comp.desc_of[reg.d.name]
            for slot, desc in zip(comp.desc_of[reg.q.name], d_descs):
                targets.append(f"p[{slot}]")
                sources.append(comp.ref(desc))
        if not targets:
            return ["    pass"]
        return [f"    ({', '.join(targets)},) = ({', '.join(sources)},)"]

    @staticmethod
    def _compile_fn(name: str, body: List[str], filename: str) -> Callable:
        source = "\n".join([f"def {name}(p, M):"] + body)
        namespace: Dict[str, object] = {}
        exec(compile(source, filename, "exec"), namespace)
        return namespace[name]


def batch_program_for(circuit: Circuit) -> BatchProgram:
    """Memoized :class:`BatchProgram` for a circuit."""
    program = getattr(circuit, "_batch_program", None)
    if program is None:
        program = BatchProgram(circuit)
        try:
            circuit._batch_program = program
        except AttributeError:  # pragma: no cover
            pass
    return program


def _pack(values: Sequence[int], width: int) -> List[int]:
    """Transpose per-lane values into LSB-first bit planes."""
    planes = [0] * width
    for lane, value in enumerate(values):
        bit = 1 << lane
        b = 0
        while value:
            if value & 1:
                planes[b] |= bit
            value >>= 1
            b += 1
    return planes


class BatchSimulator:
    """Simulate ``lanes`` concurrent testbenches of one circuit.

    Mirrors the :class:`~repro.sim.simulator.Simulator` surface, lifted
    to lanes: ``step`` takes either one input frame (broadcast to every
    lane) or a sequence of ``lanes`` per-lane frames; ``peek`` reads one
    lane or all of them; ``run`` consumes per-lane stimulus sequences
    and returns a :class:`~repro.sim.waveform.BatchWaveform` whose
    ``lane(k)`` slices are bit-identical to scalar runs.

    Per-lane taint instrumentation comes for free: instrument the
    circuit first and each lane carries its own shadow-taint state.
    """

    def __init__(
        self,
        circuit: Circuit,
        lanes: int = 64,
        initial_states: Optional[Union[Mapping[str, int], Sequence[Mapping[str, int]]]] = None,
        tracer=None,
    ) -> None:
        if lanes < 1:
            raise SimulationError(f"lane count must be >= 1, got {lanes}")
        self.circuit = circuit
        self.lanes = lanes
        self.lane_mask = (1 << lanes) - 1
        self.program = batch_program_for(circuit)
        self.tracer = tracer
        self._planes: List[int] = [0] * self.program.n_slots
        self._reg_names = frozenset(name for name, _, _ in self.program.reg_slots)
        self._evaluated = False
        self._initial_states = self._per_lane_states(initial_states)
        self.cycle = 0
        self.reset()
        if tracer is not None:
            tracer.gauge("sim.lanes", lanes)

    # ------------------------------------------------------------------
    def _per_lane_states(
        self, states: Optional[Union[Mapping[str, int], Sequence[Mapping[str, int]]]]
    ) -> List[Dict[str, int]]:
        if states is None:
            return [{} for _ in range(self.lanes)]
        if isinstance(states, Mapping):
            return [dict(states) for _ in range(self.lanes)]
        states = list(states)
        if len(states) != self.lanes:
            raise SimulationError(
                f"got {len(states)} initial states for {self.lanes} lanes")
        return [dict(s) for s in states]

    def reset(
        self,
        initial_states: Optional[Union[Mapping[str, int], Sequence[Mapping[str, int]]]] = None,
    ) -> None:
        """Reset registers (reset values, overridden per lane)."""
        if initial_states is not None:
            self._initial_states = self._per_lane_states(initial_states)
        planes = self._planes
        for i in range(len(planes)):
            planes[i] = 0
        self.cycle = 0
        self._evaluated = False
        for name, reset_value, slots in self.program.reg_slots:
            mask = (1 << len(slots)) - 1
            values = [init.get(name, reset_value) & mask
                      for init in self._initial_states]
            for slot, plane in zip(slots, _pack(values, len(slots))):
                planes[slot] = plane

    # ------------------------------------------------------------------
    def _frames(self, inputs: LaneInputs) -> List[Mapping[str, int]]:
        if inputs is None:
            inputs = {}
        if isinstance(inputs, Mapping):
            return [inputs] * self.lanes
        frames = list(inputs)
        if len(frames) != self.lanes:
            raise SimulationError(
                f"got {len(frames)} input frames for {self.lanes} lanes")
        return frames

    def _evaluate_comb(self, inputs: LaneInputs) -> None:
        input_slots = self.program.input_slots
        planes = self._planes
        mask = self.lane_mask
        if inputs is None:
            inputs = {}
        if isinstance(inputs, Mapping):
            # Broadcast fast path: validate the one frame, splat each
            # input bit to all lanes at once.
            writes = []
            for name, width, slots in input_slots:
                if name not in inputs:
                    raise SimulationError(f"missing input {name!r}")
                value = inputs[name]
                if value < 0 or value >> width:
                    raise SimulationError(
                        f"input {name!r}: value {value} exceeds width {width}")
                writes.append((slots, [mask if (value >> b) & 1 else 0
                                       for b in range(width)]))
        else:
            frames = self._frames(inputs)
            # Fast path per input: gather + min/max bounds check run at
            # C speed; any failure falls back to the lane-by-lane scan
            # that raises the first failing lane's exact scalar error.
            writes = []
            try:
                for name, width, slots in input_slots:
                    values = [f[name] for f in frames]
                    if min(values) < 0 or max(values) >> width:
                        self._raise_invalid(frames)
                    writes.append((slots, _pack(values, width)))
            except KeyError:
                self._raise_invalid(frames)
        # All lanes validated: only now touch simulator state.
        for slots, value_planes in writes:
            for slot, plane in zip(slots, value_planes):
                planes[slot] = plane
        self.program.step_fn(planes, mask)
        self._evaluated = True

    def _raise_invalid(self, frames: Sequence[Mapping[str, int]]) -> None:
        # Lane-by-lane in scalar input order, so the raised error is
        # what the first failing lane's scalar run would raise.
        for frame in frames:
            for name, width, _slots in self.program.input_slots:
                if name not in frame:
                    raise SimulationError(f"missing input {name!r}")
                value = frame[name]
                if not (0 <= value < (1 << width)):
                    raise SimulationError(
                        f"input {name!r}: value {value} exceeds width {width}")
        raise SimulationError("invalid input frame")  # pragma: no cover

    def _clock(self) -> None:
        self.program.clock_fn(self._planes, self.lane_mask)

    def step(self, inputs: LaneInputs = None) -> List[Dict[str, int]]:
        """Advance all lanes one clock cycle; returns per-lane outputs."""
        self._evaluate_comb(inputs)
        out_planes = {sig.name: self.peek_planes(sig.name)
                      for sig in self.circuit.outputs}
        outputs = [
            {name: self._unpack(planes, lane)
             for name, planes in out_planes.items()}
            for lane in range(self.lanes)
        ]
        self._finish_step()
        return outputs

    def advance(self, inputs: LaneInputs = None) -> None:
        """:meth:`step` without materializing per-lane output dicts.

        Identical state evolution; for K-hungry loops that poll a couple
        of signals via :meth:`peek_planes` instead of reading outputs.
        """
        self._evaluate_comb(inputs)
        self._finish_step()

    def _finish_step(self) -> None:
        self._clock()
        self.cycle += 1
        if self.tracer is not None:
            self.tracer.count("sim.steps")
            self.tracer.count("sim.lane_steps", self.lanes)

    # ------------------------------------------------------------------
    def _descs(self, signal_name: str) -> Tuple[int, ...]:
        descs = self.program.desc_of.get(signal_name)
        if descs is None or (not self._evaluated
                             and signal_name not in self._reg_names):
            raise SimulationError(f"signal {signal_name!r} has no value yet")
        return descs

    def peek_planes(self, signal_name: str) -> Tuple[int, ...]:
        """LSB-first bit planes of a signal across all lanes."""
        planes = self._planes
        out = []
        for d in self._descs(signal_name):
            if d == CONST0:
                out.append(0)
            elif d == CONST1:
                out.append(self.lane_mask)
            else:
                out.append(planes[d])
        return tuple(out)

    def peek(self, signal_name: str, lane: Optional[int] = None):
        """Value of a signal: one lane (int) or all lanes (list)."""
        planes = self.peek_planes(signal_name)
        if lane is None:
            return [self._unpack(planes, k) for k in range(self.lanes)]
        if not (0 <= lane < self.lanes):
            raise SimulationError(f"lane {lane} outside [0, {self.lanes})")
        return self._unpack(planes, lane)

    @staticmethod
    def _unpack(planes: Sequence[int], lane: int) -> int:
        value = 0
        for b, plane in enumerate(planes):
            value |= ((plane >> lane) & 1) << b
        return value

    def snapshot(self, lane: int) -> Dict[str, int]:
        """All signal values of one lane (post-evaluation)."""
        return {name: self.peek(name, lane) for name in self.program.desc_of}

    def state(self, lane: Optional[int] = None):
        """Register values: one lane's dict, or a per-lane list."""
        names = [name for name, _, _ in self.program.reg_slots]
        if lane is not None:
            return {name: self.peek(name, lane) for name in names}
        per_name = {name: self.peek(name) for name in names}
        return [{name: per_name[name][k] for name in names}
                for k in range(self.lanes)]

    # ------------------------------------------------------------------
    def run(
        self,
        stimuli,
        record: Optional[Sequence[str]] = None,
    ) -> BatchWaveform:
        """Apply stimulus to every lane, recording a batch waveform.

        ``stimuli`` is either a scalar-style sequence of input frames
        (broadcast to every lane) or a sequence of ``lanes`` per-lane
        stimulus sequences.  Ragged per-lane lengths are rejected up
        front, before any lane steps.
        """
        per_cycle = self._stimulus_frames(stimuli)
        names = list(record) if record is not None else list(self.circuit.signals)
        waveform = BatchWaveform(names, self.lanes,
                                 {n: self.program.widths[n] for n in names
                                  if n in self.program.widths})
        import time as _time

        started = _time.monotonic()
        for frames in per_cycle:
            self._evaluate_comb(frames)
            waveform.record({name: self.peek_planes(name) for name in names})
            self._clock()
            self.cycle += 1
        if self.tracer is not None:
            elapsed = _time.monotonic() - started
            steps = len(per_cycle)
            self.tracer.count("sim.steps", steps)
            self.tracer.count("sim.lane_steps", steps * self.lanes)
            if elapsed > 0:
                self.tracer.gauge("sim.steps_per_sec",
                                  steps * self.lanes / elapsed)
        return waveform

    def _stimulus_frames(self, stimuli) -> List[LaneInputs]:
        stimuli = list(stimuli)
        if not stimuli:
            return []
        if isinstance(stimuli[0], Mapping):
            return stimuli  # scalar-style: broadcast each frame
        per_lane = [list(s) for s in stimuli]
        if len(per_lane) != self.lanes:
            raise SimulationError(
                f"got {len(per_lane)} per-lane stimuli for {self.lanes} lanes")
        length = len(per_lane[0])
        for k, frames in enumerate(per_lane):
            if len(frames) != length:
                raise SimulationError(
                    f"ragged stimulus: lane {k} has {len(frames)} frames, "
                    f"lane 0 has {length}")
        return [[per_lane[k][t] for k in range(self.lanes)]
                for t in range(length)]

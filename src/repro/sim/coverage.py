"""Toggle coverage collection for simulation-based testing.

When taint analysis is used for *testing* (the paper's simulation
scenario), coverage tells you how much of the design the stimulus
exercised — a taint bit that never toggles is a vacuous check.  This
collector tracks, per signal, how many bits ever held 0 and ever held
1 across a run, and summarizes per module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.hdl.circuit import Circuit
from repro.sim.simulator import Simulator


@dataclass
class SignalCoverage:
    """Bit-level toggle record for one signal."""

    name: str
    width: int
    seen_zero: int = 0   # bit mask of positions observed at 0
    seen_one: int = 0    # bit mask of positions observed at 1

    def observe(self, value: int) -> None:
        self.seen_one |= value
        self.seen_zero |= ~value & ((1 << self.width) - 1)

    def observe_planes(self, planes, lane_mask: int) -> None:
        """Union-accumulate one batched observation across all lanes.

        ``planes`` is the LSB-first bit-plane tuple from a
        :class:`~repro.sim.batch.BatchSimulator`: design bit ``b`` was
        observed at 1 in *some* lane iff plane ``b`` is nonzero, and at
        0 in some lane iff plane ``b`` is not the all-lanes mask — so
        batched coverage is exactly the union of the per-lane runs.
        """
        one = zero = 0
        for b, plane in enumerate(planes):
            if plane:
                one |= 1 << b
            if plane != lane_mask:
                zero |= 1 << b
        self.seen_one |= one
        self.seen_zero |= zero

    @property
    def covered_bits(self) -> int:
        """Bits that were observed at both 0 and 1."""
        return bin(self.seen_zero & self.seen_one).count("1")

    @property
    def coverage(self) -> float:
        return self.covered_bits / self.width


@dataclass
class CoverageReport:
    signals: Dict[str, SignalCoverage]

    @property
    def total_bits(self) -> int:
        return sum(s.width for s in self.signals.values())

    @property
    def covered_bits(self) -> int:
        return sum(s.covered_bits for s in self.signals.values())

    @property
    def coverage(self) -> float:
        total = self.total_bits
        return self.covered_bits / total if total else 1.0

    def per_module(self) -> Dict[str, float]:
        by_module: Dict[str, List[SignalCoverage]] = {}
        for cov in self.signals.values():
            module = cov.name.rsplit(".", 1)[0] if "." in cov.name else "(top)"
            by_module.setdefault(module, []).append(cov)
        return {
            module: sum(c.covered_bits for c in covs) / sum(c.width for c in covs)
            for module, covs in sorted(by_module.items())
        }

    def uncovered(self, limit: int = 20) -> List[str]:
        """Signals with completely stuck bits (never toggled)."""
        stuck = [c.name for c in self.signals.values() if c.coverage < 1.0]
        return sorted(stuck)[:limit]

    def summary(self) -> str:
        return (
            f"toggle coverage: {self.covered_bits}/{self.total_bits} bits "
            f"({self.coverage * 100:.1f}%)"
        )


class CoverageCollector:
    """Wraps a simulator and records toggle coverage as it steps.

    Works with the scalar engines and, lane-aware, with
    :class:`~repro.sim.batch.BatchSimulator`: a batched step
    accumulates the *union* of every lane's toggles, so coverage from K
    batched lanes equals the union of K scalar runs.
    """

    def __init__(self, simulator, signals: Optional[Iterable[str]] = None) -> None:
        self.simulator = simulator
        circuit = simulator.circuit
        names = list(signals) if signals is not None else [
            reg.q.name for reg in circuit.registers
        ]
        self._coverage = {
            name: SignalCoverage(name, circuit.signal(name).width) for name in names
        }
        self._batched = hasattr(simulator, "peek_planes")

    def step(self, inputs: Optional[Mapping[str, int]] = None):
        outputs = self.simulator.step(inputs)
        if self._batched:
            lane_mask = self.simulator.lane_mask
            for cov in self._coverage.values():
                cov.observe_planes(self.simulator.peek_planes(cov.name), lane_mask)
        else:
            for cov in self._coverage.values():
                cov.observe(self.simulator.peek(cov.name))
        return outputs

    def report(self) -> CoverageReport:
        return CoverageReport(dict(self._coverage))

"""Toggle coverage collection for simulation-based testing.

When taint analysis is used for *testing* (the paper's simulation
scenario), coverage tells you how much of the design the stimulus
exercised — a taint bit that never toggles is a vacuous check.  This
collector tracks, per signal, how many bits ever held 0 and ever held
1 across a run, and summarizes per module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.hdl.circuit import Circuit
from repro.sim.simulator import Simulator


@dataclass
class SignalCoverage:
    """Bit-level toggle record for one signal."""

    name: str
    width: int
    seen_zero: int = 0   # bit mask of positions observed at 0
    seen_one: int = 0    # bit mask of positions observed at 1

    def observe(self, value: int) -> None:
        self.seen_one |= value
        self.seen_zero |= ~value & ((1 << self.width) - 1)

    @property
    def covered_bits(self) -> int:
        """Bits that were observed at both 0 and 1."""
        return bin(self.seen_zero & self.seen_one).count("1")

    @property
    def coverage(self) -> float:
        return self.covered_bits / self.width


@dataclass
class CoverageReport:
    signals: Dict[str, SignalCoverage]

    @property
    def total_bits(self) -> int:
        return sum(s.width for s in self.signals.values())

    @property
    def covered_bits(self) -> int:
        return sum(s.covered_bits for s in self.signals.values())

    @property
    def coverage(self) -> float:
        total = self.total_bits
        return self.covered_bits / total if total else 1.0

    def per_module(self) -> Dict[str, float]:
        by_module: Dict[str, List[SignalCoverage]] = {}
        for cov in self.signals.values():
            module = cov.name.rsplit(".", 1)[0] if "." in cov.name else "(top)"
            by_module.setdefault(module, []).append(cov)
        return {
            module: sum(c.covered_bits for c in covs) / sum(c.width for c in covs)
            for module, covs in sorted(by_module.items())
        }

    def uncovered(self, limit: int = 20) -> List[str]:
        """Signals with completely stuck bits (never toggled)."""
        stuck = [c.name for c in self.signals.values() if c.coverage < 1.0]
        return sorted(stuck)[:limit]

    def summary(self) -> str:
        return (
            f"toggle coverage: {self.covered_bits}/{self.total_bits} bits "
            f"({self.coverage * 100:.1f}%)"
        )


class CoverageCollector:
    """Wraps a simulator and records toggle coverage as it steps."""

    def __init__(self, simulator: Simulator, signals: Optional[Iterable[str]] = None) -> None:
        self.simulator = simulator
        circuit = simulator.circuit
        names = list(signals) if signals is not None else [
            reg.q.name for reg in circuit.registers
        ]
        self._coverage = {
            name: SignalCoverage(name, circuit.signal(name).width) for name in names
        }

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        outputs = self.simulator.step(inputs)
        for cov in self._coverage.values():
            cov.observe(self.simulator.peek(cov.name))
        return outputs

    def report(self) -> CoverageReport:
        return CoverageReport(dict(self._coverage))

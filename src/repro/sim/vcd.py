"""Minimal VCD (Value Change Dump) writer for waveforms.

Lets users inspect counterexample traces and simulation runs in any
standard waveform viewer (GTKWave etc.).
"""

from __future__ import annotations

import string
from typing import Dict, Iterable, Optional, TextIO

from repro.hdl.circuit import Circuit
from repro.sim.waveform import Waveform

_ID_ALPHABET = string.ascii_letters + string.digits + "!#$%&'()*+,-./:;<=>?@[]^_`{|}~"


def _identifier(index: int) -> str:
    """Short printable VCD identifier for the index-th signal."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        chars.append(_ID_ALPHABET[rem])
    return "".join(chars)


def write_vcd(
    waveform: Waveform,
    circuit: Circuit,
    stream: TextIO,
    signals: Optional[Iterable[str]] = None,
    timescale: str = "1ns",
) -> None:
    """Write ``waveform`` as VCD text to ``stream``.

    Signals are grouped into scopes following their hierarchical names.
    ``signals`` selects what to dump: ``None`` means every signal the
    waveform tracks (silently restricted to those the circuit knows, so
    "all" stays best-effort), while an explicit selection — including an
    empty one — is honored exactly, raising :class:`ValueError` on
    names the waveform or the circuit does not know.
    """
    if signals is None:
        names = [n for n in waveform.signal_names if n in circuit.signals]
    else:
        names = list(signals)
        unknown = [n for n in names
                   if not waveform.has_signal(n) or n not in circuit.signals]
        if unknown:
            raise ValueError(
                "cannot write VCD for unknown signal(s): "
                + ", ".join(repr(n) for n in sorted(unknown))
            )
    widths = {n: circuit.signal(n).width for n in names}
    ids = {name: _identifier(i) for i, name in enumerate(names)}

    stream.write(f"$timescale {timescale} $end\n")
    stream.write(f"$scope module {circuit.name.replace(' ', '_')} $end\n")
    for name in names:
        safe = name.replace(" ", "_")
        stream.write(f"$var wire {widths[name]} {ids[name]} {safe} $end\n")
    stream.write("$upscope $end\n$enddefinitions $end\n")

    previous: Dict[str, Optional[int]] = {name: None for name in names}
    for cycle in range(waveform.length):
        stream.write(f"#{cycle}\n")
        for name in names:
            value = waveform.value(name, cycle)
            if value == previous[name]:
                continue
            previous[name] = value
            if widths[name] == 1:
                stream.write(f"{value}{ids[name]}\n")
            else:
                stream.write(f"b{value:b} {ids[name]}\n")
    stream.write(f"#{waveform.length}\n")


def write_vcd_file(
    waveform: Waveform,
    circuit: Circuit,
    path: str,
    signals: Optional[Iterable[str]] = None,
    timescale: str = "1ns",
) -> None:
    """Write ``waveform`` as a VCD file atomically (tmp-then-rename).

    Unknown-signal validation runs before anything touches the disk and
    a crash mid-dump never leaves a truncated file under ``path``.
    """
    from repro.ioutil import atomic_write

    with atomic_write(path) as stream:
        write_vcd(waveform, circuit, stream, signals=signals, timescale=timescale)

"""Human-readable rendering of waveforms and counterexample traces.

Turns a counterexample into the kind of table an RTL engineer actually
reads: one row per signal, one column per cycle, with decoded
instructions for program counters / instruction words when a core is
involved.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.sim.waveform import Waveform


def format_waveform(
    waveform: Waveform,
    signals: Sequence[str],
    start: int = 0,
    end: Optional[int] = None,
    radix: str = "dec",
) -> str:
    """Render selected signals over a cycle range as an aligned table."""
    end = waveform.length if end is None else min(end, waveform.length)
    cycles = list(range(start, end))

    def fmt(value: int) -> str:
        if radix == "hex":
            return f"{value:x}"
        if radix == "bin":
            return f"{value:b}"
        return str(value)

    name_width = max((len(s) for s in signals), default=5)
    rows = []
    cell_widths = []
    for cycle in cycles:
        width = max(
            [len(fmt(waveform.value(sig, cycle))) for sig in signals]
            + [len(str(cycle))]
        )
        cell_widths.append(width)
    header = " " * (name_width + 2) + "  ".join(
        f"{cycle:>{w}}" for cycle, w in zip(cycles, cell_widths)
    )
    rows.append(header)
    rows.append("-" * len(header))
    for sig in signals:
        cells = "  ".join(
            f"{fmt(waveform.value(sig, cycle)):>{w}}"
            for cycle, w in zip(cycles, cell_widths)
        )
        rows.append(f"{sig:<{name_width}}  {cells}")
    return "\n".join(rows)


def format_counterexample(
    cex,
    circuit,
    signals: Optional[Sequence[str]] = None,
    radix: str = "dec",
) -> str:
    """Replay a counterexample and render the interesting signals.

    Defaults to the circuit outputs plus any non-zero initial-state
    registers (usually the secret and the program).
    """
    names = list(signals) if signals is not None else [
        sig.name for sig in circuit.outputs
    ]
    waveform = cex.replay(circuit, record=names)
    lines = [f"counterexample: {cex.length} cycles"]
    interesting_init = {
        name: value for name, value in sorted(cex.initial_state.items())
        if value != 0
    }
    if interesting_init:
        lines.append("non-zero initial state:")
        for name, value in list(interesting_init.items())[:12]:
            lines.append(f"  {name} = {value}")
        if len(interesting_init) > 12:
            lines.append(f"  ... and {len(interesting_init) - 12} more")
    lines.append(format_waveform(waveform, names, radix=radix))
    return "\n".join(lines)


def decode_program_of(cex, core) -> List[str]:
    """Disassemble the instruction memory a counterexample chose.

    Only meaningful for core counterexamples where the program was
    universally quantified: shows the program the solver synthesized.
    """
    from repro.cores.isa import decode

    out = []
    for index, word_name in enumerate(core.imem_words):
        word = cex.initial_state.get(word_name)
        if word is None:
            continue
        out.append(f"{index:3d}: {str(decode(word)):<24} ; 0x{word:04x}")
    return out

"""Cycle-accurate simulation of circuits.

Two engines share one semantics (defined by
:func:`repro.hdl.cells.evaluate_cell`):

- :class:`Simulator` — a straightforward interpreter; the reference
  implementation used by unit tests and the CEGAR loop.
- :class:`CompiledSimulator` — generates a Python step function with
  ``compile``/``exec`` for the Figure 6 simulation benchmarks; ~5-15x
  faster on processor-sized circuits, bit-for-bit identical results.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.hdl.cells import Cell, CellOp, evaluate_cell
from repro.hdl.circuit import Circuit
from repro.sim.waveform import Waveform


class SimulationError(RuntimeError):
    """Raised on inconsistent stimulus (missing inputs, bad widths)."""


class Simulator:
    """Reference interpreter for a circuit.

    Usage::

        sim = Simulator(circuit)
        sim.reset()
        outs = sim.step({"in_a": 3, "in_b": 1})
        value = sim.peek("some.internal.signal")
    """

    def __init__(self, circuit: Circuit, initial_state: Optional[Mapping[str, int]] = None) -> None:
        circuit.validate()
        self.circuit = circuit
        self._order: List[Cell] = circuit.topo_cells()
        self._values: Dict[str, int] = {}
        self._initial_state = dict(initial_state or {})
        self.cycle = 0
        self.reset()

    # ------------------------------------------------------------------
    def reset(self, initial_state: Optional[Mapping[str, int]] = None) -> None:
        """Reset registers (reset values, overridden by ``initial_state``)."""
        if initial_state is not None:
            self._initial_state = dict(initial_state)
        self._values.clear()
        self.cycle = 0
        for reg in self.circuit.registers:
            value = self._initial_state.get(reg.q.name, reg.reset_value)
            self._values[reg.q.name] = value & reg.q.mask

    def step(self, inputs: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle; returns the circuit outputs."""
        self._evaluate_comb(inputs or {})
        outputs = {sig.name: self._values[sig.name] for sig in self.circuit.outputs}
        self._clock()
        self.cycle += 1
        return outputs

    def peek(self, signal_name: str) -> int:
        """Value of any signal as of the last evaluation."""
        try:
            return self._values[signal_name]
        except KeyError:
            raise SimulationError(f"signal {signal_name!r} has no value yet") from None

    def snapshot(self) -> Dict[str, int]:
        """All current signal values (post-evaluation)."""
        return dict(self._values)

    def state(self) -> Dict[str, int]:
        """Current register values."""
        return {reg.q.name: self._values[reg.q.name] for reg in self.circuit.registers}

    # ------------------------------------------------------------------
    def _evaluate_comb(self, inputs: Mapping[str, int]) -> None:
        for sig in self.circuit.inputs:
            if sig.name not in inputs:
                raise SimulationError(f"missing input {sig.name!r}")
            value = inputs[sig.name]
            if not (0 <= value <= sig.mask):
                raise SimulationError(f"input {sig.name!r}: value {value} exceeds width {sig.width}")
            self._values[sig.name] = value
        values = self._values
        for cell in self._order:
            values[cell.out.name] = evaluate_cell(cell, [values[s.name] for s in cell.ins])

    def _clock(self) -> None:
        values = self._values
        next_values = [(reg.q.name, values[reg.d.name]) for reg in self.circuit.registers]
        for name, value in next_values:
            values[name] = value

    # ------------------------------------------------------------------
    def run(
        self,
        stimulus: Sequence[Mapping[str, int]],
        record: Optional[Iterable[str]] = None,
    ) -> Waveform:
        """Apply a stimulus sequence, recording a waveform.

        ``record`` selects signals to trace (default: all signals).
        The waveform records pre-edge values, so register traces show
        the value each register held *during* the cycle.
        """
        names = list(record) if record is not None else list(self.circuit.signals)
        waveform = Waveform(names)
        for frame in stimulus:
            self._evaluate_comb(frame)
            waveform.record({name: self._values[name] for name in names})
            self._clock()
            self.cycle += 1
        return waveform


class CompiledSimulator(Simulator):
    """Simulator with a codegen'd combinational step function."""

    def __init__(self, circuit: Circuit, initial_state: Optional[Mapping[str, int]] = None) -> None:
        self._step_fn = None
        super().__init__(circuit, initial_state)
        self._step_fn = _compile_step(circuit, self._order)

    def _evaluate_comb(self, inputs: Mapping[str, int]) -> None:
        if self._step_fn is None:
            super()._evaluate_comb(inputs)
            return
        for sig in self.circuit.inputs:
            if sig.name not in inputs:
                raise SimulationError(f"missing input {sig.name!r}")
            value = inputs[sig.name]
            if not (0 <= value <= sig.mask):
                raise SimulationError(f"input {sig.name!r}: value {value} exceeds width {sig.width}")
            self._values[sig.name] = value
        self._step_fn(self._values)


def _compile_step(circuit: Circuit, order: List[Cell]):
    """Generate ``def _step(v): ...`` computing all combinational values."""
    lines = ["def _step(v):"]
    if not order:
        lines.append("    pass")

    def ref(name: str) -> str:
        return f"v[{name!r}]"

    for cell in order:
        out = ref(cell.out.name)
        ins = [ref(s.name) for s in cell.ins]
        mask = cell.out.mask
        op = cell.op
        if op is CellOp.CONST:
            expr = str(cell.param("value"))
        elif op is CellOp.BUF:
            expr = ins[0]
        elif op is CellOp.NOT:
            expr = f"(~{ins[0]}) & {mask}"
        elif op is CellOp.AND:
            expr = " & ".join(ins)
        elif op is CellOp.OR:
            expr = " | ".join(ins)
        elif op is CellOp.XOR:
            expr = " ^ ".join(ins)
        elif op is CellOp.MUX:
            expr = f"{ins[1]} if {ins[0]} else {ins[2]}"
        elif op is CellOp.ADD:
            expr = f"({ins[0]} + {ins[1]}) & {mask}"
        elif op is CellOp.SUB:
            expr = f"({ins[0]} - {ins[1]}) & {mask}"
        elif op is CellOp.EQ:
            expr = f"1 if {ins[0]} == {ins[1]} else 0"
        elif op is CellOp.NEQ:
            expr = f"1 if {ins[0]} != {ins[1]} else 0"
        elif op is CellOp.ULT:
            expr = f"1 if {ins[0]} < {ins[1]} else 0"
        elif op is CellOp.ULE:
            expr = f"1 if {ins[0]} <= {ins[1]} else 0"
        elif op is CellOp.SHL:
            expr = f"({ins[0]} << {ins[1]}) & {mask} if {ins[1]} < {cell.out.width} else 0"
        elif op is CellOp.SHR:
            expr = f"({ins[0]} >> {ins[1]}) if {ins[1]} < {cell.out.width} else 0"
        elif op is CellOp.CONCAT:
            parts = []
            shift = 0
            for sig, in_ref in zip(reversed(cell.ins), reversed(ins)):
                part = f"(({in_ref} & {sig.mask}) << {shift})" if shift else f"({in_ref} & {sig.mask})"
                parts.append(part)
                shift += sig.width
            expr = " | ".join(parts)
        elif op is CellOp.SLICE:
            lo, hi = cell.param("lo"), cell.param("hi")
            expr = f"({ins[0]} >> {lo}) & {(1 << (hi - lo + 1)) - 1}"
        elif op is CellOp.ZEXT:
            expr = ins[0]
        elif op is CellOp.SEXT:
            in_w = cell.ins[0].width
            high = mask & ~((1 << in_w) - 1)
            expr = f"{ins[0]} | {high} if {ins[0]} >> {in_w - 1} else {ins[0]}"
        elif op is CellOp.REDOR:
            expr = f"1 if {ins[0]} else 0"
        elif op is CellOp.REDAND:
            expr = f"1 if {ins[0]} == {cell.ins[0].mask} else 0"
        elif op is CellOp.REDXOR:
            expr = f"bin({ins[0]}).count('1') & 1"
        else:  # pragma: no cover
            raise ValueError(f"cannot compile op {op}")
        lines.append(f"    {out} = {expr}")
    namespace: Dict[str, object] = {}
    exec(compile("\n".join(lines), f"<compiled:{circuit.name}>", "exec"), namespace)
    return namespace["_step"]


def make_simulator(circuit: Circuit, compiled: bool = False, **kwargs) -> Simulator:
    """Factory: pick the interpreter or the compiled engine."""
    cls = CompiledSimulator if compiled else Simulator
    return cls(circuit, **kwargs)

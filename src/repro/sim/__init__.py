"""Cycle-accurate two-value simulation of circuits.

Plays the role Verilator plays in the paper: deterministic simulation of
(instrumented) designs, with waveform capture for counterexample replay
and VCD export for debugging.  :class:`BatchSimulator` runs K
testbenches bit-parallel in one pass (see ``docs/simulation.md``).
"""

from repro.sim.simulator import Simulator, CompiledSimulator, SimulationError, make_simulator
from repro.sim.batch import BatchSimulator, BatchProgram, batch_program_for
from repro.sim.waveform import Waveform, BatchWaveform
from repro.sim.vcd import write_vcd, write_vcd_file

__all__ = [
    "Simulator", "CompiledSimulator", "SimulationError", "make_simulator",
    "BatchSimulator", "BatchProgram", "batch_program_for",
    "Waveform", "BatchWaveform", "write_vcd", "write_vcd_file",
]

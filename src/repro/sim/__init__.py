"""Cycle-accurate two-value simulation of circuits.

Plays the role Verilator plays in the paper: deterministic simulation of
(instrumented) designs, with waveform capture for counterexample replay
and VCD export for debugging.
"""

from repro.sim.simulator import Simulator, CompiledSimulator, make_simulator
from repro.sim.waveform import Waveform
from repro.sim.vcd import write_vcd, write_vcd_file

__all__ = ["Simulator", "CompiledSimulator", "make_simulator", "Waveform", "write_vcd", "write_vcd_file"]

"""Chisel-like builder eDSL for constructing circuits.

The builder produces a flattened :class:`~repro.hdl.circuit.Circuit`
directly, while recording the module hierarchy through nested
:meth:`ModuleBuilder.scope` contexts.  Every signal and cell created
inside a scope carries that scope's hierarchical path, which is what the
module-level taint granularity of the paper groups on.

Example::

    b = ModuleBuilder("mux_chain")
    sel = b.input("sel", 1)
    a = b.input("a", 8)
    bb = b.input("b", 8)
    with b.scope("stage0"):
        r = b.reg("r", 8)
        r.drive(b.mux(sel, a, bb))
    b.output("o", r)
    circuit = b.build()
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, CircuitError, Register
from repro.hdl.signals import Signal, SignalKind

ValueLike = Union["Value", int]


class Value:
    """A signal handle with operator overloading.

    Arithmetic and bitwise operators build cells; comparisons are
    provided as methods (``eq``/``ne``/``ult``/``ule``) so that Python
    ``==`` keeps its identity semantics for container use.
    """

    __slots__ = ("builder", "signal")

    def __init__(self, builder: "ModuleBuilder", signal: Signal) -> None:
        self.builder = builder
        self.signal = signal

    # -- introspection --------------------------------------------------
    @property
    def width(self) -> int:
        return self.signal.width

    @property
    def name(self) -> str:
        return self.signal.name

    def __repr__(self) -> str:
        return f"Value({self.signal})"

    def __bool__(self) -> bool:
        raise TypeError(
            "hardware Value cannot be used as a Python boolean; "
            "use .eq()/.ne() and mux() to build hardware conditions"
        )

    # -- coercion -------------------------------------------------------
    def _coerce(self, other: ValueLike, width: Optional[int] = None) -> "Value":
        if isinstance(other, Value):
            return other
        return self.builder.const(other, width if width is not None else self.width)

    # -- bitwise --------------------------------------------------------
    def __invert__(self) -> "Value":
        return self.builder._emit(CellOp.NOT, self.width, (self,))

    def __and__(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.AND, self.width, (self, self._coerce(other)))

    def __rand__(self, other: ValueLike) -> "Value":
        return self.__and__(other)

    def __or__(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.OR, self.width, (self, self._coerce(other)))

    def __ror__(self, other: ValueLike) -> "Value":
        return self.__or__(other)

    def __xor__(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.XOR, self.width, (self, self._coerce(other)))

    def __rxor__(self, other: ValueLike) -> "Value":
        return self.__xor__(other)

    # -- arithmetic -----------------------------------------------------
    def __add__(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.ADD, self.width, (self, self._coerce(other)))

    def __sub__(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.SUB, self.width, (self, self._coerce(other)))

    def __lshift__(self, shamt: ValueLike) -> "Value":
        sh = self._coerce(shamt, width=max(1, (self.width - 1).bit_length()))
        return self.builder._emit(CellOp.SHL, self.width, (self, sh))

    def __rshift__(self, shamt: ValueLike) -> "Value":
        sh = self._coerce(shamt, width=max(1, (self.width - 1).bit_length()))
        return self.builder._emit(CellOp.SHR, self.width, (self, sh))

    # -- comparisons (methods, 1-bit results) ---------------------------
    def eq(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.EQ, 1, (self, self._coerce(other)))

    def ne(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.NEQ, 1, (self, self._coerce(other)))

    def ult(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.ULT, 1, (self, self._coerce(other)))

    def ule(self, other: ValueLike) -> "Value":
        return self.builder._emit(CellOp.ULE, 1, (self, self._coerce(other)))

    def uge(self, other: ValueLike) -> "Value":
        return ~self.ult(other)

    def ugt(self, other: ValueLike) -> "Value":
        return ~self.ule(other)

    # -- bit selection / resizing ---------------------------------------
    def __getitem__(self, index: Union[int, slice]) -> "Value":
        if isinstance(index, int):
            lo = hi = index if index >= 0 else self.width + index
        else:
            if index.step is not None:
                raise ValueError("bit slices do not support a step")
            # verilog-style v[hi:lo], both inclusive
            hi = index.start if index.start is not None else self.width - 1
            lo = index.stop if index.stop is not None else 0
        if lo > hi:
            raise ValueError(f"slice [{hi}:{lo}] has hi < lo")
        return self.builder._emit(
            CellOp.SLICE, hi - lo + 1, (self,), params=(("lo", lo), ("hi", hi))
        )

    def zext(self, width: int) -> "Value":
        if width == self.width:
            return self
        return self.builder._emit(CellOp.ZEXT, width, (self,))

    def sext(self, width: int) -> "Value":
        if width == self.width:
            return self
        return self.builder._emit(CellOp.SEXT, width, (self,))

    def trunc(self, width: int) -> "Value":
        if width == self.width:
            return self
        return self[width - 1:0]

    # -- reductions -----------------------------------------------------
    def redor(self) -> "Value":
        if self.width == 1:
            return self
        return self.builder._emit(CellOp.REDOR, 1, (self,))

    def redand(self) -> "Value":
        if self.width == 1:
            return self
        return self.builder._emit(CellOp.REDAND, 1, (self,))

    def redxor(self) -> "Value":
        if self.width == 1:
            return self
        return self.builder._emit(CellOp.REDXOR, 1, (self,))


class RegValue(Value):
    """A register's current-value handle; drive its next value once."""

    __slots__ = ("_driven",)

    def __init__(self, builder: "ModuleBuilder", signal: Signal) -> None:
        super().__init__(builder, signal)
        self._driven = False

    def drive(self, next_value: ValueLike, en: Optional[ValueLike] = None) -> None:
        """Set the next value; with ``en`` the register holds when disabled."""
        if self._driven:
            raise CircuitError(f"register {self.name!r} driven twice")
        nxt = self._coerce(next_value)
        if nxt.width != self.width:
            raise CircuitError(
                f"register {self.name!r}: next width {nxt.width} != reg width {self.width}"
            )
        if en is not None:
            en_v = en if isinstance(en, Value) else self.builder.const(en, 1)
            nxt = self.builder.mux(en_v, nxt, self)
        self.builder._drive_register(self, nxt)
        self._driven = True


class Memory:
    """A register-array memory with one write port and mux-tree reads.

    This is how the paper's scaled-down caches (register arrays) are
    modelled: each word is an ordinary register, reads are mux trees and
    the write port is a per-word enable decoder — so taint
    instrumentation and CNF encoding need no special memory support.
    """

    def __init__(
        self,
        builder: "ModuleBuilder",
        name: str,
        depth: int,
        width: int,
        init: Optional[Sequence[int]] = None,
    ) -> None:
        if depth < 1:
            raise CircuitError(f"memory {name!r} must have depth >= 1")
        self.builder = builder
        self.name = name
        self.depth = depth
        self.width = width
        self.addr_width = max(1, (depth - 1).bit_length())
        init = list(init) if init is not None else [0] * depth
        if len(init) != depth:
            raise CircuitError(f"memory {name!r}: init length {len(init)} != depth {depth}")
        self.words: List[RegValue] = [
            builder.reg(f"{name}_{i}", width, reset=init[i] & ((1 << width) - 1))
            for i in range(depth)
        ]
        self._write_done = False

    def word(self, index: int) -> RegValue:
        return self.words[index]

    def read(self, addr: Value) -> Value:
        """Combinational read via a mux tree (out-of-range wraps)."""
        if addr.width < self.addr_width:
            addr = addr.zext(self.addr_width)
        return self._mux_tree(addr, [self.words[i % self.depth] for i in range(1 << addr.width)])

    def _mux_tree(self, addr: Value, leaves: List[Value]) -> Value:
        if len(leaves) == 1:
            return leaves[0]
        half = len(leaves) // 2
        bit = addr[addr.width - 1]
        rest = addr[addr.width - 2:0] if addr.width > 1 else None
        low = self._mux_tree(rest, leaves[:half]) if rest is not None else leaves[0]
        high = self._mux_tree(rest, leaves[half:]) if rest is not None else leaves[1]
        return self.builder.mux(bit, high, low)

    def write(self, addr: Value, data: ValueLike, en: ValueLike) -> None:
        """Single write port: ``mem[addr] <= data`` when ``en``."""
        if self._write_done:
            raise CircuitError(f"memory {self.name!r} already has a write port")
        self._write_done = True
        b = self.builder
        data_v = data if isinstance(data, Value) else b.const(data, self.width)
        en_v = en if isinstance(en, Value) else b.const(en, 1)
        if addr.width < self.addr_width:
            addr = addr.zext(self.addr_width)
        for i, word in enumerate(self.words):
            hit = en_v & addr.eq(b.const(i, addr.width))
            word.drive(data_v, en=hit)

    def finalize(self) -> None:
        """Hold every word that never got a write port."""
        for word in self.words:
            if not word._driven:
                word.drive(word)


class ModuleBuilder:
    """Builds a flattened :class:`Circuit` with hierarchy bookkeeping."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.circuit = Circuit(name)
        self._scope_stack: List[str] = []
        self._tmp_counter = 0
        self._pending_regs: List[Tuple[RegValue, int]] = []
        self._memories: List[Memory] = []
        self._built = False

    # ------------------------------------------------------------------
    # naming & hierarchy
    # ------------------------------------------------------------------
    @property
    def current_module(self) -> str:
        return ".".join(self._scope_stack)

    def _qualify(self, name: str) -> str:
        prefix = self.current_module
        return f"{prefix}.{name}" if prefix else name

    def _fresh(self, prefix: str = "t") -> str:
        self._tmp_counter += 1
        return self._qualify(f"_{prefix}{self._tmp_counter}")

    @contextlib.contextmanager
    def scope(self, name: str):
        """Enter a submodule scope; names and cells get the nested path."""
        self._scope_stack.append(name)
        try:
            yield self
        finally:
            self._scope_stack.pop()

    @contextlib.contextmanager
    def at_scope(self, path: str):
        """Temporarily switch to an absolute module path.

        Useful when logic conceptually belonging to one module (e.g. a
        cache's read mux tree) is wired up from another module's code.
        """
        saved = self._scope_stack
        self._scope_stack = path.split(".") if path else []
        try:
            yield self
        finally:
            self._scope_stack = saved

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _emit(
        self,
        op: CellOp,
        out_width: int,
        ins: Sequence[Value],
        params: Tuple[Tuple[str, int], ...] = (),
        name: Optional[str] = None,
    ) -> Value:
        out_name = self._qualify(name) if name else self._fresh(op.value)
        out_sig = Signal(out_name, out_width, SignalKind.WIRE, module=self.current_module)
        cell = Cell(op, out_sig, tuple(v.signal for v in ins), params, module=self.current_module)
        self.circuit.add_cell(cell)
        return Value(self, out_sig)

    def input(self, name: str, width: int) -> Value:
        sig = Signal(self._qualify(name), width, SignalKind.INPUT, module=self.current_module)
        self.circuit.add_signal(sig)
        return Value(self, sig)

    def output(self, name: str, value: ValueLike, width: Optional[int] = None) -> Value:
        if not isinstance(value, Value):
            if width is None:
                raise CircuitError(f"output {name!r}: constant output needs explicit width")
            value = self.const(value, width)
        sig = Signal(self._qualify(name), value.width, SignalKind.OUTPUT, module=self.current_module)
        cell = Cell(CellOp.BUF, sig, (value.signal,), module=self.current_module)
        self.circuit.add_cell(cell)
        return Value(self, sig)

    def const(self, value: int, width: int) -> Value:
        mask = (1 << width) - 1
        if value < 0:
            value &= mask
        if value > mask:
            raise CircuitError(f"constant {value} does not fit in {width} bits")
        return self._emit(CellOp.CONST, width, (), params=(("value", value),))

    def named(self, name: str, value: Value) -> Value:
        """Give an intermediate value a stable, readable name (BUF alias)."""
        return self._emit(CellOp.BUF, value.width, (value,), name=name)

    def reg(self, name: str, width: int, reset: int = 0) -> RegValue:
        sig = Signal(self._qualify(name), width, SignalKind.REG, module=self.current_module)
        self.circuit.add_signal(sig)
        reg_value = RegValue(self, sig)
        self._pending_regs.append((reg_value, reset & ((1 << width) - 1)))
        return reg_value

    def _drive_register(self, reg_value: RegValue, nxt: Value) -> None:
        for idx, (pending, reset) in enumerate(self._pending_regs):
            if pending is reg_value:
                self.circuit.add_register(Register(reg_value.signal, nxt.signal, reset))
                del self._pending_regs[idx]
                return
        raise CircuitError(f"register {reg_value.name!r} not pending (already built?)")

    # ------------------------------------------------------------------
    # combinational helpers
    # ------------------------------------------------------------------
    def mux(self, sel: Value, if_true: ValueLike, if_false: ValueLike) -> Value:
        if sel.width != 1:
            raise CircuitError(f"mux selector must be 1 bit, got {sel.width}")
        if not isinstance(if_true, Value) and not isinstance(if_false, Value):
            raise CircuitError("mux needs at least one hardware Value operand")
        ref = if_true if isinstance(if_true, Value) else if_false
        a = if_true if isinstance(if_true, Value) else self.const(if_true, ref.width)
        b = if_false if isinstance(if_false, Value) else self.const(if_false, ref.width)
        if a.width != b.width:
            raise CircuitError(f"mux arm widths differ: {a.width} vs {b.width}")
        return self._emit(CellOp.MUX, a.width, (sel, a, b))

    def cat(self, *parts: Value) -> Value:
        """Concatenate; ``parts[0]`` becomes the most significant bits."""
        if not parts:
            raise CircuitError("cat needs at least one operand")
        if len(parts) == 1:
            return parts[0]
        width = sum(p.width for p in parts)
        return self._emit(CellOp.CONCAT, width, parts)

    def any_of(self, *values: Value) -> Value:
        """OR-reduce a list of 1-bit values."""
        acc = None
        for v in values:
            v1 = v.redor() if v.width > 1 else v
            acc = v1 if acc is None else (acc | v1)
        if acc is None:
            return self.const(0, 1)
        return acc

    def all_of(self, *values: Value) -> Value:
        acc = None
        for v in values:
            v1 = v.redand() if v.width > 1 else v
            acc = v1 if acc is None else (acc & v1)
        if acc is None:
            return self.const(1, 1)
        return acc

    def priority_mux(self, default: ValueLike, *cases: Tuple[Value, ValueLike]) -> Value:
        """``cases`` are (condition, value) pairs; the first match wins."""
        ref = None
        for _, val in cases:
            if isinstance(val, Value):
                ref = val
                break
        if ref is None and isinstance(default, Value):
            ref = default
        if ref is None:
            raise CircuitError("priority_mux needs at least one hardware Value")
        result = default if isinstance(default, Value) else self.const(default, ref.width)
        for cond, val in reversed(cases):
            val_v = val if isinstance(val, Value) else self.const(val, ref.width)
            result = self.mux(cond, val_v, result)
        return result

    def mem(
        self, name: str, depth: int, width: int, init: Optional[Sequence[int]] = None
    ) -> Memory:
        memory = Memory(self, name, depth, width, init)
        self._memories.append(memory)
        return memory

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------
    def build(self) -> Circuit:
        if self._built:
            raise CircuitError(f"builder {self.name!r} already built")
        for memory in self._memories:
            memory.finalize()
        # Undriven registers hold their value.
        for reg_value, reset in list(self._pending_regs):
            self.circuit.add_register(Register(reg_value.signal, reg_value.signal, reset))
        self._pending_regs.clear()
        self.circuit.validate()
        self._built = True
        return self.circuit

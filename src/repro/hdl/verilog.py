"""Structural Verilog emission for circuits.

Lets users inspect (or feed to external tools) any circuit the library
produces — including taint-instrumented designs, which is how the
paper's flow hands instrumented RTL to Verilator and JasperGold.

The emitted module is flat, synthesizable Verilog-2001: one ``wire``
per cell output, ``assign`` statements for combinational cells, and a
single clocked ``always`` block with synchronous reset for registers.
"""

from __future__ import annotations

import re
from typing import Dict, List, TextIO

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit
from repro.hdl.signals import Signal, SignalKind


def _escape(name: str) -> str:
    """Map hierarchical names to valid Verilog identifiers."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_$]*", name):
        return name
    return "\\" + name + " "  # escaped identifier


def _width_decl(width: int) -> str:
    return f"[{width - 1}:0] " if width > 1 else ""


def _expr(cell: Cell, name) -> str:
    op = cell.op
    ins = [name(s) for s in cell.ins]
    if op is CellOp.CONST:
        return f"{cell.out.width}'d{cell.param('value')}"
    if op is CellOp.BUF:
        return ins[0]
    if op is CellOp.NOT:
        return f"~{ins[0]}"
    if op in (CellOp.AND, CellOp.OR, CellOp.XOR):
        glyph = {CellOp.AND: " & ", CellOp.OR: " | ", CellOp.XOR: " ^ "}[op]
        return glyph.join(ins)
    if op is CellOp.MUX:
        return f"{ins[0]} ? {ins[1]} : {ins[2]}"
    if op is CellOp.ADD:
        return f"{ins[0]} + {ins[1]}"
    if op is CellOp.SUB:
        return f"{ins[0]} - {ins[1]}"
    if op is CellOp.EQ:
        return f"{ins[0]} == {ins[1]}"
    if op is CellOp.NEQ:
        return f"{ins[0]} != {ins[1]}"
    if op is CellOp.ULT:
        return f"{ins[0]} < {ins[1]}"
    if op is CellOp.ULE:
        return f"{ins[0]} <= {ins[1]}"
    if op is CellOp.SHL:
        return f"{ins[0]} << {ins[1]}"
    if op is CellOp.SHR:
        return f"{ins[0]} >> {ins[1]}"
    if op is CellOp.CONCAT:
        return "{" + ", ".join(ins) + "}"
    if op is CellOp.SLICE:
        lo, hi = cell.param("lo"), cell.param("hi")
        index = f"[{hi}:{lo}]" if hi != lo else f"[{lo}]"
        return f"{ins[0]}{index}"
    if op is CellOp.ZEXT:
        pad = cell.out.width - cell.ins[0].width
        return "{" + f"{pad}'d0, {ins[0]}" + "}"
    if op is CellOp.SEXT:
        pad = cell.out.width - cell.ins[0].width
        sign = f"{ins[0]}[{cell.ins[0].width - 1}]"
        return "{{" + f"{pad}{{{sign}}}" + "}, " + ins[0] + "}"
    if op is CellOp.REDOR:
        return f"|{ins[0]}"
    if op is CellOp.REDAND:
        return f"&{ins[0]}"
    if op is CellOp.REDXOR:
        return f"^{ins[0]}"
    raise ValueError(f"cannot emit op {op}")  # pragma: no cover


def write_verilog(circuit: Circuit, stream: TextIO, module_name: str = "") -> None:
    """Emit ``circuit`` as a flat structural Verilog module."""
    module_name = module_name or re.sub(r"\W", "_", circuit.name)
    names: Dict[str, str] = {}

    def name(sig: Signal) -> str:
        cached = names.get(sig.name)
        if cached is None:
            cached = _escape(sig.name)
            names[sig.name] = cached
        return cached

    ports = ["clock", "reset"]
    ports += [name(s) for s in circuit.inputs]
    ports += [name(s) for s in circuit.outputs]
    stream.write(f"module {module_name} (\n")
    stream.write(",\n".join(f"    {p}" for p in ports))
    stream.write("\n);\n\n")
    stream.write("  input clock;\n  input reset;\n")
    for sig in circuit.inputs:
        stream.write(f"  input {_width_decl(sig.width)}{name(sig)};\n")
    for sig in circuit.outputs:
        stream.write(f"  output {_width_decl(sig.width)}{name(sig)};\n")
    stream.write("\n")
    for reg in circuit.registers:
        stream.write(f"  reg {_width_decl(reg.q.width)}{name(reg.q)};\n")
    for cell in circuit.cells:
        if cell.out.kind is not SignalKind.OUTPUT:
            stream.write(f"  wire {_width_decl(cell.out.width)}{name(cell.out)};\n")
    stream.write("\n")
    for cell in circuit.topo_cells():
        stream.write(f"  assign {name(cell.out)} = {_expr(cell, name)};\n")
    if circuit.registers:
        stream.write("\n  always @(posedge clock) begin\n")
        stream.write("    if (reset) begin\n")
        for reg in circuit.registers:
            stream.write(
                f"      {name(reg.q)} <= {reg.q.width}'d{reg.reset_value};\n"
            )
        stream.write("    end else begin\n")
        for reg in circuit.registers:
            stream.write(f"      {name(reg.q)} <= {name(reg.d)};\n")
        stream.write("    end\n  end\n")
    stream.write("\nendmodule\n")

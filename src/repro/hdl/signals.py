"""Signals: named, fixed-width values in a circuit.

A :class:`Signal` is the atomic named entity of the IR.  Signals carry a
*hierarchical module path* (``module``) so that passes running after
flattening — most importantly module-granularity taint grouping — can
still reason about the original design hierarchy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SignalKind(enum.Enum):
    """Role of a signal within its circuit."""

    INPUT = "input"
    OUTPUT = "output"
    WIRE = "wire"
    REG = "reg"
    CONST = "const"


@dataclass(frozen=True)
class Signal:
    """A named, fixed-width value.

    Attributes:
        name: Full hierarchical name, e.g. ``"core.dcache.s1_valid"``.
        width: Bit width (>= 1).
        kind: Role of the signal (see :class:`SignalKind`).
        module: Hierarchical path of the owning module (``""`` for the
            top level).  ``name`` always starts with ``module + "."``
            when ``module`` is non-empty.
    """

    name: str
    width: int
    kind: SignalKind = SignalKind.WIRE
    module: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"signal {self.name!r} must have width >= 1, got {self.width}")
        if not self.name:
            raise ValueError("signal name must be non-empty")

    @property
    def mask(self) -> int:
        """All-ones mask for this signal's width."""
        return (1 << self.width) - 1

    def truncate(self, value: int) -> int:
        """Wrap ``value`` into this signal's unsigned domain."""
        return value & self.mask

    def __str__(self) -> str:
        return f"{self.name}[{self.width}]"


def local_name(signal: Signal) -> str:
    """Return the signal's name relative to its owning module."""
    if signal.module and signal.name.startswith(signal.module + "."):
        return signal.name[len(signal.module) + 1:]
    return signal.name


def module_and_ancestors(path: str) -> list:
    """Return ``path`` and every ancestor module path, excluding the root.

    >>> module_and_ancestors("a.b.c")
    ['a.b.c', 'a.b', 'a']
    >>> module_and_ancestors("")
    []
    """
    out = []
    while path:
        out.append(path)
        dot = path.rfind(".")
        path = path[:dot] if dot >= 0 else ""
    return out

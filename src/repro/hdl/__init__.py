"""Hardware IR substrate.

This package provides the cell-level hardware intermediate representation
(IR) that the rest of the library operates on.  It plays the role FIRRTL
plays in the paper: a flattened netlist of multi-bit *cells* (macrocells
such as adders and multiplexers) plus registers, with hierarchical module
paths retained on every signal and cell so that module-level taint
grouping remains possible after flattening.

Public entry points:

- :class:`~repro.hdl.signals.Signal` / :class:`~repro.hdl.signals.SignalKind`
- :class:`~repro.hdl.cells.Cell` / :class:`~repro.hdl.cells.CellOp`
- :class:`~repro.hdl.circuit.Circuit` / :class:`~repro.hdl.circuit.Register`
- :class:`~repro.hdl.builder.ModuleBuilder` — the Chisel-like eDSL
- :func:`~repro.hdl.lowering.lower_to_gates` — cell → 1-bit gate lowering
- :func:`~repro.hdl.stats.gate_count` / :func:`~repro.hdl.stats.register_bits`
"""

from repro.hdl.signals import Signal, SignalKind
from repro.hdl.cells import Cell, CellOp, evaluate_cell
from repro.hdl.circuit import Circuit, Register, CombinationalLoopError
from repro.hdl.builder import ModuleBuilder, Value, RegValue, Memory
from repro.hdl.lowering import lower_to_gates, LoweredCircuit
from repro.hdl.stats import gate_count, register_bits, CircuitStats, circuit_stats

__all__ = [
    "Signal",
    "SignalKind",
    "Cell",
    "CellOp",
    "evaluate_cell",
    "Circuit",
    "Register",
    "CombinationalLoopError",
    "ModuleBuilder",
    "Value",
    "RegValue",
    "Memory",
    "lower_to_gates",
    "LoweredCircuit",
    "gate_count",
    "register_bits",
    "CircuitStats",
    "circuit_stats",
]

"""Flattened circuit container: signals, cells, registers.

A :class:`Circuit` is the unit everything downstream consumes: the
simulator evaluates its cells in topological order, the taint
instrumentation pass rewrites it, the gate-lowering pass bit-blasts it,
and the CNF encoder unrolls it over time frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.hdl.cells import Cell, CellOp, validate_cell
from repro.hdl.signals import Signal, SignalKind


class CircuitError(ValueError):
    """Raised for structural problems in a circuit."""


class CombinationalLoopError(CircuitError):
    """Raised when the cells of a circuit contain a combinational cycle."""


@dataclass(frozen=True)
class Register:
    """A clocked state element.

    ``q`` is the current-value signal (kind REG, no producing cell) and
    ``d`` the combinationally-computed next value.  Enables and holds are
    folded into ``d`` by the builder; the register itself updates every
    cycle.
    """

    q: Signal
    d: Signal
    reset_value: int = 0

    def __post_init__(self) -> None:
        if self.q.width != self.d.width:
            raise CircuitError(f"register {self.q.name}: d width {self.d.width} != q width {self.q.width}")
        if not (0 <= self.reset_value <= self.q.mask):
            raise CircuitError(f"register {self.q.name}: reset value out of range")


class Circuit:
    """A flattened netlist.

    Invariants (enforced by :meth:`validate`):

    - every signal has a unique name;
    - every WIRE/OUTPUT signal is produced by exactly one cell;
    - INPUT and REG signals are produced by no cell;
    - cell inputs reference signals in the circuit;
    - the cell graph is acyclic (registers break cycles).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.signals: Dict[str, Signal] = {}
        self.inputs: List[Signal] = []
        self.outputs: List[Signal] = []
        self.cells: List[Cell] = []
        self.registers: List[Register] = []
        self._producer: Dict[str, Cell] = {}
        self._register_of: Dict[str, Register] = {}
        self._topo_cache: Optional[List[Cell]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_signal(self, signal: Signal) -> Signal:
        existing = self.signals.get(signal.name)
        if existing is not None:
            if existing != signal:
                raise CircuitError(f"conflicting redefinition of signal {signal.name!r}")
            return existing
        self.signals[signal.name] = signal
        if signal.kind is SignalKind.INPUT:
            self.inputs.append(signal)
        elif signal.kind is SignalKind.OUTPUT:
            self.outputs.append(signal)
        self._topo_cache = None
        return signal

    def add_cell(self, cell: Cell) -> Cell:
        validate_cell(cell)
        if cell.out.name in self._producer:
            raise CircuitError(f"signal {cell.out.name!r} already driven")
        if cell.out.kind in (SignalKind.INPUT, SignalKind.REG):
            raise CircuitError(f"cannot drive {cell.out.kind.value} signal {cell.out.name!r} with a cell")
        self.add_signal(cell.out)
        for sig in cell.ins:
            if sig.name not in self.signals:
                raise CircuitError(f"cell {cell.out.name!r} references unknown signal {sig.name!r}")
        self.cells.append(cell)
        self._producer[cell.out.name] = cell
        self._topo_cache = None
        return cell

    def adopt_cell(self, cell: Cell) -> Cell:
        """Trusted :meth:`add_cell` for optimizer passes.

        The per-cell arity/width validation is skipped — the cell is
        being copied unchanged out of an already-validated circuit.
        Structural bookkeeping (producer uniqueness, signal
        registration) still applies.
        """
        if cell.out.name in self._producer:
            raise CircuitError(f"signal {cell.out.name!r} already driven")
        self.add_signal(cell.out)
        self.cells.append(cell)
        self._producer[cell.out.name] = cell
        self._topo_cache = None
        return cell

    def add_register(self, register: Register) -> Register:
        if register.q.kind is not SignalKind.REG:
            raise CircuitError(f"register q signal {register.q.name!r} must have kind REG")
        if register.q.name in self._register_of:
            raise CircuitError(f"register {register.q.name!r} already defined")
        self.add_signal(register.q)
        self.registers.append(register)
        self._register_of[register.q.name] = register
        self._topo_cache = None
        return register

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def signal(self, name: str) -> Signal:
        try:
            return self.signals[name]
        except KeyError:
            raise CircuitError(f"no signal named {name!r} in circuit {self.name!r}") from None

    def producer(self, signal: Signal) -> Optional[Cell]:
        """The cell driving ``signal``, or ``None`` for inputs/regs/consts."""
        return self._producer.get(signal.name)

    def register_of(self, signal: Signal) -> Optional[Register]:
        return self._register_of.get(signal.name)

    def is_state(self, signal: Signal) -> bool:
        return signal.name in self._register_of

    def combinational_fanins(self, signal: Signal) -> Tuple[Signal, ...]:
        """Fan-in signals through the producing cell (empty for sources)."""
        cell = self._producer.get(signal.name)
        return cell.ins if cell is not None else ()

    def fanouts(self, signal: Signal) -> List[Cell]:
        """All cells consuming ``signal`` (linear scan; cached callers should
        build their own index via :meth:`fanout_index`)."""
        return [c for c in self.cells if any(s.name == signal.name for s in c.ins)]

    def fanout_index(self) -> Dict[str, List[Cell]]:
        index: Dict[str, List[Cell]] = {name: [] for name in self.signals}
        for cell in self.cells:
            for sig in cell.ins:
                index[sig.name].append(cell)
        return index

    def module_paths(self) -> Set[str]:
        """All module paths appearing on signals or cells (excluding root)."""
        paths: Set[str] = set()
        for sig in self.signals.values():
            if sig.module:
                paths.add(sig.module)
        for cell in self.cells:
            if cell.module:
                paths.add(cell.module)
        return paths

    def registers_in_module(self, module_path: str) -> List[Register]:
        """Registers whose module path equals or is nested under ``module_path``."""
        prefix = module_path + "."
        return [
            r for r in self.registers
            if r.q.module == module_path or r.q.module.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    # topological ordering & validation
    # ------------------------------------------------------------------
    def topo_cells(self) -> List[Cell]:
        """Cells in dependency order (inputs/registers/consts are sources).

        Raises :class:`CombinationalLoopError` on a combinational cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        # Kahn's algorithm over cells.
        consumers: Dict[str, List[int]] = {}
        indegree = [0] * len(self.cells)
        for idx, cell in enumerate(self.cells):
            for sig in cell.ins:
                if sig.name in self._producer:
                    consumers.setdefault(sig.name, []).append(idx)
                    indegree[idx] += 1
        ready = [i for i, d in enumerate(indegree) if d == 0]
        order: List[Cell] = []
        while ready:
            idx = ready.pop()
            cell = self.cells[idx]
            order.append(cell)
            for consumer in consumers.get(cell.out.name, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.cells):
            stuck = [self.cells[i].out.name for i, d in enumerate(indegree) if d > 0]
            raise CombinationalLoopError(
                f"combinational loop in circuit {self.name!r} involving: {stuck[:10]}"
            )
        self._topo_cache = order
        return order

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`CircuitError`.

        Delegates to the invariant subset of the lint rules
        (:func:`repro.lint.structural.invariant_diagnostics`) and
        collects *every* violation before raising — the exception
        message lists them all.  When the only violations are
        combinational cycles, :class:`CombinationalLoopError` is raised
        for compatibility with loop-specific handlers.
        """
        from repro.lint.structural import invariant_diagnostics

        violations = invariant_diagnostics(self)
        if not violations:
            self.topo_cells()  # populate the cache on the happy path
            return
        messages = []
        for diag in violations:
            prefix = f"[{diag.rule}] " if len(violations) > 1 else ""
            location = f"{diag.path}: " if diag.path else ""
            messages.append(f"{prefix}{location}{diag.message}")
        summary = (
            f"circuit {self.name!r} has {len(violations)} invariant "
            f"violation(s):\n  " + "\n  ".join(messages)
            if len(violations) > 1
            else f"circuit {self.name!r}: {messages[0]}"
        )
        if all(diag.rule == "comb-loop" for diag in violations):
            raise CombinationalLoopError(summary)
        raise CircuitError(summary)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Circuit":
        """Shallow structural copy (signals/cells are immutable, safe to share)."""
        out = Circuit(name or self.name)
        for sig in self.signals.values():
            out.add_signal(sig)
        for reg in self.registers:
            out.add_register(reg)
        for cell in self.cells:
            out.add_cell(cell)
        return out

    def state_bits(self) -> int:
        return sum(r.q.width for r in self.registers)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}: {len(self.inputs)} in, {len(self.outputs)} out, "
            f"{len(self.cells)} cells, {len(self.registers)} regs)"
        )

"""JSON netlist serialization (round-trippable circuit persistence).

The format is a small, versioned JSON document — the library's
interchange format for saving instrumented designs, sharing
counterexample setups, or diffing circuits across runs.  Unlike the
Verilog emitter (write-only, for external tools), this format round
trips exactly: ``load(dump(circuit))`` reproduces the circuit
structurally, including hierarchy annotations.

Version 2 adds an optional ``provenance`` section carrying the per-bit
name map of :func:`repro.hdl.lowering.lower_to_gates`, so a lowered
netlist round trips as a :class:`~repro.hdl.lowering.LoweredCircuit`
and lint diagnostics on it still resolve to hierarchical source paths
(``alu.x[3]`` instead of a bare gate name).  Version-1 documents load
unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, TextIO, Union

from repro.hdl.cells import Cell, CellOp, CellValidationError
from repro.hdl.circuit import Circuit, CircuitError, Register
from repro.hdl.lowering import LoweredCircuit
from repro.hdl.signals import Signal, SignalKind

FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)


def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Serialize a circuit to a JSON-compatible dictionary."""
    return {
        "format": "repro-netlist",
        "version": FORMAT_VERSION,
        "name": circuit.name,
        # Sorted for a canonical, diff-friendly document (round trips
        # are exact fixpoints regardless of construction order).
        "signals": [
            {
                "name": sig.name,
                "width": sig.width,
                "kind": sig.kind.value,
                "module": sig.module,
            }
            for sig in sorted(circuit.signals.values(), key=lambda s: s.name)
        ],
        "registers": [
            {
                "q": reg.q.name,
                "d": reg.d.name,
                "reset": reg.reset_value,
            }
            for reg in circuit.registers
        ],
        "cells": [
            {
                "op": cell.op.value,
                "out": cell.out.name,
                "ins": [s.name for s in cell.ins],
                "params": list(cell.params),
                "module": cell.module,
            }
            for cell in circuit.cells
        ],
    }


def circuit_from_dict(data: Dict[str, Any], validate: bool = True) -> Circuit:
    """Rebuild a circuit from its dictionary form.

    With ``validate=False`` the circuit is reconstructed leniently —
    invariant violations (loops, undriven or multiply-driven signals)
    are preserved rather than rejected, so a broken netlist can still
    be loaded for linting.
    """
    if data.get("format") != "repro-netlist":
        raise ValueError("not a repro-netlist document")
    if data.get("version") not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported netlist version {data.get('version')!r}")
    circuit = Circuit(data["name"])
    signals: Dict[str, Signal] = {}
    for entry in data["signals"]:
        sig = Signal(entry["name"], entry["width"], SignalKind(entry["kind"]),
                     module=entry.get("module", ""))
        signals[sig.name] = sig
        if sig.kind is not SignalKind.REG:
            circuit.add_signal(sig)
    for entry in data["registers"]:
        q = signals[entry["q"]]
        d = signals[entry["d"]]
        circuit.add_register(Register(q, d, entry["reset"]))
    for entry in data["cells"]:
        cell = Cell(
            CellOp(entry["op"]),
            signals[entry["out"]],
            tuple(signals[n] for n in entry["ins"]),
            tuple((k, v) for k, v in entry.get("params", [])),
            module=entry.get("module", ""),
        )
        try:
            circuit.add_cell(cell)
        except (CircuitError, CellValidationError):
            if validate:
                raise
            # Lenient path: keep the offending cell so lint can see it.
            if cell.out.name not in circuit.signals:
                circuit.signals[cell.out.name] = cell.out
                if cell.out.kind is SignalKind.OUTPUT:
                    circuit.outputs.append(cell.out)
            circuit.cells.append(cell)
            circuit._producer.setdefault(cell.out.name, cell)
            circuit._topo_cache = None
    if validate:
        circuit.validate()
    return circuit


# ---------------------------------------------------------------------------
# lowered circuits (netlist + bit provenance)
# ---------------------------------------------------------------------------

def lowered_to_dict(lowered: LoweredCircuit) -> Dict[str, Any]:
    """Serialize a lowered circuit including its bit-provenance map."""
    doc = circuit_to_dict(lowered.circuit)
    doc["provenance"] = {
        orig: [sig.name for sig in bit_sigs]
        for orig, bit_sigs in sorted(lowered.bits.items())
    }
    return doc


def lowered_from_dict(data: Dict[str, Any], validate: bool = True) -> LoweredCircuit:
    """Rebuild a :class:`LoweredCircuit`; requires a ``provenance`` section."""
    if "provenance" not in data:
        raise ValueError("netlist document carries no provenance section")
    circuit = circuit_from_dict(data, validate=validate)
    bits: Dict[str, List[Signal]] = {}
    for orig, names in data["provenance"].items():
        bits[orig] = [circuit.signal(name) for name in names]
    return LoweredCircuit(circuit, bits)


def dump(circuit: Circuit, stream: TextIO, indent: int = 1) -> None:
    json.dump(circuit_to_dict(circuit), stream, indent=indent)


def dumps(circuit: Circuit) -> str:
    return json.dumps(circuit_to_dict(circuit))


def load(stream: TextIO, validate: bool = True) -> Circuit:
    return circuit_from_dict(json.load(stream), validate=validate)


def loads(text: str, validate: bool = True) -> Circuit:
    return circuit_from_dict(json.loads(text), validate=validate)


def dump_lowered(lowered: LoweredCircuit, stream: TextIO, indent: int = 1) -> None:
    json.dump(lowered_to_dict(lowered), stream, indent=indent)


def load_lowered(stream: TextIO, validate: bool = True) -> LoweredCircuit:
    return lowered_from_dict(json.load(stream), validate=validate)

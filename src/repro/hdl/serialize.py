"""JSON netlist serialization (round-trippable circuit persistence).

The format is a small, versioned JSON document — the library's
interchange format for saving instrumented designs, sharing
counterexample setups, or diffing circuits across runs.  Unlike the
Verilog emitter (write-only, for external tools), this format round
trips exactly: ``load(dump(circuit))`` reproduces the circuit
structurally, including hierarchy annotations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO, Union

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind

FORMAT_VERSION = 1


def circuit_to_dict(circuit: Circuit) -> Dict[str, Any]:
    """Serialize a circuit to a JSON-compatible dictionary."""
    return {
        "format": "repro-netlist",
        "version": FORMAT_VERSION,
        "name": circuit.name,
        # Sorted for a canonical, diff-friendly document (round trips
        # are exact fixpoints regardless of construction order).
        "signals": [
            {
                "name": sig.name,
                "width": sig.width,
                "kind": sig.kind.value,
                "module": sig.module,
            }
            for sig in sorted(circuit.signals.values(), key=lambda s: s.name)
        ],
        "registers": [
            {
                "q": reg.q.name,
                "d": reg.d.name,
                "reset": reg.reset_value,
            }
            for reg in circuit.registers
        ],
        "cells": [
            {
                "op": cell.op.value,
                "out": cell.out.name,
                "ins": [s.name for s in cell.ins],
                "params": list(cell.params),
                "module": cell.module,
            }
            for cell in circuit.cells
        ],
    }


def circuit_from_dict(data: Dict[str, Any]) -> Circuit:
    """Rebuild a circuit from its dictionary form; validates on exit."""
    if data.get("format") != "repro-netlist":
        raise ValueError("not a repro-netlist document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported netlist version {data.get('version')!r}")
    circuit = Circuit(data["name"])
    signals: Dict[str, Signal] = {}
    for entry in data["signals"]:
        sig = Signal(entry["name"], entry["width"], SignalKind(entry["kind"]),
                     module=entry.get("module", ""))
        signals[sig.name] = sig
        if sig.kind is not SignalKind.REG:
            circuit.add_signal(sig)
    for entry in data["registers"]:
        q = signals[entry["q"]]
        d = signals[entry["d"]]
        circuit.add_register(Register(q, d, entry["reset"]))
    for entry in data["cells"]:
        cell = Cell(
            CellOp(entry["op"]),
            signals[entry["out"]],
            tuple(signals[n] for n in entry["ins"]),
            tuple((k, v) for k, v in entry.get("params", [])),
            module=entry.get("module", ""),
        )
        circuit.add_cell(cell)
    circuit.validate()
    return circuit


def dump(circuit: Circuit, stream: TextIO, indent: int = 1) -> None:
    json.dump(circuit_to_dict(circuit), stream, indent=indent)


def dumps(circuit: Circuit) -> str:
    return json.dumps(circuit_to_dict(circuit))


def load(stream: TextIO) -> Circuit:
    return circuit_from_dict(json.load(stream))


def loads(text: str) -> Circuit:
    return circuit_from_dict(json.loads(text))

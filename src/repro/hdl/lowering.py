"""Cell → gate lowering (bit blasting).

Lowers a cell-level circuit into a 1-bit gate-level circuit using only
``CONST``/``BUF``/``NOT``/``AND``(2)/``OR``(2)/``XOR``(2) cells.  This is
the paper's *gate* unit level: a MUX becomes two AND gates, an OR gate
and a NOT gate (the exact decomposition discussed in Section 3.2),
adders become ripple-carry chains, and shifts become barrel stages.

The lowering serves two consumers:

- gate-level taint instrumentation (unit level = GATE), and
- the CNF encoder of :mod:`repro.formal` (which only understands gates).

Multi-bit signal ``x`` of width *n* becomes gate signals ``x[0]`` …
``x[n-1]``; width-1 signals keep their original name so that waveforms
and counterexamples remain readable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind


@dataclass
class LoweredCircuit:
    """A gate-level circuit plus the bit-provenance map.

    Attributes:
        circuit: The 1-bit gate netlist.
        bits: ``original signal name -> [gate signal per bit]`` (LSB first).
        pruned_resets: reset bit of register bits that a
            cone-of-influence reduction removed from ``circuit`` but
            that ``bits`` still references — the property cannot
            observe them, so counterexample extraction reads their
            value from here instead of the SAT model.
    """

    circuit: Circuit
    bits: Dict[str, List[Signal]]
    pruned_resets: Dict[str, int] = field(default_factory=dict)

    def bit(self, name: str, index: int) -> Signal:
        return self.bits[name][index]

    def pack(self, name: str, bit_values: Dict[str, int]) -> int:
        """Reassemble an original signal's value from per-bit values."""
        value = 0
        for i, sig in enumerate(self.bits[name]):
            value |= (bit_values[sig.name] & 1) << i
        return value

    def unpack(self, name: str, value: int) -> Dict[str, int]:
        """Split an original signal's value into per-bit assignments."""
        return {sig.name: (value >> i) & 1 for i, sig in enumerate(self.bits[name])}


class _Lowerer:
    def __init__(self, source: Circuit) -> None:
        self.source = source
        self.out = Circuit(source.name + ".gates")
        self.bits: Dict[str, List[Signal]] = {}
        self._tmp = 0

    # -- helpers ---------------------------------------------------------
    def _fresh(self, module: str) -> Signal:
        self._tmp += 1
        name = f"_g{self._tmp}"
        if module:
            name = f"{module}.{name}"
        return Signal(name, 1, SignalKind.WIRE, module=module)

    def _gate(self, op: CellOp, ins: Sequence[Signal], module: str) -> Signal:
        out = self._fresh(module)
        self.out.add_cell(Cell(op, out, tuple(ins), module=module))
        return out

    def _const(self, value: int, module: str) -> Signal:
        out = self._fresh(module)
        self.out.add_cell(Cell(CellOp.CONST, out, (), (("value", value & 1),), module=module))
        return out

    def g_not(self, a: Signal, module: str) -> Signal:
        return self._gate(CellOp.NOT, (a,), module)

    def g_and(self, a: Signal, b: Signal, module: str) -> Signal:
        return self._gate(CellOp.AND, (a, b), module)

    def g_or(self, a: Signal, b: Signal, module: str) -> Signal:
        return self._gate(CellOp.OR, (a, b), module)

    def g_xor(self, a: Signal, b: Signal, module: str) -> Signal:
        return self._gate(CellOp.XOR, (a, b), module)

    def g_mux(self, s: Signal, a: Signal, b: Signal, module: str) -> Signal:
        """s ? a : b as (s&a) | (~s&b) — the paper's MUX gate decomposition."""
        return self.g_or(self.g_and(s, a, module), self.g_and(self.g_not(s, module), b, module), module)

    def _reduce(self, op_fn, items: Sequence[Signal], module: str) -> Signal:
        acc = items[0]
        for item in items[1:]:
            acc = op_fn(acc, item, module)
        return acc

    # -- signal splitting --------------------------------------------------
    def _declare(self, sig: Signal) -> List[Signal]:
        if sig.name in self.bits:
            return self.bits[sig.name]
        kind = sig.kind
        if kind is SignalKind.CONST:
            kind = SignalKind.WIRE
        if sig.width == 1:
            bit_sigs = [Signal(sig.name, 1, kind, module=sig.module)]
        else:
            bit_sigs = [
                Signal(f"{sig.name}[{i}]", 1, kind, module=sig.module)
                for i in range(sig.width)
            ]
        if kind is not SignalKind.REG:
            # REG bit signals are added by the register pass so that the
            # Register entries exist before validation.
            for bs in bit_sigs:
                if bs.kind is SignalKind.INPUT:
                    self.out.add_signal(bs)
        self.bits[sig.name] = bit_sigs
        return bit_sigs

    def _assign(self, targets: List[Signal], sources: List[Signal], module: str) -> None:
        """Drive declared (named) bit signals from computed temporaries."""
        for target, source in zip(targets, sources):
            self.out.add_cell(Cell(CellOp.BUF, target, (source,), module=module))

    # -- main ---------------------------------------------------------------
    def run(self, validate: bool = True) -> LoweredCircuit:
        src = self.source
        for sig in src.signals.values():
            self._declare(sig)
        # Registers: one per bit; next-value bits come from the d signal's bits.
        for reg in src.registers:
            q_bits = self.bits[reg.q.name]
            d_bits = self.bits[reg.d.name]
            for i, (qb, db) in enumerate(zip(q_bits, d_bits)):
                self.out.add_register(Register(qb, db, (reg.reset_value >> i) & 1))
        for cell in src.topo_cells():
            self._lower_cell(cell)
        if validate:
            self.out.validate()
        return LoweredCircuit(self.out, self.bits)

    def _lower_cell(self, cell: Cell) -> None:
        m = cell.module
        out_bits = self.bits[cell.out.name]
        in_bits = [self.bits[s.name] for s in cell.ins]
        op = cell.op
        if op is CellOp.CONST:
            value = cell.param("value")
            computed = [self._const((value >> i) & 1, m) for i in range(len(out_bits))]
        elif op is CellOp.BUF:
            computed = in_bits[0]
        elif op is CellOp.NOT:
            computed = [self.g_not(b, m) for b in in_bits[0]]
        elif op in (CellOp.AND, CellOp.OR, CellOp.XOR):
            fn = {CellOp.AND: self.g_and, CellOp.OR: self.g_or, CellOp.XOR: self.g_xor}[op]
            computed = [
                self._reduce(fn, [operand[i] for operand in in_bits], m)
                for i in range(len(out_bits))
            ]
        elif op is CellOp.MUX:
            sel = in_bits[0][0]
            computed = [self.g_mux(sel, a, b, m) for a, b in zip(in_bits[1], in_bits[2])]
        elif op in (CellOp.ADD, CellOp.SUB):
            computed = self._lower_addsub(in_bits[0], in_bits[1], op is CellOp.SUB, m)
        elif op in (CellOp.EQ, CellOp.NEQ):
            diffs = [self.g_xor(a, b, m) for a, b in zip(in_bits[0], in_bits[1])]
            any_diff = self._reduce(self.g_or, diffs, m)
            computed = [any_diff if op is CellOp.NEQ else self.g_not(any_diff, m)]
        elif op in (CellOp.ULT, CellOp.ULE):
            if op is CellOp.ULE:  # a <= b  ==  not (b < a)
                lt = self._lower_ult(in_bits[1], in_bits[0], m)
                computed = [self.g_not(lt, m)]
            else:
                computed = [self._lower_ult(in_bits[0], in_bits[1], m)]
        elif op in (CellOp.SHL, CellOp.SHR):
            computed = self._lower_shift(in_bits[0], in_bits[1], op is CellOp.SHL, m)
        elif op is CellOp.CONCAT:
            computed = []
            for operand in reversed(in_bits):  # ins[0] is MSB -> place last
                computed.extend(operand)
        elif op is CellOp.SLICE:
            lo, hi = cell.param("lo"), cell.param("hi")
            computed = in_bits[0][lo:hi + 1]
        elif op is CellOp.ZEXT:
            pad = len(out_bits) - len(in_bits[0])
            computed = list(in_bits[0]) + [self._const(0, m) for _ in range(pad)]
        elif op is CellOp.SEXT:
            pad = len(out_bits) - len(in_bits[0])
            sign = in_bits[0][-1]
            computed = list(in_bits[0]) + [sign] * pad
        elif op is CellOp.REDOR:
            computed = [self._reduce(self.g_or, in_bits[0], m)]
        elif op is CellOp.REDAND:
            computed = [self._reduce(self.g_and, in_bits[0], m)]
        elif op is CellOp.REDXOR:
            computed = [self._reduce(self.g_xor, in_bits[0], m)]
        else:  # pragma: no cover
            raise ValueError(f"cannot lower op {op}")
        self._assign(out_bits, computed, m)

    def _lower_addsub(
        self, a: List[Signal], b: List[Signal], subtract: bool, m: str
    ) -> List[Signal]:
        carry = self._const(1 if subtract else 0, m)
        result = []
        for ai, bi in zip(a, b):
            bi_eff = self.g_not(bi, m) if subtract else bi
            axb = self.g_xor(ai, bi_eff, m)
            result.append(self.g_xor(axb, carry, m))
            carry = self.g_or(self.g_and(ai, bi_eff, m), self.g_and(carry, axb, m), m)
        return result

    def _lower_ult(self, a: List[Signal], b: List[Signal], m: str) -> Signal:
        """Unsigned a < b via the final borrow of a - b."""
        borrow = self._const(0, m)
        for ai, bi in zip(a, b):
            na = self.g_not(ai, m)
            t1 = self.g_and(na, bi, m)
            t2 = self.g_and(na, borrow, m)
            t3 = self.g_and(bi, borrow, m)
            borrow = self._reduce(self.g_or, [t1, t2, t3], m)
        return borrow

    def _lower_shift(
        self, a: List[Signal], sh: List[Signal], left: bool, m: str
    ) -> List[Signal]:
        width = len(a)
        zero = self._const(0, m)
        cur = list(a)
        overflow_bits = []
        for j, sel in enumerate(sh):
            amount = 1 << j
            if amount >= width:
                overflow_bits.append(sel)
                continue
            nxt = []
            for i in range(width):
                src = i - amount if left else i + amount
                shifted = cur[src] if 0 <= src < width else zero
                nxt.append(self.g_mux(sel, shifted, cur[i], m))
            cur = nxt
        if overflow_bits:
            any_overflow = self._reduce(self.g_or, overflow_bits, m)
            keep = self.g_not(any_overflow, m)
            cur = [self.g_and(keep, bit, m) for bit in cur]
        return cur


def lower_to_gates(circuit: Circuit, validate: bool = True) -> LoweredCircuit:
    """Lower a cell-level circuit to the 1-bit gate vocabulary.

    ``validate=False`` defers the output invariant check to the caller
    (used by pass pipelines that validate once at the end).
    """
    return _Lowerer(circuit).run(validate=validate)

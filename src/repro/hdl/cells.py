"""Cells: the combinational operators of the IR.

A *cell* is a pre-defined combinational operator in the sense of the
paper's Section 3.1 ("macrocell") — the unit level at which CellIFT-style
taint schemes operate.  After :func:`repro.hdl.lowering.lower_to_gates`
the same :class:`Cell` type is reused with the restricted 1-bit gate
vocabulary (``NOT``/``AND``/``OR``/``XOR``/``BUF``/``CONST``), which is
the paper's *gate* unit level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.hdl.signals import Signal


class CellOp(enum.Enum):
    """Operator vocabulary of the IR."""

    CONST = "const"      # params: value
    BUF = "buf"          # identity
    NOT = "not"
    AND = "and"          # n-ary bitwise, all widths equal
    OR = "or"            # n-ary bitwise
    XOR = "xor"          # n-ary bitwise
    MUX = "mux"          # ins = (sel, a, b): sel ? a : b
    ADD = "add"          # modular
    SUB = "sub"          # modular
    EQ = "eq"            # 1-bit out
    NEQ = "neq"          # 1-bit out
    ULT = "ult"          # unsigned <, 1-bit out
    ULE = "ule"          # unsigned <=, 1-bit out
    SHL = "shl"          # ins = (a, shamt); out width == a width
    SHR = "shr"          # logical right shift
    CONCAT = "concat"    # n-ary; ins[0] is the most significant part
    SLICE = "slice"      # params: lo, hi (inclusive)
    ZEXT = "zext"        # zero extend to out width
    SEXT = "sext"        # sign extend to out width
    REDOR = "redor"      # 1-bit reduction
    REDAND = "redand"
    REDXOR = "redxor"


#: Ops that are pure wiring: they move bits without computing on them.
WIRING_OPS = frozenset({CellOp.BUF, CellOp.CONCAT, CellOp.SLICE, CellOp.ZEXT, CellOp.SEXT})

#: 1-bit gate vocabulary produced by lowering.
GATE_OPS = frozenset({CellOp.CONST, CellOp.BUF, CellOp.NOT, CellOp.AND, CellOp.OR, CellOp.XOR})


@dataclass(frozen=True)
class Cell:
    """A combinational operator instance.

    Attributes:
        op: The operator.
        out: Output signal (exactly one per cell).
        ins: Input signals, in operator order.
        params: Operator parameters (``value`` for CONST, ``lo``/``hi``
            for SLICE).
        module: Hierarchical module path owning this cell instance.
    """

    op: CellOp
    out: Signal
    ins: Tuple[Signal, ...]
    params: Tuple[Tuple[str, int], ...] = ()
    module: str = field(default="", compare=False)

    @property
    def param_dict(self) -> Dict[str, int]:
        return dict(self.params)

    def param(self, key: str) -> int:
        for name, value in self.params:
            if name == key:
                return value
        raise KeyError(f"cell {self.out.name} has no param {key!r}")

    def __str__(self) -> str:
        ins = ", ".join(s.name for s in self.ins)
        return f"{self.out} = {self.op.value}({ins})"


class CellValidationError(ValueError):
    """Raised when a cell's widths or arity are inconsistent."""


def _require(cond: bool, cell_desc: str, msg: str) -> None:
    if not cond:
        raise CellValidationError(f"{cell_desc}: {msg}")


def validate_cell(cell: Cell) -> None:
    """Check arity and width consistency of a cell; raise on violation."""
    op, out, ins = cell.op, cell.out, cell.ins
    desc = f"{op.value} -> {out.name}"
    if op is CellOp.CONST:
        _require(len(ins) == 0, desc, "CONST takes no inputs")
        value = cell.param("value")
        _require(0 <= value <= out.mask, desc, f"value {value} out of range for width {out.width}")
    elif op in (CellOp.BUF, CellOp.NOT):
        _require(len(ins) == 1, desc, "takes exactly 1 input")
        _require(ins[0].width == out.width, desc, "input/output widths must match")
    elif op in (CellOp.AND, CellOp.OR, CellOp.XOR):
        _require(len(ins) >= 2, desc, "takes >= 2 inputs")
        _require(all(s.width == out.width for s in ins), desc, "all widths must match output")
    elif op is CellOp.MUX:
        _require(len(ins) == 3, desc, "takes (sel, a, b)")
        sel, a, b = ins
        _require(sel.width == 1, desc, "selector must be 1 bit")
        _require(a.width == b.width == out.width, desc, "data widths must match output")
    elif op in (CellOp.ADD, CellOp.SUB):
        _require(len(ins) == 2, desc, "takes 2 inputs")
        _require(ins[0].width == ins[1].width == out.width, desc, "widths must match")
    elif op in (CellOp.EQ, CellOp.NEQ, CellOp.ULT, CellOp.ULE):
        _require(len(ins) == 2, desc, "takes 2 inputs")
        _require(ins[0].width == ins[1].width, desc, "input widths must match")
        _require(out.width == 1, desc, "output must be 1 bit")
    elif op in (CellOp.SHL, CellOp.SHR):
        _require(len(ins) == 2, desc, "takes (a, shamt)")
        _require(ins[0].width == out.width, desc, "data width must match output")
    elif op is CellOp.CONCAT:
        _require(len(ins) >= 1, desc, "takes >= 1 input")
        _require(sum(s.width for s in ins) == out.width, desc, "output width must equal sum of inputs")
    elif op is CellOp.SLICE:
        _require(len(ins) == 1, desc, "takes 1 input")
        lo, hi = cell.param("lo"), cell.param("hi")
        _require(0 <= lo <= hi < ins[0].width, desc, f"bad slice [{hi}:{lo}] of width {ins[0].width}")
        _require(out.width == hi - lo + 1, desc, "output width must equal slice width")
    elif op in (CellOp.ZEXT, CellOp.SEXT):
        _require(len(ins) == 1, desc, "takes 1 input")
        _require(out.width >= ins[0].width, desc, "extension must not shrink")
    elif op in (CellOp.REDOR, CellOp.REDAND, CellOp.REDXOR):
        _require(len(ins) == 1, desc, "takes 1 input")
        _require(out.width == 1, desc, "output must be 1 bit")
    else:  # pragma: no cover - exhaustive
        raise CellValidationError(f"{desc}: unknown op")


def evaluate_cell(cell: Cell, in_values: Sequence[int]) -> int:
    """Evaluate a cell on concrete unsigned input values.

    This is the single source of truth for cell semantics; the simulator,
    the gate-lowering pass (for checking), and the observability analysis
    all use it.
    """
    op, out = cell.op, cell.out
    if op is CellOp.CONST:
        return cell.param("value")
    if op is CellOp.BUF:
        return in_values[0]
    if op is CellOp.NOT:
        return (~in_values[0]) & out.mask
    if op is CellOp.AND:
        acc = out.mask
        for v in in_values:
            acc &= v
        return acc
    if op is CellOp.OR:
        acc = 0
        for v in in_values:
            acc |= v
        return acc
    if op is CellOp.XOR:
        acc = 0
        for v in in_values:
            acc ^= v
        return acc
    if op is CellOp.MUX:
        sel, a, b = in_values
        return a if sel else b
    if op is CellOp.ADD:
        return (in_values[0] + in_values[1]) & out.mask
    if op is CellOp.SUB:
        return (in_values[0] - in_values[1]) & out.mask
    if op is CellOp.EQ:
        return int(in_values[0] == in_values[1])
    if op is CellOp.NEQ:
        return int(in_values[0] != in_values[1])
    if op is CellOp.ULT:
        return int(in_values[0] < in_values[1])
    if op is CellOp.ULE:
        return int(in_values[0] <= in_values[1])
    if op is CellOp.SHL:
        a, sh = in_values
        if sh >= out.width:
            return 0
        return (a << sh) & out.mask
    if op is CellOp.SHR:
        a, sh = in_values
        if sh >= out.width:
            return 0
        return a >> sh
    if op is CellOp.CONCAT:
        acc = 0
        for sig, v in zip(cell.ins, in_values):
            acc = (acc << sig.width) | (v & sig.mask)
        return acc
    if op is CellOp.SLICE:
        lo, hi = cell.param("lo"), cell.param("hi")
        return (in_values[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
    if op is CellOp.ZEXT:
        return in_values[0]
    if op is CellOp.SEXT:
        in_w = cell.ins[0].width
        v = in_values[0]
        if v >> (in_w - 1):
            v |= out.mask & ~((1 << in_w) - 1)
        return v
    if op is CellOp.REDOR:
        return int(in_values[0] != 0)
    if op is CellOp.REDAND:
        return int(in_values[0] == cell.ins[0].mask)
    if op is CellOp.REDXOR:
        return bin(in_values[0]).count("1") & 1
    raise CellValidationError(f"cannot evaluate op {op}")  # pragma: no cover

"""Netlist simplification: constant propagation, identities, CSE, DCE.

Applied to (usually gate-level) circuits before CNF encoding, this pass
typically shrinks instrumented designs by a large factor: taint logic
instantiates many constant-taint sources, blackbox OR-trees of zeros,
and mux trees with shared subtrees.

The pass preserves, by name: all INPUT signals, all registers (``q``
and reset value), and all OUTPUT signals.  Everything else may be
renamed, merged or removed.  Semantics are preserved exactly (the test
suite cross-simulates against the original).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.hdl.cells import Cell, CellOp, evaluate_cell
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind


class _Simplifier:
    def __init__(self, source: Circuit) -> None:
        self.src = source
        self.out = Circuit(source.name + ".opt")
        #: canonical representation per source signal: ("const", value) or
        #: ("sig", canonical_source_name)
        self.repr: Dict[str, Tuple[str, int]] = {}
        self.cse: Dict[Tuple, str] = {}
        self._const_cells: Dict[Tuple[int, int], str] = {}
        self._tmp = 0

    # ------------------------------------------------------------------
    def run(self) -> Circuit:
        for sig in self.src.inputs:
            self.out.add_signal(sig)
            self.repr[sig.name] = ("sig", sig.name)
        for reg in self.src.registers:
            self.out.add_signal(reg.q)
            self.repr[reg.q.name] = ("sig", reg.q.name)
        for cell in self.src.topo_cells():
            self._simplify_cell(cell)
        # Registers: next values through the canonical map.
        for reg in self.src.registers:
            d_name = self._materialize(reg.d)
            d_sig = self.out.signal(d_name)
            self.out.add_register(Register(reg.q, d_sig, reg.reset_value))
        # Outputs: keep names, driven from canonical sources.
        for sig in self.src.outputs:
            source = self._materialize(sig)
            if source == sig.name:
                continue
            self.out.add_cell(Cell(CellOp.BUF, sig, (self.out.signal(source),), module=sig.module))
        return _eliminate_dead(self.out)

    # ------------------------------------------------------------------
    def _canon(self, sig: Signal) -> Tuple[str, int]:
        entry = self.repr.get(sig.name)
        if entry is None:
            raise KeyError(f"signal {sig.name!r} has no canonical form yet")
        return entry

    def _materialize(self, sig: Signal) -> str:
        """Name (in the output circuit) holding this signal's value."""
        kind, value = self._canon(sig)
        if kind == "sig":
            return value  # type: ignore[return-value]
        return self._const_cell(value, sig.width)

    def _const_cell(self, value: int, width: int) -> str:
        key = (value, width)
        existing = self._const_cells.get(key)
        if existing is not None:
            return existing
        self._tmp += 1
        name = f"_opt_const{self._tmp}"
        out = Signal(name, width, SignalKind.WIRE)
        self.out.add_cell(Cell(CellOp.CONST, out, (), (("value", value),)))
        self._const_cells[key] = name
        return name

    def _emit(self, cell: Cell, in_names: List[str]) -> None:
        """Emit a (possibly CSE-deduped) cell and record its output."""
        key = (cell.op, tuple(in_names), cell.params, cell.out.width)
        existing = self.cse.get(key)
        if existing is not None:
            self.repr[cell.out.name] = ("sig", existing)
            return
        ins = tuple(self.out.signal(n) for n in in_names)
        out = Signal(cell.out.name, cell.out.width, SignalKind.WIRE, module=cell.module)
        self.out.add_cell(Cell(cell.op, out, ins, cell.params, module=cell.module))
        self.cse[key] = out.name
        self.repr[cell.out.name] = ("sig", out.name)

    def _set_const(self, cell: Cell, value: int) -> None:
        self.repr[cell.out.name] = ("const", value & cell.out.mask)

    def _set_alias(self, cell: Cell, source_entry: Tuple[str, int]) -> None:
        self.repr[cell.out.name] = source_entry

    # ------------------------------------------------------------------
    def _simplify_cell(self, cell: Cell) -> None:
        op = cell.op
        entries = [self._canon(s) for s in cell.ins]
        consts = [e[1] if e[0] == "const" else None for e in entries]

        if op is CellOp.CONST:
            self._set_const(cell, cell.param("value"))
            return
        if all(c is not None for c in consts):
            self._set_const(cell, evaluate_cell(cell, [c for c in consts]))  # type: ignore[list-item]
            return
        if op is CellOp.BUF:
            self._set_alias(cell, entries[0])
            return

        if op in (CellOp.AND, CellOp.OR, CellOp.XOR):
            self._simplify_bitwise(cell, entries, consts)
            return
        if op is CellOp.MUX:
            self._simplify_mux(cell, entries, consts)
            return
        if op in (CellOp.ADD, CellOp.SUB):
            if consts[1] == 0:
                self._set_alias(cell, entries[0])
                return
            if op is CellOp.ADD and consts[0] == 0:
                self._set_alias(cell, entries[1])
                return
        if op in (CellOp.SHL, CellOp.SHR):
            if consts[1] == 0:
                self._set_alias(cell, entries[0])
                return
            if consts[1] is not None and consts[1] >= cell.out.width:
                self._set_const(cell, 0)
                return
            if consts[0] == 0:
                self._set_const(cell, 0)
                return
        if op is CellOp.SLICE:
            if cell.param("lo") == 0 and cell.param("hi") == cell.ins[0].width - 1:
                self._set_alias(cell, entries[0])
                return
        if op in (CellOp.ZEXT, CellOp.SEXT):
            if cell.out.width == cell.ins[0].width:
                self._set_alias(cell, entries[0])
                return
        if op in (CellOp.REDOR, CellOp.REDAND, CellOp.REDXOR):
            if cell.ins[0].width == 1:
                self._set_alias(cell, entries[0])
                return
        if op in (CellOp.EQ, CellOp.ULE) and entries[0] == entries[1]:
            self._set_const(cell, 1)
            return
        if op in (CellOp.NEQ, CellOp.ULT) and entries[0] == entries[1]:
            self._set_const(cell, 0)
            return
        self._emit_generic(cell, entries)

    def _emit_generic(self, cell: Cell, entries) -> None:
        in_names = []
        for sig, entry in zip(cell.ins, entries):
            if entry[0] == "const":
                in_names.append(self._const_cell(entry[1], sig.width))
            else:
                in_names.append(entry[1])
        self._emit(cell, in_names)

    def _simplify_bitwise(self, cell: Cell, entries, consts) -> None:
        op = cell.op
        mask = cell.out.mask
        live: List[Tuple[str, int]] = []
        const_acc: Optional[int] = None
        for entry, const in zip(entries, consts):
            if const is not None:
                const_acc = const if const_acc is None else (
                    const_acc & const if op is CellOp.AND
                    else const_acc | const if op is CellOp.OR
                    else const_acc ^ const
                )
            else:
                live.append(entry)
        # Absorbing / identity constants.
        if const_acc is not None:
            if op is CellOp.AND and const_acc == 0:
                self._set_const(cell, 0)
                return
            if op is CellOp.OR and const_acc == mask:
                self._set_const(cell, mask)
                return
            identity = mask if op is CellOp.AND else 0
            if const_acc == identity:
                const_acc = None
        # Duplicate operands.
        if op in (CellOp.AND, CellOp.OR):
            seen: Set[Tuple[str, int]] = set()
            deduped = []
            for entry in live:
                if entry not in seen:
                    seen.add(entry)
                    deduped.append(entry)
            live = deduped
        else:  # XOR: pairs cancel
            counts: Dict[Tuple[str, int], int] = {}
            for entry in live:
                counts[entry] = counts.get(entry, 0) + 1
            live = [entry for entry, n in counts.items() if n % 2 == 1]
        if not live:
            self._set_const(cell, const_acc if const_acc is not None else
                            (mask if op is CellOp.AND else 0))
            return
        if len(live) == 1 and const_acc is None:
            self._set_alias(cell, live[0])
            return
        in_names = [self._entry_name(entry, cell.out.width) for entry in live]
        if const_acc is not None:
            in_names.append(self._const_cell(const_acc, cell.out.width))
        in_names.sort()  # commutative: canonical order helps CSE
        self._emit(cell, in_names)

    def _entry_name(self, entry: Tuple[str, int], width: int) -> str:
        if entry[0] == "const":
            return self._const_cell(entry[1], width)
        return entry[1]  # type: ignore[return-value]

    def _simplify_mux(self, cell: Cell, entries, consts) -> None:
        sel_entry, a_entry, b_entry = entries
        if consts[0] is not None:
            self._set_alias(cell, a_entry if consts[0] else b_entry)
            return
        if a_entry == b_entry:
            self._set_alias(cell, a_entry)
            return
        if cell.out.width == 1 and consts[1] == 1 and consts[2] == 0:
            self._set_alias(cell, sel_entry)
            return
        self._emit_generic(cell, entries)


def _eliminate_dead(circuit: Circuit) -> Circuit:
    """Drop cells not in the cone of any output or register next-value."""
    live: Set[str] = set()
    stack = [sig.name for sig in circuit.outputs]
    stack.extend(reg.d.name for reg in circuit.registers)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        producer = circuit.producer(circuit.signal(name))
        if producer is not None:
            stack.extend(s.name for s in producer.ins)
    out = Circuit(circuit.name)
    for sig in circuit.inputs:
        out.add_signal(sig)
    for reg in circuit.registers:
        out.add_register(reg)
    for cell in circuit.cells:
        if cell.out.name in live:
            out.add_cell(cell)
    out.validate()
    return out


def simplify(circuit: Circuit) -> Circuit:
    """Run the full simplification pipeline on a circuit."""
    return _Simplifier(circuit).run()

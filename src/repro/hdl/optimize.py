"""Netlist simplification: constant propagation, identities, CSE, DCE.

Applied to (usually gate-level) circuits before CNF encoding, this pass
typically shrinks instrumented designs by a large factor: taint logic
instantiates many constant-taint sources, blackbox OR-trees of zeros,
and mux trees with shared subtrees.

The pass preserves, by name: all INPUT signals, all registers (``q``
and reset value), and all OUTPUT signals.  Everything else may be
renamed, merged or removed.  Semantics are preserved exactly (the test
suite cross-simulates against the original).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.hdl.cells import Cell, CellOp, evaluate_cell
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind


class _Simplifier:
    def __init__(self, source: Circuit) -> None:
        self.src = source
        self.out = Circuit(source.name + ".opt")
        #: canonical representation per source signal: ("const", value) or
        #: ("sig", canonical_source_name)
        self.repr: Dict[str, Tuple[str, int]] = {}
        self.cse: Dict[Tuple, str] = {}
        self._const_cells: Dict[Tuple[int, int], str] = {}
        self._tmp = 0

    # ------------------------------------------------------------------
    def run(self, validate: bool = True) -> Circuit:
        for sig in self.src.inputs:
            self.out.add_signal(sig)
            self.repr[sig.name] = ("sig", sig.name)
        for reg in self.src.registers:
            self.out.add_signal(reg.q)
            self.repr[reg.q.name] = ("sig", reg.q.name)
        for cell in self.src.topo_cells():
            self._simplify_cell(cell)
        # Registers: next values through the canonical map.
        for reg in self.src.registers:
            d_name = self._materialize(reg.d)
            d_sig = self.out.signal(d_name)
            self.out.add_register(Register(reg.q, d_sig, reg.reset_value))
        # Outputs: keep names, driven from canonical sources.
        for sig in self.src.outputs:
            source = self._materialize(sig)
            if source == sig.name:
                continue
            self.out.add_cell(Cell(CellOp.BUF, sig, (self.out.signal(source),), module=sig.module))
        return _eliminate_dead(self.out, validate=validate)

    # ------------------------------------------------------------------
    def _canon(self, sig: Signal) -> Tuple[str, int]:
        entry = self.repr.get(sig.name)
        if entry is None:
            raise KeyError(f"signal {sig.name!r} has no canonical form yet")
        return entry

    def _materialize(self, sig: Signal) -> str:
        """Name (in the output circuit) holding this signal's value."""
        kind, value = self._canon(sig)
        if kind == "sig":
            return value  # type: ignore[return-value]
        return self._const_cell(value, sig.width)

    def _const_cell(self, value: int, width: int) -> str:
        key = (value, width)
        existing = self._const_cells.get(key)
        if existing is not None:
            return existing
        self._tmp += 1
        name = f"_opt_const{self._tmp}"
        out = Signal(name, width, SignalKind.WIRE)
        self.out.add_cell(Cell(CellOp.CONST, out, (), (("value", value),)))
        self._const_cells[key] = name
        return name

    def _emit(self, cell: Cell, in_names: List[str]) -> None:
        """Emit a (possibly CSE-deduped) cell and record its output."""
        key = (cell.op, tuple(in_names), cell.params, cell.out.width)
        existing = self.cse.get(key)
        if existing is not None:
            self.repr[cell.out.name] = ("sig", existing)
            return
        ins = tuple(self.out.signal(n) for n in in_names)
        out = Signal(cell.out.name, cell.out.width, SignalKind.WIRE, module=cell.module)
        self.out.add_cell(Cell(cell.op, out, ins, cell.params, module=cell.module))
        self.cse[key] = out.name
        self.repr[cell.out.name] = ("sig", out.name)

    def _set_const(self, cell: Cell, value: int) -> None:
        self.repr[cell.out.name] = ("const", value & cell.out.mask)

    def _set_alias(self, cell: Cell, source_entry: Tuple[str, int]) -> None:
        self.repr[cell.out.name] = source_entry

    # ------------------------------------------------------------------
    def _simplify_cell(self, cell: Cell) -> None:
        op = cell.op
        entries = [self._canon(s) for s in cell.ins]
        consts = [e[1] if e[0] == "const" else None for e in entries]

        if op is CellOp.CONST:
            self._set_const(cell, cell.param("value"))
            return
        if all(c is not None for c in consts):
            self._set_const(cell, evaluate_cell(cell, [c for c in consts]))  # type: ignore[list-item]
            return
        if op is CellOp.BUF:
            self._set_alias(cell, entries[0])
            return

        if op in (CellOp.AND, CellOp.OR, CellOp.XOR):
            self._simplify_bitwise(cell, entries, consts)
            return
        if op is CellOp.MUX:
            self._simplify_mux(cell, entries, consts)
            return
        if op in (CellOp.ADD, CellOp.SUB):
            if consts[1] == 0:
                self._set_alias(cell, entries[0])
                return
            if op is CellOp.ADD and consts[0] == 0:
                self._set_alias(cell, entries[1])
                return
        if op in (CellOp.SHL, CellOp.SHR):
            if consts[1] == 0:
                self._set_alias(cell, entries[0])
                return
            if consts[1] is not None and consts[1] >= cell.out.width:
                self._set_const(cell, 0)
                return
            if consts[0] == 0:
                self._set_const(cell, 0)
                return
        if op is CellOp.SLICE:
            if cell.param("lo") == 0 and cell.param("hi") == cell.ins[0].width - 1:
                self._set_alias(cell, entries[0])
                return
        if op in (CellOp.ZEXT, CellOp.SEXT):
            if cell.out.width == cell.ins[0].width:
                self._set_alias(cell, entries[0])
                return
        if op in (CellOp.REDOR, CellOp.REDAND, CellOp.REDXOR):
            if cell.ins[0].width == 1:
                self._set_alias(cell, entries[0])
                return
        if op in (CellOp.EQ, CellOp.ULE) and entries[0] == entries[1]:
            self._set_const(cell, 1)
            return
        if op in (CellOp.NEQ, CellOp.ULT) and entries[0] == entries[1]:
            self._set_const(cell, 0)
            return
        self._emit_generic(cell, entries)

    def _emit_generic(self, cell: Cell, entries) -> None:
        in_names = []
        for sig, entry in zip(cell.ins, entries):
            if entry[0] == "const":
                in_names.append(self._const_cell(entry[1], sig.width))
            else:
                in_names.append(entry[1])
        self._emit(cell, in_names)

    def _simplify_bitwise(self, cell: Cell, entries, consts) -> None:
        op = cell.op
        mask = cell.out.mask
        live: List[Tuple[str, int]] = []
        const_acc: Optional[int] = None
        for entry, const in zip(entries, consts):
            if const is not None:
                const_acc = const if const_acc is None else (
                    const_acc & const if op is CellOp.AND
                    else const_acc | const if op is CellOp.OR
                    else const_acc ^ const
                )
            else:
                live.append(entry)
        # Absorbing / identity constants.
        if const_acc is not None:
            if op is CellOp.AND and const_acc == 0:
                self._set_const(cell, 0)
                return
            if op is CellOp.OR and const_acc == mask:
                self._set_const(cell, mask)
                return
            identity = mask if op is CellOp.AND else 0
            if const_acc == identity:
                const_acc = None
        # Duplicate operands.
        if op in (CellOp.AND, CellOp.OR):
            seen: Set[Tuple[str, int]] = set()
            deduped = []
            for entry in live:
                if entry not in seen:
                    seen.add(entry)
                    deduped.append(entry)
            live = deduped
        else:  # XOR: pairs cancel
            counts: Dict[Tuple[str, int], int] = {}
            for entry in live:
                counts[entry] = counts.get(entry, 0) + 1
            live = [entry for entry, n in counts.items() if n % 2 == 1]
        if not live:
            self._set_const(cell, const_acc if const_acc is not None else
                            (mask if op is CellOp.AND else 0))
            return
        if len(live) == 1 and const_acc is None:
            self._set_alias(cell, live[0])
            return
        in_names = [self._entry_name(entry, cell.out.width) for entry in live]
        if const_acc is not None:
            in_names.append(self._const_cell(const_acc, cell.out.width))
        in_names.sort()  # commutative: canonical order helps CSE
        self._emit(cell, in_names)

    def _entry_name(self, entry: Tuple[str, int], width: int) -> str:
        if entry[0] == "const":
            return self._const_cell(entry[1], width)
        return entry[1]  # type: ignore[return-value]

    def _simplify_mux(self, cell: Cell, entries, consts) -> None:
        sel_entry, a_entry, b_entry = entries
        if consts[0] is not None:
            self._set_alias(cell, a_entry if consts[0] else b_entry)
            return
        if a_entry == b_entry:
            self._set_alias(cell, a_entry)
            return
        if cell.out.width == 1 and consts[1] == 1 and consts[2] == 0:
            self._set_alias(cell, sel_entry)
            return
        self._emit_generic(cell, entries)


def cone_of_influence(circuit: Circuit, roots: "Iterable[str]",
                      validate: bool = True) -> Circuit:
    """Restrict a circuit to the logic that can influence ``roots``.

    ``roots`` are signal names (typically a property's ``bad``,
    assumption and monitor signals at gate level).  The cone walks
    backwards through cells and *through registers*: reaching a
    register's ``q`` pulls the cone of its ``d`` in, so the result is
    closed under sequential influence — sound for unrolled reachability
    checks at any depth.

    Unlike :func:`_eliminate_dead` (which keeps every output and
    register), this drops registers, outputs and cells outside the
    cone.  All INPUT signals are kept even when unreferenced: a pruned
    input costs one unconstrained solver variable and zero clauses, and
    keeping them means counterexamples still assign every input of the
    original interface.
    """
    live: Set[str] = set()
    register_of = {reg.q.name: reg for reg in circuit.registers}
    stack = [name for name in roots]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        reg = register_of.get(name)
        if reg is not None:
            stack.append(reg.d.name)
            continue
        producer = circuit.producer(circuit.signal(name))
        if producer is not None:
            stack.extend(s.name for s in producer.ins)
    out = Circuit(circuit.name)
    for sig in circuit.inputs:
        out.add_signal(sig)
    for reg in circuit.registers:
        if reg.q.name in live:
            out.add_register(reg)
    for cell in circuit.cells:
        if cell.out.name in live:
            out.adopt_cell(cell)
    if validate:
        out.validate()
    return out


class _Strasher:
    """Structural hashing over 1-bit gates with signed edges.

    Every 1-bit signal is reduced to an *edge* ``(node, negated)``
    where ``node`` is a canonical signal name in the output circuit (or
    ``None`` for a constant).  ``BUF``/``NOT`` fold into the edge
    phase, and ``AND``/``OR``/``XOR`` nodes are hash-consed on
    ``(op, sorted signed inputs)``, so gates that differ only in
    operand order, buffering or input polarity spelling hash to the
    same node.  Taint instrumentation duplicates the host design's
    logic as shadow logic — shared cones between original and shadow
    collapse here.

    ``OR`` is deliberately *not* De-Morganed into ``AND``: doing so
    materialises a NOT wall at every phase boundary and restructures
    the CNF for no extra dedup on real netlists (the duplicates taint
    instrumentation creates are op-identical).

    Cells that are not 1-bit gates pass through unchanged, which keeps
    the pass safe on arbitrary circuits (it just does nothing for
    them).
    """

    _FALSE = (None, False)
    _TRUE = (None, True)

    def __init__(self, source: Circuit) -> None:
        self.src = source
        self.out = Circuit(source.name)
        #: source signal name -> (canonical node name | None, negated)
        self.edge: Dict[str, Tuple[Optional[str], bool]] = {}
        #: structural key -> canonical node name
        self.nodes: Dict[Tuple, str] = {}
        self._tmp = 0

    def run(self, validate: bool = True) -> Circuit:
        for sig in self.src.inputs:
            self.out.add_signal(sig)
            self.edge[sig.name] = (sig.name, False)
        for reg in self.src.registers:
            self.out.add_signal(reg.q)
            self.edge[reg.q.name] = (reg.q.name, False)
        for cell in self.src.topo_cells():
            self._hash_cell(cell)
        for reg in self.src.registers:
            d_name = self._materialize(self.edge[reg.d.name], reg.d.width)
            self.out.add_register(
                Register(reg.q, self.out.signal(d_name), reg.reset_value))
        for sig in self.src.outputs:
            self._drive_output(sig)
        return _eliminate_dead(self.out, validate=validate)

    # ------------------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._tmp += 1
        return f"_st_{prefix}{self._tmp}"

    def _materialize(self, edge: Tuple[Optional[str], bool], width: int) -> str:
        """Name of an output-circuit signal carrying this edge's value."""
        node, negated = edge
        if node is None:
            key = ("const", int(negated))
            existing = self.nodes.get(key)
            if existing is not None:
                return existing
            name = self._fresh_name("const")
            sig = Signal(name, width, SignalKind.WIRE)
            self.out.add_cell(
                Cell(CellOp.CONST, sig, (), (("value", int(negated)),)))
            self.nodes[key] = name
            return name
        if not negated:
            return node
        key = ("not", node)
        existing = self.nodes.get(key)
        if existing is not None:
            return existing
        name = self._fresh_name("not")
        sig = Signal(name, width, SignalKind.WIRE)
        self.out.add_cell(Cell(CellOp.NOT, sig, (self.out.signal(node),)))
        self.nodes[key] = name
        return name

    def _drive_output(self, sig: Signal) -> None:
        """Re-create an OUTPUT signal, by name, from its canonical edge."""
        node, negated = self.edge[sig.name]
        if node == sig.name and not negated:
            return  # the canonical node *is* the output signal
        out_sig = Signal(sig.name, sig.width, SignalKind.OUTPUT, module=sig.module)
        if node is None:
            self.out.add_cell(
                Cell(CellOp.CONST, out_sig, (), (("value", int(negated)),)))
        elif negated:
            self.out.add_cell(Cell(CellOp.NOT, out_sig, (self.out.signal(node),)))
        else:
            self.out.add_cell(Cell(CellOp.BUF, out_sig, (self.out.signal(node),)))

    def _emit_node(self, cell: Cell, key: Tuple, op: CellOp,
                   in_edges: List[Tuple[Optional[str], bool]]) -> Tuple[str, bool]:
        """Hash-cons a gate node; returns its positive edge."""
        existing = self.nodes.get(key)
        if existing is not None:
            return (existing, False)
        ins = tuple(
            self.out.signal(self._materialize(edge, 1)) for edge in in_edges)
        # Keep the source name when it is free (preserves readability and
        # lets outputs be their own canonical node); OUTPUT-kind signals
        # are re-driven separately so the node itself stays a wire.
        if cell.out.kind is SignalKind.WIRE and cell.out.name not in self.out.signals:
            sig = Signal(cell.out.name, 1, SignalKind.WIRE, module=cell.module)
        else:
            sig = Signal(self._fresh_name("n"), 1, SignalKind.WIRE, module=cell.module)
        self.out.add_cell(Cell(op, sig, ins, module=cell.module))
        self.nodes[key] = sig.name
        return (sig.name, False)

    def _hash_cell(self, cell: Cell) -> None:
        op = cell.op
        out_name = cell.out.name
        if cell.out.width == 1 and op in (
                CellOp.CONST, CellOp.BUF, CellOp.NOT,
                CellOp.AND, CellOp.OR, CellOp.XOR):
            if op is CellOp.CONST:
                self.edge[out_name] = self._TRUE if cell.param("value") & 1 else self._FALSE
                return
            ins = [self.edge[s.name] for s in cell.ins]
            if op is CellOp.BUF:
                self.edge[out_name] = ins[0]
                return
            if op is CellOp.NOT:
                node, negated = ins[0]
                self.edge[out_name] = (node, not negated)
                return
            if op is CellOp.AND:
                self.edge[out_name] = self._strash_andor(cell, CellOp.AND, ins)
                return
            if op is CellOp.OR:
                self.edge[out_name] = self._strash_andor(cell, CellOp.OR, ins)
                return
            self.edge[out_name] = self._strash_xor(cell, ins)
            return
        # Generic pass-through for non-gate cells (word-level circuits).
        in_names = [self._materialize(self.edge[s.name], s.width) for s in cell.ins]
        ins = tuple(self.out.signal(n) for n in in_names)
        out_sig = cell.out
        if out_sig.name in self.out.signals and self.out.signals[out_sig.name] != out_sig:
            out_sig = Signal(self._fresh_name("w"), out_sig.width, out_sig.kind,
                             module=cell.module)
        self.out.add_cell(Cell(op, out_sig, ins, cell.params, module=cell.module))
        self.edge[out_name] = (out_sig.name, False)

    def _strash_andor(self, cell: Cell, op: CellOp,
                      ins: List[Tuple[Optional[str], bool]]) -> Tuple[Optional[str], bool]:
        is_and = op is CellOp.AND
        absorbing = self._FALSE if is_and else self._TRUE
        live: List[Tuple[str, bool]] = []
        seen: Set[Tuple[str, bool]] = set()
        for node, negated in ins:
            if node is None:
                if negated != is_and:
                    return absorbing  # x AND 0 / x OR 1
                continue  # identity constant
            if (node, not negated) in seen:
                return absorbing  # x AND ~x / x OR ~x
            if (node, negated) not in seen:
                seen.add((node, negated))
                live.append((node, negated))
        if not live:
            return self._TRUE if is_and else self._FALSE
        if len(live) == 1:
            return live[0]
        live.sort(key=lambda e: (e[0], e[1]))
        key = (op.value, tuple(live))
        return self._emit_node(cell, key, op, list(live))

    def _strash_xor(self, cell: Cell,
                    ins: List[Tuple[Optional[str], bool]]) -> Tuple[Optional[str], bool]:
        parity = False
        counts: Dict[str, int] = {}
        for node, negated in ins:
            parity ^= negated  # XOR(~a, b) == ~XOR(a, b); consts fold too
            if node is not None:
                counts[node] = counts.get(node, 0) + 1
        nodes = sorted(n for n, c in counts.items() if c % 2 == 1)
        if not nodes:
            return (None, parity)
        if len(nodes) == 1:
            return (nodes[0], parity)
        key = ("xor", tuple(nodes))
        node, _ = self._emit_node(
            cell, key, CellOp.XOR, [(n, False) for n in nodes])
        return (node, parity)


def strash(circuit: Circuit, validate: bool = True) -> Circuit:
    """Hash-cons structurally identical 1-bit gates (see :class:`_Strasher`)."""
    return _Strasher(circuit).run(validate=validate)


def _eliminate_dead(circuit: Circuit, validate: bool = True) -> Circuit:
    """Drop cells not in the cone of any output or register next-value."""
    live: Set[str] = set()
    stack = [sig.name for sig in circuit.outputs]
    stack.extend(reg.d.name for reg in circuit.registers)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        producer = circuit.producer(circuit.signal(name))
        if producer is not None:
            stack.extend(s.name for s in producer.ins)
    out = Circuit(circuit.name)
    for sig in circuit.inputs:
        out.add_signal(sig)
    for reg in circuit.registers:
        out.add_register(reg)
    for cell in circuit.cells:
        if cell.out.name in live:
            out.adopt_cell(cell)
    if validate:
        out.validate()
    return out


def simplify(circuit: Circuit, validate: bool = True) -> Circuit:
    """Run the full simplification pipeline on a circuit.

    ``validate=False`` skips the output invariant check — for use in
    pass pipelines that validate once at the end.
    """
    return _Simplifier(circuit).run(validate=validate)

"""Circuit size statistics (gate counts, register bits).

These are the quantities Figure 5 of the paper reports: the number of
logic gates and register bits in an instrumented processor, normalized
to the original, uninstrumented design.  "Gates" means 1-bit gates after
:func:`~repro.hdl.lowering.lower_to_gates`; ``BUF`` and ``CONST`` cells
are wiring, not logic, and are excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.hdl.cells import CellOp, GATE_OPS, WIRING_OPS
from repro.hdl.circuit import Circuit
from repro.hdl.lowering import lower_to_gates

_NON_LOGIC = {CellOp.BUF, CellOp.CONST}


def _is_gate_level(circuit: Circuit) -> bool:
    return all(cell.op in GATE_OPS for cell in circuit.cells)


def gate_count(circuit: Circuit) -> int:
    """Number of 1-bit logic gates after lowering (BUF/CONST excluded)."""
    gates = circuit if _is_gate_level(circuit) else lower_to_gates(circuit).circuit
    return sum(1 for cell in gates.cells if cell.op not in _NON_LOGIC)


def register_bits(circuit: Circuit) -> int:
    """Total number of state bits."""
    return sum(reg.q.width for reg in circuit.registers)


def cell_count(circuit: Circuit, include_wiring: bool = False) -> int:
    """Number of cell instances (macrocells) in the circuit."""
    if include_wiring:
        return len(circuit.cells)
    return sum(1 for cell in circuit.cells if cell.op not in WIRING_OPS and cell.op is not CellOp.CONST)


@dataclass
class CircuitStats:
    """Size summary of one circuit."""

    name: str
    cells: int
    gates: int
    reg_bits: int
    per_module_reg_bits: Dict[str, int] = field(default_factory=dict)
    per_module_cells: Dict[str, int] = field(default_factory=dict)

    def overhead_vs(self, base: "CircuitStats") -> Dict[str, float]:
        """Fractional overhead of this circuit relative to ``base``.

        Returns gate and register-bit overheads, e.g. ``{"gates": 2.93,
        "reg_bits": 1.0}`` meaning +293 % gates and +100 % register bits.
        """
        def frac(ours: int, theirs: int) -> float:
            return (ours - theirs) / theirs if theirs else 0.0

        return {
            "gates": frac(self.gates, base.gates),
            "reg_bits": frac(self.reg_bits, base.reg_bits),
        }


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute full statistics including per-module breakdowns."""
    per_module_reg_bits: Dict[str, int] = {}
    for reg in circuit.registers:
        per_module_reg_bits[reg.q.module] = per_module_reg_bits.get(reg.q.module, 0) + reg.q.width
    per_module_cells: Dict[str, int] = {}
    for cell in circuit.cells:
        if cell.op in WIRING_OPS or cell.op is CellOp.CONST:
            continue
        per_module_cells[cell.module] = per_module_cells.get(cell.module, 0) + 1
    return CircuitStats(
        name=circuit.name,
        cells=cell_count(circuit),
        gates=gate_count(circuit),
        reg_bits=register_bits(circuit),
        per_module_reg_bits=per_module_reg_bits,
        per_module_cells=per_module_cells,
    )

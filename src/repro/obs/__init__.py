"""Observability: span tracing, metrics, exporters, summarization.

The subsystem behind ``python -m repro verify --trace`` and
``python -m repro trace summarize`` — see :mod:`repro.obs.tracer` for
the recording model and ``docs/observability.md`` for the user guide.
"""

from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.export import (
    FORMATS,
    write_chrome_trace,
    write_jsonl,
    write_trace,
    write_trace_file,
)
from repro.obs.summarize import (
    SpanRecord,
    TraceSummary,
    load_trace,
    render_summary,
    summarize_file,
    summary_from_events,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "FORMATS",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
    "write_trace_file",
    "SpanRecord",
    "TraceSummary",
    "load_trace",
    "render_summary",
    "summarize_file",
    "summary_from_events",
]

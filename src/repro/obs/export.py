"""Trace exporters: JSONL structured events and Chrome trace-event JSON.

Two formats, one event model (see :class:`repro.obs.tracer.Tracer`):

- **JSONL** — one JSON object per line, timestamps rebased to seconds
  since the tracer epoch.  Greppable, streamable, the format
  ``python -m repro trace summarize`` prefers.
- **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` document
  understood by Perfetto (https://ui.perfetto.dev) and Chrome's
  ``about:tracing``.  Spans become ``"X"`` complete events (microsecond
  units), counters become ``"C"`` events carrying running totals, and
  process tracks are labelled with ``"M"`` metadata events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TextIO

#: Format names accepted by the CLI and :func:`write_trace`.
FORMATS = ("jsonl", "chrome")


def _rebased(events: Iterable[Dict[str, Any]], epoch: float) -> List[Dict[str, Any]]:
    """Copy events with timestamps rebased to seconds since ``epoch``."""
    out = []
    for event in events:
        event = dict(event)
        if "ts" in event:
            event["ts"] = event["ts"] - epoch
        out.append(event)
    return out


def write_jsonl(tracer, stream: TextIO) -> None:
    """Write the tracer's events as one JSON object per line."""
    for event in _rebased(tracer.snapshot_events(), tracer.epoch):
        stream.write(json.dumps(event, sort_keys=True, default=str))
        stream.write("\n")


def write_chrome_trace(tracer, stream: TextIO) -> None:
    """Write a Chrome trace-event document (open in Perfetto)."""
    trace_events: List[Dict[str, Any]] = []
    running: Dict[tuple, float] = {}  # (pid, name) -> running counter total
    events = sorted(
        _rebased(tracer.snapshot_events(), tracer.epoch),
        key=lambda e: e.get("ts", 0.0),
    )
    for event in events:
        kind = event.get("type")
        if kind == "span":
            trace_events.append({
                "name": event["name"],
                "cat": event.get("cat") or "span",
                "ph": "X",
                "ts": round(event["ts"] * 1e6, 3),
                "dur": round(event["dur"] * 1e6, 3),
                "pid": event["pid"],
                "tid": event["tid"],
                "args": event.get("args") or {},
            })
        elif kind == "counter":
            key = (event["pid"], event["name"])
            running[key] = running.get(key, 0) + event["value"]
            trace_events.append({
                "name": event["name"],
                "ph": "C",
                "ts": round(event["ts"] * 1e6, 3),
                "pid": event["pid"],
                "tid": event["tid"],
                "args": {"value": running[key]},
            })
        elif kind == "gauge":
            trace_events.append({
                "name": event["name"],
                "ph": "C",
                "ts": round(event["ts"] * 1e6, 3),
                "pid": event["pid"],
                "tid": event["tid"],
                "args": {"value": event["value"]},
            })
        elif kind == "meta":
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": event["pid"],
                "args": {"name": event["label"]},
            })
    json.dump({"traceEvents": trace_events, "displayTimeUnit": "ms"},
              stream, default=str)
    stream.write("\n")


def write_trace(tracer, stream: TextIO, fmt: str = "chrome") -> None:
    """Dispatch on format name (``jsonl`` or ``chrome``)."""
    if fmt == "jsonl":
        write_jsonl(tracer, stream)
    elif fmt == "chrome":
        write_chrome_trace(tracer, stream)
    else:
        raise ValueError(f"unknown trace format {fmt!r} (expected one of {FORMATS})")


def write_trace_file(tracer, path: str, fmt: str = "chrome") -> None:
    """Write a trace to ``path`` atomically (write-tmp-then-rename).

    A crash mid-export never leaves a truncated trace under ``path``.
    """
    from repro.ioutil import atomic_write

    if fmt not in FORMATS:  # validate before touching the filesystem
        raise ValueError(f"unknown trace format {fmt!r} (expected one of {FORMATS})")
    with atomic_write(path) as handle:
        write_trace(tracer, handle, fmt)

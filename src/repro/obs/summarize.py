"""Trace summarization: where did the time go?

Loads a trace file written by :mod:`repro.obs.export` — either format,
auto-detected — and renders an aggregate view: top spans by self-time
(time in the span minus time in its children), per-category phase
totals (the Table-3 t_MC / t_Simu / t_BT / t_Gen split, recomputed from
the spans), and counter totals (SAT conflicts, cache hits, ...).

Used by ``python -m repro trace summarize <file>``.
"""

from __future__ import annotations

import json
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class SpanRecord:
    """One loaded span, with nesting-derived self-time."""

    name: str
    cat: Optional[str]
    ts: float          # seconds since trace epoch
    dur: float         # seconds
    pid: int
    tid: int
    args: Dict = field(default_factory=dict)
    child_dur: float = 0.0
    cat_ancestors: frozenset = frozenset()

    @property
    def end(self) -> float:
        return self.ts + self.dur

    @property
    def self_time(self) -> float:
        return max(0.0, self.dur - self.child_dur)


@dataclass
class TraceSummary:
    spans: List[SpanRecord]
    counters: Dict[str, float]
    gauges: Dict[str, float]
    track_labels: Dict[int, str] = field(default_factory=dict)

    @property
    def tracks(self) -> List[Tuple[int, int]]:
        return sorted({(s.pid, s.tid) for s in self.spans})

    @property
    def wall(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.ts for s in self.spans)

    def by_name(self) -> List[Tuple[str, int, float, float]]:
        """(name, count, total dur, total self-time), self-time desc."""
        count: Dict[str, int] = defaultdict(int)
        total: Dict[str, float] = defaultdict(float)
        self_t: Dict[str, float] = defaultdict(float)
        for span in self.spans:
            count[span.name] += 1
            total[span.name] += span.dur
            self_t[span.name] += span.self_time
        rows = [(name, count[name], total[name], self_t[name]) for name in count]
        rows.sort(key=lambda r: -r[3])
        return rows

    def category_totals(self) -> Dict[str, float]:
        """Total time per span category, counting only outermost spans.

        A span nested (in the same track) inside another span of the
        same category does not count again, so e.g. per-frame engine
        spans inside a model-checking phase span cannot double the
        phase total.
        """
        totals: Dict[str, float] = defaultdict(float)
        for span in self.spans:
            if span.cat and span.cat not in span.cat_ancestors:
                totals[span.cat] += span.dur
        return dict(totals)


def _link_nesting(spans: List[SpanRecord]) -> None:
    """Derive child durations / category ancestry from interval nesting."""
    by_track: Dict[Tuple[int, int], List[SpanRecord]] = defaultdict(list)
    for span in spans:
        by_track[(span.pid, span.tid)].append(span)
    for track in by_track.values():
        track.sort(key=lambda s: (s.ts, -s.dur))
        stack: List[SpanRecord] = []
        for span in track:
            while stack and stack[-1].end <= span.ts + 1e-9:
                stack.pop()
            if stack:
                parent = stack[-1]
                parent.child_dur += min(span.dur, max(0.0, parent.end - span.ts))
                span.cat_ancestors = parent.cat_ancestors | (
                    frozenset((parent.cat,)) if parent.cat else frozenset()
                )
            stack.append(span)


def _load_chrome(doc) -> TraceSummary:
    events = doc.get("traceEvents", doc) if isinstance(doc, dict) else doc
    spans: List[SpanRecord] = []
    last_counter: Dict[Tuple[int, str], float] = {}
    labels: Dict[int, str] = {}
    for event in events:
        ph = event.get("ph")
        if ph == "X":
            spans.append(SpanRecord(
                name=str(event.get("name", "?")),
                cat=event.get("cat") if event.get("cat") != "span" else None,
                ts=float(event.get("ts", 0.0)) / 1e6,
                dur=float(event.get("dur", 0.0)) / 1e6,
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                args=dict(event.get("args") or {}),
            ))
        elif ph == "C":
            value = (event.get("args") or {}).get("value", 0)
            last_counter[(int(event.get("pid", 0)), str(event["name"]))] = float(value)
        elif ph == "M" and event.get("name") == "process_name":
            labels[int(event.get("pid", 0))] = str((event.get("args") or {}).get("name", ""))
    # Chrome "C" events carry per-process running totals: the final
    # value per (pid, name) is that process's total; sum across pids.
    counters: Dict[str, float] = defaultdict(float)
    for (_pid, name), value in last_counter.items():
        counters[name] += value
    _link_nesting(spans)
    return TraceSummary(spans, dict(counters), {}, labels)


def _load_jsonl(lines: List[str]) -> TraceSummary:
    return summary_from_events(
        [json.loads(line) for line in lines if line.strip()]
    )


def summary_from_events(events: List[Dict]) -> TraceSummary:
    """Summarize live tracer events (no file round-trip).

    Accepts the plain event dicts of :meth:`repro.obs.Tracer
    .snapshot_events`; timestamps stay on the recording clock, which is
    fine for aggregation (only durations and relative order matter).
    """
    spans: List[SpanRecord] = []
    counters: Dict[str, float] = defaultdict(float)
    gauges: Dict[str, float] = {}
    labels: Dict[int, str] = {}
    for event in events:
        kind = event.get("type")
        if kind == "span":
            spans.append(SpanRecord(
                name=str(event["name"]),
                cat=event.get("cat"),
                ts=float(event["ts"]),
                dur=float(event["dur"]),
                pid=int(event.get("pid", 0)),
                tid=int(event.get("tid", 0)),
                args=dict(event.get("args") or {}),
            ))
        elif kind == "counter":
            counters[str(event["name"])] += float(event["value"])
        elif kind == "gauge":
            gauges[str(event["name"])] = float(event["value"])
        elif kind == "meta":
            labels[int(event["pid"])] = str(event.get("label", ""))
    _link_nesting(spans)
    return TraceSummary(spans, dict(counters), gauges, labels)


def load_trace(path: str) -> TraceSummary:
    """Load a trace file, auto-detecting JSONL vs Chrome trace JSON."""
    with open(path) as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return TraceSummary([], {}, {})
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _load_chrome(doc)
    if isinstance(doc, list):
        return _load_chrome(doc)
    if isinstance(doc, dict) and doc.get("type"):
        # A single-line JSONL file parses as one event object.
        return _load_jsonl([text])
    return _load_jsonl(text.splitlines())


def render_summary(summary: TraceSummary, top: int = 15) -> str:
    """Human-readable aggregate of a loaded trace."""
    lines: List[str] = []
    lines.append(
        f"{len(summary.spans)} spans on {len(summary.tracks)} track(s), "
        f"wall {summary.wall:.2f}s"
    )
    for pid, label in sorted(summary.track_labels.items()):
        lines.append(f"  track pid={pid}: {label}")

    cats = summary.category_totals()
    if cats:
        lines.append("")
        lines.append("phase totals (by span category):")
        for cat in sorted(cats, key=lambda c: -cats[c]):
            lines.append(f"  {cat:<10} {cats[cat]:8.3f}s")

    rows = summary.by_name()
    if rows:
        lines.append("")
        lines.append("top spans by self-time:")
        lines.append(f"  {'name':<32} {'count':>6} {'total':>9} {'self':>9}")
        for name, count, total, self_t in rows[:top]:
            lines.append(
                f"  {name:<32} {count:>6} {total:>8.3f}s {self_t:>8.3f}s"
            )
        if len(rows) > top:
            lines.append(f"  ... {len(rows) - top} more span name(s)")

    if summary.counters:
        lines.append("")
        lines.append("counter totals:")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            shown = int(value) if value == int(value) else value
            lines.append(f"  {name:<32} {shown}")
    if summary.gauges:
        lines.append("")
        lines.append("gauges (last value):")
        for name in sorted(summary.gauges):
            lines.append(f"  {name:<32} {summary.gauges[name]}")
    return "\n".join(lines)


def summarize_file(path: str, top: int = 15) -> str:
    return render_summary(load_trace(path), top=top)

"""Span-based tracing and metrics for verification runs.

The CEGAR loop's performance story (Table 3's t_MC / t_Simu / t_BT /
t_Gen breakdown, Figure 6's simulation overhead) needs more than four
accumulated floats to debug: *which* model-checking call was slow,
*which* refinement triggered the re-instrumentation storm, how many SAT
conflicts a frame cost.  This module provides the primitives:

- :class:`Tracer` — records hierarchical *spans* (named wall-clock
  intervals, nestable via context manager, thread-safe) plus *counter*
  and *gauge* metrics.  Events are plain dicts so they pickle across
  :mod:`multiprocessing` workers; a worker's events are merged onto the
  parent timeline with the worker's pid as the track id.
- :data:`NULL_TRACER` — the disabled singleton.  Its spans still
  measure wall clock (the CEGAR loop feeds span elapsed times into the
  Table-3 statistics either way) but record nothing, so tracing
  disabled costs two ``time.monotonic()`` calls per span and zero
  allocations beyond a tiny stopwatch object.  Inner simulator and SAT
  propagation loops are never instrumented at all.

Exporters live in :mod:`repro.obs.export` (JSONL and Chrome
trace-event JSON, loadable in Perfetto / ``about:tracing``);
:mod:`repro.obs.summarize` renders top-spans-by-self-time reports.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional


class Span:
    """One live span; use as a context manager.

    ``elapsed`` is valid after exit (and, mid-flight, reads the clock).
    ``set(key=value)`` attaches arguments shown in trace viewers.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "start", "end", "_child_dur")

    def __init__(self, tracer: "Tracer", name: str, cat: Optional[str],
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.start = 0.0
        self.end = 0.0
        self._child_dur = 0.0

    @property
    def elapsed(self) -> float:
        if self.end:
            return self.end - self.start
        return time.monotonic() - self.start

    def set(self, **args: Any) -> None:
        self.args.update(args)

    def __enter__(self) -> "Span":
        self.start = time.monotonic()
        self._tracer._push(self)
        return self

    def __exit__(self, *exc) -> bool:
        self.end = time.monotonic()
        self._tracer._pop(self)
        return False


class _Stopwatch:
    """The disabled tracer's span: measures wall clock, records nothing."""

    __slots__ = ("start", "end")

    @property
    def elapsed(self) -> float:
        if self.end:
            return self.end - self.start
        return time.monotonic() - self.start

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_Stopwatch":
        self.start = time.monotonic()
        self.end = 0.0
        return self

    def __exit__(self, *exc) -> bool:
        self.end = time.monotonic()
        return False


class Tracer:
    """Thread-safe span/counter/gauge recorder.

    Events are stored as plain dicts with *absolute* ``time.monotonic()``
    timestamps (``CLOCK_MONOTONIC`` is system-wide, so worker-process
    events recorded against the same clock merge onto one timeline);
    exporters rebase them against :attr:`epoch`.

    Event shapes::

        {"type": "span", "name", "cat", "ts", "dur", "self",
         "pid", "tid", "args"}
        {"type": "counter", "name", "ts", "value", "pid", "tid"}
        {"type": "gauge", "name", "ts", "value", "pid", "tid"}
        {"type": "meta", "pid", "label"}
    """

    enabled = True

    def __init__(self) -> None:
        self.epoch = time.monotonic()
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._stacks = threading.local()
        self._counters: Dict[str, float] = {}

    # -- spans ----------------------------------------------------------
    def span(self, name: str, cat: Optional[str] = None, **args: Any) -> Span:
        return Span(self, name, cat, args)

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if stack:
            stack[-1]._child_dur += span.end - span.start
        dur = span.end - span.start
        event = {
            "type": "span", "name": span.name, "cat": span.cat,
            "ts": span.start, "dur": dur,
            "self": max(0.0, dur - span._child_dur),
            "pid": os.getpid(), "tid": threading.get_ident(),
            "args": span.args,
        }
        with self._lock:
            self._events.append(event)

    def add_span(self, name: str, cat: Optional[str], duration: float,
                 **args: Any) -> None:
        """Record a span whose duration was measured externally.

        Used to fold sub-phase timings that another component already
        measured (e.g. a refinement's generate/simulate split) into the
        trace; the span is backdated to end *now*.
        """
        now = time.monotonic()
        event = {
            "type": "span", "name": name, "cat": cat,
            "ts": now - duration, "dur": duration, "self": duration,
            "pid": os.getpid(), "tid": threading.get_ident(),
            "args": dict(args),
        }
        with self._lock:
            self._events.append(event)

    # -- metrics --------------------------------------------------------
    def count(self, name: str, value: float = 1) -> None:
        """Increment a counter (running totals are kept per name)."""
        if not value:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value
            self._events.append({
                "type": "counter", "name": name, "ts": time.monotonic(),
                "value": value, "pid": os.getpid(),
                "tid": threading.get_ident(),
            })

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous measurement (last value wins)."""
        with self._lock:
            self._events.append({
                "type": "gauge", "name": name, "ts": time.monotonic(),
                "value": value, "pid": os.getpid(),
                "tid": threading.get_ident(),
            })

    def counter_totals(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    # -- cross-process merging -----------------------------------------
    def adopt(self, events: List[Dict[str, Any]]) -> None:
        """Merge events recorded by another tracer (e.g. a worker).

        Worker events carry the worker's own pid/tid, which become the
        track ids in the merged timeline; counter events are folded
        into this tracer's running totals.
        """
        if not events:
            return
        with self._lock:
            for event in events:
                if event.get("type") == "counter":
                    name = str(event["name"])
                    self._counters[name] = (
                        self._counters.get(name, 0) + event["value"]
                    )
            self._events.extend(events)

    def label_track(self, pid: int, label: str) -> None:
        """Give a process track a human-readable name in trace viewers."""
        with self._lock:
            self._events.append({"type": "meta", "pid": pid, "label": label})

    def snapshot_events(self) -> List[Dict[str, Any]]:
        """A copy of the recorded events (plain data, pickles cleanly)."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __bool__(self) -> bool:
        # An empty tracer is still a tracer: the ``config.trace or
        # NULL_TRACER`` idiom must not fall back to the null tracer
        # just because nothing has been recorded yet.
        return True

    # -- export convenience --------------------------------------------
    def export_jsonl(self, stream) -> None:
        from repro.obs.export import write_jsonl

        write_jsonl(self, stream)

    def export_chrome(self, stream) -> None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(self, stream)


class NullTracer:
    """Disabled tracer: spans only measure, nothing is recorded."""

    enabled = False
    epoch = 0.0

    def span(self, name: str, cat: Optional[str] = None, **args: Any) -> _Stopwatch:
        return _Stopwatch()

    def add_span(self, name: str, cat: Optional[str], duration: float,
                 **args: Any) -> None:
        pass

    def count(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter_totals(self) -> Dict[str, float]:
        return {}

    def adopt(self, events) -> None:
        pass

    def label_track(self, pid: int, label: str) -> None:
        pass

    def snapshot_events(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


#: The shared disabled tracer; ``config.trace or NULL_TRACER`` is the
#: idiom instrumented code uses.
NULL_TRACER = NullTracer()

"""X-propagation: which signals can observe uninitialized state.

The HDL here has no four-valued simulation — every register resets to
a concrete value — but two idioms reintroduce "effectively X" state:

- *self-driven registers* (``r.drive(r)``), the repo's convention for
  symbolic state and preloaded memories: their content is whatever the
  environment (or a formal tool) put there, not the reset literal;
- registers a property marks ``symbolic`` (universally quantified
  initial value).

An output that can see such a register's value depends on state no
reset ever established — worth knowing when auditing what an attacker
observes, and the basis of the ``x-reaches-observable`` lint rule.

The forward closure is pruned by constant facts: a signal the ternary
fixpoint pins to 0/1 is constant in every reachable state and
therefore cannot *carry* unknown-ness, whatever its cone contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.hdl.circuit import Circuit
from repro.analyze.lattice import solve_reachability


def x_sources(
    circuit: Circuit,
    symbolic_registers: Iterable[str] = (),
) -> Tuple[str, ...]:
    """Registers whose post-reset content is not pinned by the design."""
    names = {
        reg.q.name for reg in circuit.registers if reg.d.name == reg.q.name
    }
    widths = {reg.q.name for reg in circuit.registers}
    names.update(n for n in symbolic_registers if n in widths)
    return tuple(sorted(names))


@dataclass
class XReach:
    """Forward closure of the X sources."""

    reaches: FrozenSet[str]
    sources: Tuple[str, ...]

    def observable(self, outputs: Iterable[str]) -> Tuple[str, ...]:
        return tuple(n for n in outputs if n in self.reaches)


def x_reachability(
    circuit: Circuit,
    sources: Iterable[str],
    constant_signals: Optional[Iterable[str]] = None,
) -> XReach:
    """Which signals may depend on uninitialized register state.

    ``constant_signals`` (cell-level names proven constant, e.g. via
    :func:`repro.analyze.constprop.constant_fixpoint` mapped back
    through the lowering provenance) are removed from the graph — a
    constant wire cannot transport X.
    """
    blocked = frozenset(constant_signals or ())
    deps: Dict[str, List[str]] = {}
    for cell in circuit.cells:
        if cell.out.name in blocked:
            deps.setdefault(cell.out.name, [])
            continue
        deps.setdefault(cell.out.name, []).extend(
            sig.name for sig in cell.ins if sig.name not in blocked
        )
    for reg in circuit.registers:
        if reg.q.name in blocked or reg.d.name == reg.q.name:
            deps.setdefault(reg.q.name, [])
            continue
        deps.setdefault(reg.q.name, []).append(reg.d.name)
    seeds = [name for name in sources if name not in blocked]
    reached = solve_reachability(deps, seeds)
    reached.update(seeds)
    return XReach(reaches=frozenset(reached), sources=tuple(sorted(seeds)))

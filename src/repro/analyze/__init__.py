"""SAT-free static analysis over circuits and lowered netlists.

A generic worklist fixpoint engine (:mod:`repro.analyze.lattice`) with
three monotone domains on top:

- :mod:`repro.analyze.constprop` — ternary 0/1/TOP constant
  propagation interpreting the same compiled op stream the SAT encoder
  executes (:mod:`repro.formal.frameprog`);
- :mod:`repro.analyze.ift` — structural taint reachability under a
  candidate scheme's region structure (GLIFT-style ever-tainted
  closure);
- :mod:`repro.analyze.xprop` — uninitialized-register (X) reachability
  pruned by constant facts.

:func:`static_verify` combines them into a solver-free verification
engine: it races in the portfolio as engine ``static``, pre-screens
candidate schemes in the CEGAR loop, accelerates refinement pruning,
and backs the ``dataflow`` lint rules.
"""

from repro.analyze.constprop import (
    TOP,
    ConstFacts,
    constant_fixpoint,
    eval_frame,
    ternary_frames,
)
from repro.analyze.engine import (
    DEFAULT_MAX_FRAMES,
    StaticVerdict,
    UNKNOWN,
    VERIFIED,
    VIOLATION,
    static_verify,
)
from repro.analyze.ift import TaintReach, suspect_ranking, taint_reachability
from repro.analyze.lattice import FixpointError, FixpointSolver, solve_reachability
from repro.analyze.xprop import XReach, x_reachability, x_sources

__all__ = [
    "TOP",
    "ConstFacts",
    "DEFAULT_MAX_FRAMES",
    "FixpointError",
    "FixpointSolver",
    "StaticVerdict",
    "TaintReach",
    "UNKNOWN",
    "VERIFIED",
    "VIOLATION",
    "XReach",
    "constant_fixpoint",
    "eval_frame",
    "solve_reachability",
    "static_verify",
    "suspect_ranking",
    "taint_reachability",
    "ternary_frames",
    "x_reachability",
    "x_sources",
]

"""Structural taint reachability (GLIFT-style ever-tainted closure).

Works directly on the cell-level circuit plus a candidate
:class:`~repro.taint.space.TaintScheme` — no instrumentation, no
lowering.  A signal is *statically clean* when no combinational or
sequential path from a taint source can reach it under the scheme's
region structure; since every propagation policy in the design space
(naive, partial, full logic, any granularity) only taints an output
when some input is tainted, the closure over-approximates the dynamic
taint of every scheme sharing the same blackbox/custom regions.  Cell
options and register granularities therefore do not affect the result
— which is exactly what lets the refinement-pruning pass answer many
trial schemes from one closure.

Region modelling: a blackboxed or custom-handled module subtree is a
single super-node — any tainted signal entering the region may taint
every signal the region produces (complete bipartite, sticky).  This
is the worst case over both the sticky module bit of blackboxing and
any custom handler that does not *generate* taint out of nothing (the
standard IFT non-generation assumption; ``docs/static-analysis.md``
spells it out).

Suspect ranking: signals that are both forward-reachable from the
sources and backward-reachable from a sink, ordered by distance to the
sink — the cells a refinement is most likely to need to touch, used to
steer :func:`repro.cegar.backtrace.find_refinement_location`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.hdl.circuit import Circuit
from repro.taint.instrument import TaintSources
from repro.taint.space import TaintScheme
from repro.analyze.lattice import solve_reachability


def _region_node(path: str) -> str:
    return f"region::{path}"


def _build_deps(circuit: Circuit, scheme: Optional[TaintScheme]):
    """Dependency graph over signal names (+ region super-nodes)."""
    deps: Dict[str, List[str]] = {}

    def region_of(module: str) -> Optional[str]:
        if scheme is None:
            return None
        region = scheme.effective_region(module)
        return None if region is None else _region_node(region[0])

    for cell in circuit.cells:
        region = region_of(cell.module)
        if region is None:
            deps.setdefault(cell.out.name, []).extend(
                sig.name for sig in cell.ins
            )
        else:
            # Complete bipartite through the region super-node: every
            # signal feeding the region may taint every signal it makes.
            deps.setdefault(region, []).extend(sig.name for sig in cell.ins)
            deps.setdefault(cell.out.name, []).append(region)
    for reg in circuit.registers:
        region = region_of(reg.q.module)
        if region is None:
            deps.setdefault(reg.q.name, []).append(reg.d.name)
        else:
            deps.setdefault(region, []).append(reg.d.name)
            deps.setdefault(reg.q.name, []).append(region)
    # Make every signal a node even when it has no dependencies.
    for sig in circuit.inputs:
        deps.setdefault(sig.name, [])
    for sig in circuit.outputs:
        deps.setdefault(sig.name, [])
    return deps


@dataclass
class TaintReach:
    """Ever-tainted closure for one region structure."""

    tainted: FrozenSet[str]
    sources: Tuple[str, ...]

    def clean(self, name: str) -> bool:
        """No structural path from any source reaches ``name``."""
        return name not in self.tainted

    def reachable(self, names: Iterable[str]) -> Tuple[str, ...]:
        return tuple(n for n in names if n in self.tainted)


def taint_reachability(
    circuit: Circuit,
    scheme: Optional[TaintScheme],
    sources: TaintSources,
) -> TaintReach:
    """Forward ever-tainted closure from the task's taint sources."""
    deps = _build_deps(circuit, scheme)
    seeds = [name for name, mask in sources.registers.items() if mask]
    seeds += [name for name, mask in sources.inputs.items() if mask]
    reached = solve_reachability(deps, seeds)
    reached.update(seeds)
    return TaintReach(
        tainted=frozenset(n for n in reached if not n.startswith("region::")),
        sources=tuple(seeds),
    )


def suspect_ranking(
    circuit: Circuit,
    scheme: Optional[TaintScheme],
    reach: TaintReach,
    sinks: Sequence[str],
    limit: int = 24,
) -> Tuple[str, ...]:
    """Tainted signals on a source->sink path, nearest-to-sink first."""
    deps = _build_deps(circuit, scheme)
    distance: Dict[str, int] = {}
    queue = deque()
    for sink in sinks:
        if sink not in distance:
            distance[sink] = 0
            queue.append(sink)
    while queue:
        name = queue.popleft()
        for dep in deps.get(name, ()):
            if dep not in distance:
                distance[dep] = distance[name] + 1
                queue.append(dep)
    suspects = [
        name for name in distance
        if name in reach.tainted and not name.startswith("region::")
    ]
    suspects.sort(key=lambda n: (distance[n], n))
    return tuple(suspects[:limit])

"""The SAT-free static verification engine.

:func:`static_verify` answers a :class:`SafetyProperty` on a (lowered)
netlist with ternary abstract interpretation only — no solver:

- **verified** — ``bad`` is constant 0 at the ternary fixpoint (no
  reachable state under any input can raise it), or the reachable
  ternary state space was exhausted with ``bad`` pinned to 0, or the
  assumptions become unsatisfiable before ``bad`` can ever leave 0.
  Sound: the abstraction over-approximates every concrete trace, and
  ignoring assumptions only enlarges the set of behaviours proved
  clean.
- **violation** — frame-wise ternary simulation finds a depth where
  ``bad`` is *definitely* 1 while every assumption was definitely 1 on
  the way there: every input sequence violates the property, so a
  zero-input counterexample is synthesized and replay-confirmed before
  being reported.
- **unknown** — neither; the verdict still carries ``bound`` (deepest
  cycle proven clean for all inputs, which BMC may skip) and a ranked
  *suspect* list: signals the fixpoint could not pin down that sit on
  a path to ``bad``, nearest first — the hint set consumed by the
  CEGAR backtrace.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.hdl.circuit import Circuit
from repro.hdl.lowering import LoweredCircuit
from repro.formal.bmc import _as_lowered
from repro.formal.counterexample import Counterexample
from repro.formal.properties import SafetyProperty
from repro.obs import NULL_TRACER
from repro.analyze.constprop import (
    TOP,
    constant_fixpoint,
    initial_state,
    ternary_frames,
)

VERIFIED = "verified"
VIOLATION = "violation"
UNKNOWN = "unknown"

#: Default frame budget of the bounded ternary pass.
DEFAULT_MAX_FRAMES = 64


@dataclass
class StaticVerdict:
    """Outcome of one :func:`static_verify` call."""

    status: str                   # verified | violation | unknown
    reason: str = ""
    #: Deepest cycle proven violation-free for *all* inputs (-1: none).
    bound: int = -1
    #: Frames the bounded ternary pass explored.
    frames: int = 0
    counterexample: Optional[Counterexample] = None
    #: Ranked original-name suspects (nearest to ``bad`` first).
    suspects: Tuple[str, ...] = field(default_factory=tuple)
    elapsed: float = 0.0

    @property
    def definitive(self) -> bool:
        return self.status in (VERIFIED, VIOLATION)

    @property
    def proved(self) -> bool:
        return self.status == VERIFIED


def _bit_name(lowered: LoweredCircuit, name: str) -> str:
    bit_sigs = lowered.bits.get(name)
    return bit_sigs[0].name if bit_sigs else name


def _suspects(
    lowered: LoweredCircuit,
    facts,
    bad_bit: str,
    limit: int = 24,
) -> Tuple[str, ...]:
    """Unpinned signals in ``bad``'s cone, nearest first, as original
    (word-level) names."""
    producer = {cell.out.name: cell for cell in lowered.circuit.cells}
    d_of = {reg.q.name: reg.d.name for reg in lowered.circuit.registers}
    orig_of: Dict[str, str] = {}
    for orig, sigs in lowered.bits.items():
        for sig in sigs:
            orig_of.setdefault(sig.name, orig)
    distance: Dict[str, int] = {bad_bit: 0}
    queue = deque([bad_bit])
    while queue:
        name = queue.popleft()
        nexts: List[str] = []
        cell = producer.get(name)
        if cell is not None:
            nexts.extend(sig.name for sig in cell.ins)
        if name in d_of:
            nexts.append(d_of[name])
        for dep in nexts:
            if dep not in distance:
                distance[dep] = distance[name] + 1
                queue.append(dep)
    ranked: List[Tuple[int, str]] = []
    seen = set()
    for name in sorted(distance, key=lambda n: (distance[n], n)):
        if facts.value_of(name) != TOP:
            continue
        orig = orig_of.get(name, name)
        if orig in seen or orig.startswith("__compass"):
            continue
        seen.add(orig)
        ranked.append((distance[name], orig))
        if len(ranked) >= limit:
            break
    return tuple(orig for _, orig in ranked)


def _confirm(
    lowered: LoweredCircuit, prop: SafetyProperty, cex: Counterexample
) -> bool:
    """Replay the synthesized counterexample on the gate-level netlist."""
    try:
        waveform = cex.replay(lowered.circuit)
    except Exception:
        return False
    last = cex.length - 1
    bad_bit = _bit_name(lowered, prop.bad)
    if waveform.value(bad_bit, last) != 1:
        return False
    for name in prop.assumptions:
        bit = _bit_name(lowered, name)
        if any(waveform.value(bit, t) != 1 for t in range(last + 1)):
            return False
    for name in prop.init_assumptions:
        if waveform.value(_bit_name(lowered, name), 0) != 1:
            return False
    return True


def static_verify(
    circuit: Union[Circuit, LoweredCircuit],
    prop: SafetyProperty,
    max_frames: int = DEFAULT_MAX_FRAMES,
    tracer=None,
) -> StaticVerdict:
    """Answer ``prop`` by abstract interpretation alone (no SAT)."""
    started = time.monotonic()
    tracer = tracer or NULL_TRACER
    lowered = _as_lowered(circuit, prop)
    symbolic = frozenset(prop.symbolic_registers)
    symbolic_all = bool(getattr(prop, "symbolic_all_registers", False))
    bad_bit = _bit_name(lowered, prop.bad)
    facts = constant_fixpoint(lowered, symbolic, symbolic_all)
    if bad_bit not in facts.program.slot_of_name:
        raise ValueError(
            f"property signal {prop.bad!r} is not in the lowered netlist"
        )
    tracer.count("analyze.fixpoints")

    if facts.value_of(bad_bit) == 0:
        return StaticVerdict(
            VERIFIED,
            reason="bad is constant 0 at the ternary fixpoint",
            elapsed=time.monotonic() - started,
        )

    # Bounded frame-wise pass: more precise than the fixpoint (no
    # state join), so it can still close a proof, find a definite
    # violation, or at least extend the proven-clean bound.
    assumption_bits = [_bit_name(lowered, n) for n in prop.assumptions]
    init_bits = [_bit_name(lowered, n) for n in prop.init_assumptions]
    program = facts.program
    bad_slot = program.slot_of_name[bad_bit]

    trace = ternary_frames(lowered, max_frames, symbolic, symbolic_all,
                           stop=lambda vals: vals[bad_slot] != 0)
    bound = -1
    definite_env = True      # assumptions definitely 1 so far
    vacuous_after: Optional[int] = None  # assumptions definitely 0
    verdict: Optional[StaticVerdict] = None
    for k, vals in enumerate(trace.frames):
        a_vals = [vals[program.slot_of_name[b]] for b in assumption_bits
                  if b in program.slot_of_name]
        if k == 0:
            a_vals += [vals[program.slot_of_name[b]] for b in init_bits
                       if b in program.slot_of_name]
        bad_val = vals[bad_slot]
        if bad_val == 0:
            bound = k
        elif (bad_val == 1 and definite_env and all(v == 1 for v in a_vals)):
            cex = Counterexample(
                length=k + 1,
                inputs=[{} for _ in range(k + 1)],
                initial_state={},
                bad_signal=prop.bad,
            )
            if _confirm(lowered, prop, cex):
                tracer.count("analyze.violations")
                verdict = StaticVerdict(
                    VIOLATION,
                    reason=f"bad is definitely 1 at frame {k} under "
                           "definitely-satisfied assumptions",
                    bound=bound, frames=k + 1, counterexample=cex,
                )
            break
        else:
            break  # bad may be 1 here; nothing definite either way
        if any(v == 0 for v in a_vals):
            vacuous_after = k
            break
        if any(v != 1 for v in a_vals):
            definite_env = False

    frames_explored = len(trace.frames)
    if verdict is None and vacuous_after is not None:
        verdict = StaticVerdict(
            VERIFIED,
            reason=f"assumptions are definitely violated at frame "
                   f"{vacuous_after}; no longer trace can witness bad",
            bound=bound, frames=frames_explored,
        )
    if verdict is None and trace.closed and bound == frames_explored - 1:
        verdict = StaticVerdict(
            VERIFIED,
            reason="ternary state space exhausted with bad pinned to 0",
            bound=bound, frames=frames_explored,
        )
    if verdict is None:
        verdict = StaticVerdict(
            UNKNOWN,
            reason="bad is not separable by ternary analysis",
            bound=bound, frames=frames_explored,
            suspects=_suspects(lowered, facts, bad_bit),
        )
    if verdict.proved:
        tracer.count("analyze.proofs")
    verdict.elapsed = time.monotonic() - started
    return verdict

"""Ternary constant propagation over a lowered netlist.

Values live in the three-point lattice ``{0, 1, TOP}`` (``TOP`` = "may
be either").  The analysis interprets the *same* compiled op stream the
SAT encoder executes — :func:`repro.formal.frameprog.frame_program_for`
— so the abstract semantics cannot drift from the concrete
constant-fold semantics: both walk identical ``(opcode, out_slot,
in_slots...)`` tuples in identical topological order; this module
merely evaluates them over ternary values instead of solver literals.

Two evaluation modes:

- :func:`constant_fixpoint` — the classic abstract interpretation:
  registers start at their reset (or ``TOP`` when symbolic), inputs
  are ``TOP``, and register next-state values are joined back into the
  state until nothing changes.  The result over-approximates every
  value any signal takes in any reachable state under any input, so a
  signal whose fixpoint value is ``0`` or ``1`` is genuinely constant.
- :func:`ternary_frames` — frame-by-frame ternary simulation *without*
  joining, keeping per-frame precision: a deterministic counter stays
  concrete frame after frame even though its fixpoint is ``TOP``.
  Used by the static engine both to extend the proven-clean bound and
  to detect definite (all-input) property violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.hdl.lowering import LoweredCircuit
from repro.formal.frameprog import (
    OP_AND,
    OP_BUF,
    OP_CONST,
    OP_NOT,
    OP_OR,
    OP_XOR,
    FrameProgram,
    frame_program_for,
)
from repro.analyze.lattice import FixpointSolver

#: The "may be 0 or 1" element; 0 and 1 are themselves.
TOP = 2


def t_join(a: int, b: int) -> int:
    return a if a == b else TOP


def t_not(a: int) -> int:
    return TOP if a == TOP else 1 - a


def t_and(values) -> int:
    out = 1
    for v in values:
        if v == 0:
            return 0
        if v == TOP:
            out = TOP
    return out


def t_or(values) -> int:
    out = 0
    for v in values:
        if v == 1:
            return 1
        if v == TOP:
            out = TOP
    return out


def t_xor(values) -> int:
    out = 0
    for v in values:
        if v == TOP:
            return TOP
        out ^= v
    return out


def eval_frame(
    program: FrameProgram,
    state: List[int],
    input_value: int = TOP,
) -> List[int]:
    """One combinational frame over ternary values.

    ``state`` is the per-register ternary value in ``boundary_slots``
    order; inputs all take ``input_value``.  Mirrors the branch
    structure of :func:`repro.formal.frameprog.execute_ops` (AND over
    ``op[2:]``, OR via De Morgan, CONST carrying its bit in ``op[2]``).
    """
    vals = [TOP] * program.n_slots
    for slot, value in zip(program.boundary_slots, state):
        vals[slot] = value
    for slot in program.input_slots:
        vals[slot] = input_value
    for op in program.ops:
        code = op[0]
        if code == OP_AND:
            vals[op[1]] = t_and([vals[s] for s in op[2:]])
        elif code == OP_OR:
            vals[op[1]] = t_or([vals[s] for s in op[2:]])
        elif code == OP_XOR:
            vals[op[1]] = t_xor([vals[s] for s in op[2:]])
        elif code == OP_NOT:
            vals[op[1]] = t_not(vals[op[2]])
        elif code == OP_BUF:
            vals[op[1]] = vals[op[2]]
        else:  # OP_CONST
            vals[op[1]] = 1 if op[2] else 0
    return vals


def initial_state(
    lowered: LoweredCircuit,
    symbolic_registers: FrozenSet[str] = frozenset(),
    symbolic_all: bool = False,
) -> List[int]:
    """Per-register ternary reset state, in ``circuit.registers`` order.

    ``symbolic_registers`` holds *original* (word-level) names; the
    per-bit register names they lower to are looked up through the
    provenance map, so callers pass :attr:`SafetyProperty
    .symbolic_registers` unchanged.
    """
    symbolic_bits = set()
    if symbolic_registers:
        for name in symbolic_registers:
            for sig in lowered.bits.get(name, ()):
                symbolic_bits.add(sig.name)
            symbolic_bits.add(name)  # width-1 registers keep their name
    state = []
    for reg in lowered.circuit.registers:
        if symbolic_all or reg.q.name in symbolic_bits:
            state.append(TOP)
        else:
            state.append(reg.reset_value & 1)
    return state


@dataclass
class ConstFacts:
    """Result of :func:`constant_fixpoint`."""

    program: FrameProgram
    #: Fixpoint value per op-program slot.
    values: List[int]
    #: Joined register state at the fixpoint (``boundary_slots`` order).
    state: List[int]
    #: Worklist pops it took to converge (observability).
    pops: int = 0

    def value_of(self, name: str) -> int:
        """Ternary fixpoint value of a gate-level signal name."""
        slot = self.program.slot_of_name.get(name)
        return TOP if slot is None else self.values[slot]

    def word_value(self, lowered: LoweredCircuit, name: str) -> Optional[int]:
        """Concrete value of an original word signal, or None when any
        bit is ``TOP`` (or untracked)."""
        bit_sigs = lowered.bits.get(name)
        if not bit_sigs:
            bit = self.value_of(name)
            return None if bit == TOP else bit
        word = 0
        for i, sig in enumerate(bit_sigs):
            bit = self.value_of(sig.name)
            if bit == TOP:
                return None
            word |= bit << i
        return word

    def constant_names(self) -> Dict[str, int]:
        """Every gate-level signal pinned to 0/1 at the fixpoint."""
        return {
            name: self.values[slot]
            for name, slot in self.program.slot_of_name.items()
            if self.values[slot] != TOP
        }


def constant_fixpoint(
    lowered: LoweredCircuit,
    symbolic_registers: FrozenSet[str] = frozenset(),
    symbolic_all: bool = False,
) -> ConstFacts:
    """Least fixpoint of the joined ternary transition system.

    Soundness: the initial environment is the frame-0 valuation (a
    point below the fixpoint), transfers mirror the concrete gate
    semantics, and register nodes join their reset with their ``d``
    value — so the fixpoint over-approximates the value of every
    signal in every reachable state under every input sequence.
    """
    program = frame_program_for(lowered)
    init = initial_state(lowered, symbolic_registers, symbolic_all)
    vals = eval_frame(program, init)

    # Dependency graph over slots: combinational ops read their input
    # slots; a register's boundary slot reads its d-bit's slot.
    deps: Dict[int, Tuple[int, ...]] = {}
    op_of: Dict[int, Tuple[int, ...]] = {}
    for op in program.ops:
        out = op[1]
        op_of[out] = op
        deps[out] = () if op[0] == OP_CONST else tuple(op[2:])
    d_slot_of_boundary: Dict[int, int] = {}
    for slot, reg in zip(program.boundary_slots, lowered.circuit.registers):
        d_slot = program.slot_of_name.get(reg.d.name)
        if d_slot is None:
            deps[slot] = ()
        else:
            deps[slot] = (d_slot,)
            d_slot_of_boundary[slot] = d_slot
    for slot in program.input_slots:
        deps[slot] = ()

    def transfer(slot, value_of):
        op = op_of.get(slot)
        if op is not None:
            code = op[0]
            if code == OP_AND:
                return t_and([value_of(s) for s in op[2:]])
            if code == OP_OR:
                return t_or([value_of(s) for s in op[2:]])
            if code == OP_XOR:
                return t_xor([value_of(s) for s in op[2:]])
            if code == OP_NOT:
                return t_not(value_of(op[2]))
            if code == OP_BUF:
                return value_of(op[2])
            return 1 if op[2] else 0
        d_slot = d_slot_of_boundary.get(slot)
        if d_slot is not None:
            return value_of(d_slot)  # next-state, joined by the engine
        return value_of(slot)  # input or dangling boundary: keep as-is

    solver = FixpointSolver(deps, transfer, t_join, TOP)
    for slot, value in enumerate(vals):
        solver.env[slot] = value
    # Only register feedback can move the system off the frame-0
    # valuation; seed the worklist there.
    for slot in d_slot_of_boundary:
        solver._enqueue(slot)
    solver.solve()

    values = [solver.value(slot) for slot in range(program.n_slots)]
    state = [values[slot] for slot in program.boundary_slots]
    return ConstFacts(program=program, values=values, state=state,
                      pops=solver.pops)


@dataclass
class FrameTrace:
    """Result of :func:`ternary_frames`."""

    #: Per-frame combinational valuation (op-program slots).
    frames: List[List[int]]
    #: True when the ternary state space was exhausted (a revisited
    #: state closes the reachable set).
    closed: bool


def ternary_frames(
    lowered: LoweredCircuit,
    max_frames: int,
    symbolic_registers: FrozenSet[str] = frozenset(),
    symbolic_all: bool = False,
    stop=None,
) -> FrameTrace:
    """Frame-wise ternary simulation from the (ternary) reset state.

    Explores at most ``max_frames`` frames, stopping early when the
    state revisits itself (the reachable ternary state set is then
    closed — anything true of every explored frame is true of every
    reachable concrete state).  ``stop(frame_vals) -> bool`` may end
    exploration early (e.g. once ``bad`` stops being constant 0).
    """
    program = frame_program_for(lowered)
    state = initial_state(lowered, symbolic_registers, symbolic_all)
    d_slots = [program.slot_of_name.get(reg.d.name)
               for reg in lowered.circuit.registers]
    seen = set()
    frames: List[List[int]] = []
    closed = False
    for _ in range(max_frames):
        key = tuple(state)
        if key in seen:
            closed = True
            break
        seen.add(key)
        vals = eval_frame(program, state)
        frames.append(vals)
        if stop is not None and stop(vals):
            break
        state = [
            vals[d_slot] if d_slot is not None else current
            for d_slot, current in zip(d_slots, state)
        ]
    return FrameTrace(frames=frames, closed=closed)

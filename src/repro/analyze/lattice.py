"""Generic incremental worklist fixpoint engine.

All three analysis domains (taint reachability, ternary constant
propagation, X-propagation) are monotone dataflow problems over a
finite-height lattice: every node of a dependency graph carries an
abstract value, a transfer function recomputes a node from its
dependencies, and values only ever move *up* the lattice.  The solver
here is the shared engine: it owns the worklist bookkeeping, the
sticky join (``env[n] = join(env[n], transfer(n))``), and the change
propagation to dependents, while each domain supplies its graph,
transfer function and join.

The engine is *incremental*: after an initial :meth:`solve`, callers
may raise individual nodes (new taint sources, refined assumptions)
with :meth:`raise_to` and re-solve — only the affected cone is
revisited, which is what makes per-candidate pre-screening in the
CEGAR loop cheap.

Termination is guaranteed for monotone transfers over finite-height
lattices; a generous pop budget (nodes + height * edges, with margin)
turns an accidentally non-monotone transfer into a loud error instead
of a hang.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Mapping

Node = Hashable


class FixpointError(RuntimeError):
    """The worklist failed to converge (non-monotone transfer)."""


class FixpointSolver:
    """Worklist solver for ``env[n] = join(env[n], transfer(n, env))``.

    Args:
        deps: node -> the nodes its transfer function reads.  Every
            node of the problem must appear as a key (leaf nodes map
            to an empty sequence).
        transfer: ``transfer(node, value_of) -> value`` where
            ``value_of`` looks up the current value of any node.
        join: least upper bound of two values.
        default: value assigned to nodes not explicitly seeded
            (the domain's bottom, usually).
    """

    def __init__(
        self,
        deps: Mapping[Node, Iterable[Node]],
        transfer: Callable[[Node, Callable[[Node], object]], object],
        join: Callable[[object, object], object],
        default: object,
    ) -> None:
        self._deps: Dict[Node, List[Node]] = {}
        self._succs: Dict[Node, List[Node]] = {}
        edges = 0
        for node, node_deps in deps.items():
            dep_list = list(node_deps)
            self._deps[node] = dep_list
            edges += len(dep_list)
        for node, dep_list in self._deps.items():
            for dep in dep_list:
                self._succs.setdefault(dep, []).append(node)
        self._transfer = transfer
        self._join = join
        self._default = default
        self.env: Dict[Node, object] = {}
        self._queue: deque = deque()
        self._queued: set = set()
        # height * edges pops for a monotone system; x4 margin.
        self._pop_budget = 4 * (len(self._deps) + edges) * 4 + 1024
        self.pops = 0

    # -- values ----------------------------------------------------------

    def value(self, node: Node):
        return self.env.get(node, self._default)

    def seed(self, node: Node, value) -> None:
        """Set a node's starting value (joined with anything present)."""
        self.raise_to(node, value)
        self._enqueue(node)

    def raise_to(self, node: Node, value) -> None:
        """Monotone in-place update; re-run :meth:`solve` afterwards."""
        old = self.env.get(node, self._default)
        new = self._join(old, value)
        if new != old:
            self.env[node] = new
            for succ in self._succs.get(node, ()):
                self._enqueue(succ)

    # -- solving ---------------------------------------------------------

    def _enqueue(self, node: Node) -> None:
        if node not in self._queued and node in self._deps:
            self._queued.add(node)
            self._queue.append(node)

    def solve_all(self) -> Dict[Node, object]:
        """Enqueue every node once, then run to fixpoint."""
        for node in self._deps:
            self._enqueue(node)
        return self.solve()

    def solve(self) -> Dict[Node, object]:
        """Drain the worklist; returns the (live) environment."""
        value_of = self.value
        while self._queue:
            self.pops += 1
            if self.pops > self._pop_budget:
                raise FixpointError(
                    "worklist failed to converge — non-monotone transfer?"
                )
            node = self._queue.popleft()
            self._queued.discard(node)
            new = self._transfer(node, value_of)
            old = self.env.get(node, self._default)
            joined = self._join(old, new)
            if joined != old:
                self.env[node] = joined
                for succ in self._succs.get(node, ()):
                    self._enqueue(succ)
        return self.env


def reach_join(a: bool, b: bool) -> bool:
    """Join of the two-point reachability lattice (False below True)."""
    return a or b


def solve_reachability(
    deps: Mapping[Node, Iterable[Node]],
    seeds: Iterable[Node],
) -> set:
    """Boolean forward closure: a node is reached when seeded or when
    any dependency is reached.  The common shape of the taint- and
    X-propagation domains."""
    solver = FixpointSolver(
        deps,
        transfer=lambda node, value_of: any(
            value_of(dep) for dep in deps.get(node, ())
        ),
        join=reach_join,
        default=False,
    )
    for node in seeds:
        solver.seed(node, True)
    solver.solve()
    return {node for node, reached in solver.env.items() if reached}

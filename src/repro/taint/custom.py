"""Custom module-level taint logic (paper Sections 3.1, 3.2, 5.4).

Module-level taint schemes "require domain knowledge and … can only be
done manually" — they are the escape hatch when Compass raises a
:class:`~repro.cegar.refine.CorrelationImprecisionAlert`: the user
writes taint logic for the whole module that exploits semantic facts
the per-cell composition cannot see (e.g. that ``(x ^ k) ^ k == x``, so
the output does not actually depend on ``k``).

A handler is attached to a :class:`~repro.taint.space.TaintScheme` via
``scheme.custom_modules[module_path] = handler``; the instrumentation
pass then delegates all taint computation for signals produced inside
that module to the handler.

Two ready-made handlers:

- :class:`PassthroughTaint` — declares that each module output is
  semantically equal to (or only depends on) a given set of module
  inputs; output taint is the OR of those inputs' taints.  This is the
  classic fix for correlation-based imprecision such as masking
  (``(s & a) | (~s & a) == a``) or double-XOR.
- :class:`ConstantCleanTaint` — declares module outputs to be always
  untainted (for modules proven, by other means, to never carry
  secrets; HybriDIFT-style customization for address-decode logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Sequence, Tuple

from repro.hdl.signals import Signal
from repro.taint.emitter import Emitter


class CustomTaintHandler:
    """Interface for user-supplied module-level taint logic.

    ``output_taint`` is called lazily for each signal produced inside
    the module that the rest of the design (or a monitor) consumes.
    ``taint_of(name)`` returns the taint signal of any signal produced
    *outside* the module (typically the module's inputs).
    """

    def output_taint(
        self,
        signal: Signal,
        taint_of: Callable[[str], Signal],
        em: Emitter,
        module: str,
    ) -> Signal:
        raise NotImplementedError

    def state_reset_taint(self) -> int:
        """Initial taint of the module's (abstracted) state; 0 = clean."""
        return 0


@dataclass
class PassthroughTaint(CustomTaintHandler):
    """Output taint = OR of the declared source inputs' taints.

    ``dependencies`` maps each module output signal name to the input
    signal names its value *semantically* depends on.  Soundness is the
    user's obligation (this is manual, module-level taint logic); the
    test suite shows how to validate a handler against ground truth.
    """

    dependencies: Mapping[str, Sequence[str]]

    def output_taint(self, signal, taint_of, em, module):
        sources = self.dependencies.get(signal.name)
        if sources is None:
            raise KeyError(
                f"custom taint for module {module!r} has no dependency entry "
                f"for output {signal.name!r}"
            )
        taints = [em.adapt(taint_of(name), 1, module) for name in sources]
        return em.or_tree(taints, module)


@dataclass
class ConstantCleanTaint(CustomTaintHandler):
    """Module outputs are always untainted (use with care)."""

    def output_taint(self, signal, taint_of, em, module):
        return em.zeros(1, module)

"""Instrumentation overhead metrics (Figure 5) and scheme summaries (Table 4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdl.cells import CellOp, WIRING_OPS
from repro.hdl.circuit import Circuit
from repro.hdl.stats import circuit_stats, gate_count, register_bits
from repro.taint.instrument import InstrumentedDesign
from repro.taint.space import Complexity, Granularity


@dataclass
class OverheadReport:
    """Size of an instrumented design relative to the uninstrumented DUV."""

    design: str
    scheme: str
    base_gates: int
    base_reg_bits: int
    inst_gates: int
    inst_reg_bits: int

    @property
    def gate_overhead(self) -> float:
        """Fractional extra gates, e.g. 2.93 for the paper's 293 %."""
        return (self.inst_gates - self.base_gates) / self.base_gates if self.base_gates else 0.0

    @property
    def reg_bit_overhead(self) -> float:
        return (
            (self.inst_reg_bits - self.base_reg_bits) / self.base_reg_bits
            if self.base_reg_bits else 0.0
        )

    def row(self) -> str:
        return (
            f"{self.design:<12} {self.scheme:<12} "
            f"gates +{self.gate_overhead * 100:6.1f}%   "
            f"reg bits +{self.reg_bit_overhead * 100:6.1f}%"
        )


def instrumentation_overhead(design: InstrumentedDesign) -> OverheadReport:
    return OverheadReport(
        design=design.original.name,
        scheme=design.scheme.name,
        base_gates=gate_count(design.original),
        base_reg_bits=register_bits(design.original),
        inst_gates=gate_count(design.circuit),
        inst_reg_bits=register_bits(design.circuit),
    )


@dataclass
class ModuleSchemeRow:
    """One row of a Table-4-style final-scheme summary."""

    module: str
    granularity: str       # "module", "word", "bit" or "mixed"
    taint_bits: int
    orig_bits: int
    refined_cells: int
    orig_cells: int

    def format(self) -> str:
        return (
            f"{self.module:<28} {self.granularity:<8} "
            f"({self.taint_bits}/{self.orig_bits})"
            f"{'':4}{self.refined_cells}/{self.orig_cells}"
        )


def scheme_summary(design: InstrumentedDesign, depth: int = 2) -> List[ModuleSchemeRow]:
    """Summarise the applied taint scheme per module (Table 4 format).

    ``depth`` limits how deep the module hierarchy is expanded; deeper
    modules aggregate into their ancestor at that depth.
    """
    def truncate(path: str) -> str:
        parts = path.split(".") if path else []
        return ".".join(parts[:depth]) if parts else "(top)"

    orig = design.original
    rows: Dict[str, Dict[str, int]] = {}

    def bucket(path: str) -> Dict[str, int]:
        key = truncate(path)
        if key not in rows:
            rows[key] = {
                "taint_bits": 0, "orig_bits": 0, "refined": 0, "cells": 0,
                "word_regs": 0, "bit_regs": 0, "module_regs": 0,
            }
        return rows[key]

    taint_reg_names = set()
    for reg in design.circuit.registers:
        taint_reg_names.add(reg.q.name)

    for reg in orig.registers:
        entry = bucket(reg.q.module)
        entry["orig_bits"] += reg.q.width
        region = design.scheme.effective_blackbox(reg.q.module)
        if region is not None:
            entry["module_regs"] += 1
            continue
        gran = design.scheme.granularity_for_register(reg.q.name, reg.q.module)
        if gran is Granularity.BIT:
            entry["taint_bits"] += reg.q.width
            entry["bit_regs"] += 1
        else:
            entry["taint_bits"] += 1
            entry["word_regs"] += 1

    # Each blackbox region contributes exactly one taint bit.
    for region in design.module_taint:
        bucket(region)["taint_bits"] += 1

    for cell in orig.cells:
        if cell.op in WIRING_OPS or cell.op is CellOp.CONST:
            continue
        entry = bucket(cell.module)
        entry["cells"] += 1
        option = design.applied_options.get(cell.out.name)
        if option is not None and option.complexity is not Complexity.NAIVE:
            entry["refined"] += 1

    out: List[ModuleSchemeRow] = []
    for module in sorted(rows):
        entry = rows[module]
        kinds = [
            name for name, count in (
                ("module", entry["module_regs"]),
                ("word", entry["word_regs"]),
                ("bit", entry["bit_regs"]),
            ) if count
        ]
        granularity = kinds[0] if len(kinds) == 1 else ("mixed" if kinds else "word")
        out.append(
            ModuleSchemeRow(
                module=module,
                granularity=granularity,
                taint_bits=entry["taint_bits"],
                orig_bits=entry["orig_bits"],
                refined_cells=entry["refined"],
                orig_cells=entry["cells"],
            )
        )
    return out

"""The three-dimensional taint space and instrumentation pass.

Implements the paper's Section 3 taxonomy (unit level × taint-bit
granularity × logic complexity), the sound per-cell propagation
policies for every point of that space, the instrumentation compiler
pass (the paper's FIRRTL pass), preset schemes for prior work
(GLIFT, RTLIFT, CellIFT, …; Table 5), and overhead metrics (Figure 5).
"""

from repro.taint.space import (
    UnitLevel,
    Granularity,
    Complexity,
    TaintOption,
    TaintScheme,
    refinement_ladder,
    PRESETS,
    cellift_scheme,
    glift_scheme,
    blackbox_scheme,
)
from repro.taint.instrument import InstrumentedDesign, instrument, TaintSources
from repro.taint.metrics import instrumentation_overhead, OverheadReport, scheme_summary

__all__ = [
    "UnitLevel",
    "Granularity",
    "Complexity",
    "TaintOption",
    "TaintScheme",
    "refinement_ladder",
    "PRESETS",
    "cellift_scheme",
    "glift_scheme",
    "blackbox_scheme",
    "InstrumentedDesign",
    "instrument",
    "TaintSources",
    "instrumentation_overhead",
    "OverheadReport",
    "scheme_summary",
]

"""Helper for appending taint logic cells to an existing circuit.

The instrumentation pass and the propagation policies build taint logic
directly as IR cells; :class:`Emitter` provides fresh naming and the
usual operator helpers over raw :class:`~repro.hdl.signals.Signal`
objects.  Taint cells inherit the module path of the original cell they
instrument so per-module statistics (Table 4) remain meaningful.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, Register
from repro.hdl.signals import Signal, SignalKind


class Emitter:
    """Appends cells to ``circuit`` with fresh names under a module path."""

    def __init__(self, circuit: Circuit, tag: str = "tt") -> None:
        self.circuit = circuit
        self.tag = tag
        self._counter = 0
        self._const_cache = {}

    # ------------------------------------------------------------------
    def fresh_name(self, module: str, hint: str = "") -> str:
        # The circuit's cell count strictly increases with every added
        # cell, so names stay unique even across multiple Emitters
        # attached to the same circuit.
        self._counter += 1
        base = f"_{self.tag}{len(self.circuit.cells)}_{self._counter}{('_' + hint) if hint else ''}"
        return f"{module}.{base}" if module else base

    def cell(
        self,
        op: CellOp,
        width: int,
        ins: Sequence[Signal],
        module: str,
        params: Tuple[Tuple[str, int], ...] = (),
        name: Optional[str] = None,
    ) -> Signal:
        out = Signal(name or self.fresh_name(module), width, SignalKind.WIRE, module=module)
        self.circuit.add_cell(Cell(op, out, tuple(ins), params, module=module))
        return out

    def register(self, name: str, d: Signal, reset: int, module: str) -> Signal:
        q = Signal(name, d.width, SignalKind.REG, module=module)
        self.circuit.add_register(Register(q, d, reset))
        return q

    # -- constants -------------------------------------------------------
    def const(self, value: int, width: int, module: str = "") -> Signal:
        key = (value, width, module)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        sig = self.cell(CellOp.CONST, width, (), module, params=(("value", value),))
        self._const_cache[key] = sig
        return sig

    def zeros(self, width: int, module: str = "") -> Signal:
        return self.const(0, width, module)

    def ones(self, width: int, module: str = "") -> Signal:
        return self.const((1 << width) - 1, width, module)

    # -- bitwise / arithmetic helpers -------------------------------------
    def not_(self, a: Signal, module: str) -> Signal:
        return self.cell(CellOp.NOT, a.width, (a,), module)

    def and_(self, *ins: Signal, module: str) -> Signal:
        if len(ins) == 1:
            return ins[0]
        return self.cell(CellOp.AND, ins[0].width, ins, module)

    def or_(self, *ins: Signal, module: str) -> Signal:
        if len(ins) == 1:
            return ins[0]
        return self.cell(CellOp.OR, ins[0].width, ins, module)

    def xor(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.XOR, a.width, (a, b), module)

    def mux(self, sel: Signal, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.MUX, a.width, (sel, a, b), module)

    def add(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.ADD, a.width, (a, b), module)

    def sub(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.SUB, a.width, (a, b), module)

    def eq(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.EQ, 1, (a, b), module)

    def neq(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.NEQ, 1, (a, b), module)

    def ult(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.ULT, 1, (a, b), module)

    def ule(self, a: Signal, b: Signal, module: str) -> Signal:
        return self.cell(CellOp.ULE, 1, (a, b), module)

    def shl(self, a: Signal, sh: Signal, module: str) -> Signal:
        return self.cell(CellOp.SHL, a.width, (a, sh), module)

    def shr(self, a: Signal, sh: Signal, module: str) -> Signal:
        return self.cell(CellOp.SHR, a.width, (a, sh), module)

    def shl_const(self, a: Signal, amount: int, module: str) -> Signal:
        shw = max(1, amount.bit_length())
        return self.shl(a, self.const(amount, shw, module), module)

    def concat(self, parts: Sequence[Signal], module: str) -> Signal:
        if len(parts) == 1:
            return parts[0]
        return self.cell(CellOp.CONCAT, sum(p.width for p in parts), parts, module)

    def slice_(self, a: Signal, lo: int, hi: int, module: str) -> Signal:
        return self.cell(CellOp.SLICE, hi - lo + 1, (a,), module, params=(("lo", lo), ("hi", hi)))

    def sext(self, a: Signal, width: int, module: str) -> Signal:
        if width == a.width:
            return a
        return self.cell(CellOp.SEXT, width, (a,), module)

    def zext(self, a: Signal, width: int, module: str) -> Signal:
        if width == a.width:
            return a
        return self.cell(CellOp.ZEXT, width, (a,), module)

    def redor(self, a: Signal, module: str) -> Signal:
        if a.width == 1:
            return a
        return self.cell(CellOp.REDOR, 1, (a,), module)

    def redand(self, a: Signal, module: str) -> Signal:
        if a.width == 1:
            return a
        return self.cell(CellOp.REDAND, 1, (a,), module)

    def buf(self, a: Signal, module: str, name: Optional[str] = None) -> Signal:
        return self.cell(CellOp.BUF, a.width, (a,), module, name=name)

    # -- taint-specific helpers --------------------------------------------
    def adapt(self, taint: Signal, width: int, module: str) -> Signal:
        """Adapt a taint signal between granularities.

        1 -> w: splat (sign-extension of a 1-bit flag replicates it);
        w -> 1: OR-reduce (a word is tainted when any bit is).
        """
        if taint.width == width:
            return taint
        if taint.width == 1:
            return self.sext(taint, width, module)
        if width == 1:
            return self.redor(taint, module)
        if taint.width < width:
            return self.zext(taint, width, module)
        return self.redor(taint, module)  # conservative fallback

    def or_tree(self, items: Sequence[Signal], module: str, width: int = 1) -> Signal:
        """OR-reduce a list of same-width taint signals (empty -> 0)."""
        if not items:
            return self.zeros(width, module)
        acc = items[0]
        for item in items[1:]:
            acc = self.or_(acc, item, module=module)
        return acc

    def smear_up(self, x: Signal, module: str) -> Signal:
        """Set every bit at or above the lowest set bit (carry smear).

        Used by the value-independent refined taint of adders: carries
        only propagate towards higher bits.
        """
        acc = x
        shift = 1
        while shift < x.width:
            acc = self.or_(acc, self.shl_const(acc, shift, module), module=module)
            shift <<= 1
        return acc

"""Sound taint-propagation policies for every cell operator.

For each cell op and each (granularity, complexity) point this module
emits propagation logic that *over-approximates* information flow
(soundness: no false negatives), exactly as required by Section 2.2 of
the paper.  Higher complexities consume dynamic input values to sharpen
the result, e.g. for a 1-bit AND gate:

- naive:    ``Ot = At | Bt``
- partial:  ``Ot = At | (A & Bt)``
- full:     ``Ot = (B & At) | (A & Bt) | (At & Bt)``

and the cell-level MUX uses the paper's Formula 1.

Notes on two operator families:

- Adders: the refined option uses a *carry smear* — a tainted bit can
  only influence equal-or-higher sum bits.  (A naive min/max interval
  XOR is unsound: with ``S_min=1, S_max=3`` bit 0 still varies across
  the interval even though ``S_min ^ S_max = 0b10``.)
- Comparators: the refined option derives stability from the interval
  ``[X & ~Xt, X | Xt]`` each operand is confined to.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.signals import Signal
from repro.taint.emitter import Emitter
from repro.taint.space import Complexity, Granularity, TaintOption

_N, _P, _F = Complexity.NAIVE, Complexity.PARTIAL, Complexity.FULL

#: Complexities with *distinct* propagation logic per (op, granularity).
#: Ops not listed only have the naive option at that granularity.
_DISTINCT_BIT: Dict[CellOp, Tuple[Complexity, ...]] = {
    CellOp.AND: (_N, _P, _F),
    CellOp.OR: (_N, _P, _F),
    CellOp.MUX: (_N, _P, _F),
    CellOp.ADD: (_N, _P),
    CellOp.SUB: (_N, _P),
    CellOp.EQ: (_N, _F),
    CellOp.NEQ: (_N, _F),
    CellOp.ULT: (_N, _F),
    CellOp.ULE: (_N, _F),
    CellOp.SHL: (_N, _F),
    CellOp.SHR: (_N, _F),
    CellOp.REDOR: (_N, _F),
    CellOp.REDAND: (_N, _F),
}

_DISTINCT_WORD: Dict[CellOp, Tuple[Complexity, ...]] = {
    CellOp.AND: (_N, _P, _F),
    CellOp.OR: (_N, _P, _F),
    CellOp.MUX: (_N, _P, _F),
}


def distinct_complexities(op: CellOp, granularity: Granularity) -> Tuple[Complexity, ...]:
    """Complexities that produce distinct logic for this op/granularity."""
    table = _DISTINCT_BIT if granularity is Granularity.BIT else _DISTINCT_WORD
    return table.get(op, (_N,))


def effective_complexity(op: CellOp, option: TaintOption) -> Complexity:
    """Clamp a requested complexity to the highest distinct one <= it."""
    available = distinct_complexities(op, option.granularity)
    best = _N
    for comp in available:
        if comp.order <= option.complexity.order:
            best = comp
    return best


def propagate(
    cell: Cell,
    option: TaintOption,
    in_taints: Sequence[Signal],
    em: Emitter,
) -> Signal:
    """Emit taint logic for ``cell`` and return its output-taint signal.

    ``in_taints[i]`` is the (unadapted) taint signal of ``cell.ins[i]``;
    the returned signal has width ``cell.out.width`` for BIT granularity
    and width 1 for WORD granularity.
    """
    if option.granularity is Granularity.BIT:
        return _propagate_bit(cell, option.complexity, list(in_taints), em)
    return _propagate_word(cell, option.complexity, list(in_taints), em)


# ---------------------------------------------------------------------------
# WORD granularity: every taint is 1 bit
# ---------------------------------------------------------------------------

def _propagate_word(
    cell: Cell, complexity: Complexity, in_taints: List[Signal], em: Emitter
) -> Signal:
    m = cell.module
    taints = [em.adapt(t, 1, m) for t in in_taints]
    op = cell.op
    if op is CellOp.CONST:
        return em.zeros(1, m)
    if op in (CellOp.BUF, CellOp.NOT, CellOp.SLICE, CellOp.ZEXT, CellOp.SEXT,
              CellOp.REDOR, CellOp.REDAND, CellOp.REDXOR):
        return taints[0]
    naive = em.or_tree(taints, m)
    if complexity is _N:
        return naive
    if op is CellOp.MUX:
        sel, a, b = cell.ins
        st, at, bt = taints
        selected = em.mux(sel, at, bt, m)
        if complexity is _P:
            return em.or_(st, selected, module=m)
        differs = em.or_(em.neq(a, b, m), at, bt, module=m)
        return em.or_(em.and_(st, differs, module=m), selected, module=m)
    if op in (CellOp.AND, CellOp.OR):
        if len(cell.ins) != 2:
            return naive
        a, b = cell.ins
        at, bt = taints
        if op is CellOp.AND:
            # X "passes" information only if it can be non-zero.
            a_live = em.redor(a, m)
            b_live = em.redor(b, m)
        else:
            # For OR, an all-ones operand saturates the output.
            a_live = em.not_(em.redand(a, m), m)
            b_live = em.not_(em.redand(b, m), m)
        if complexity is _P:
            return em.or_(at, em.and_(a_live, bt, module=m), module=m)
        pass_a = em.and_(em.or_(b_live, bt, module=m), at, module=m)
        pass_b = em.and_(em.or_(a_live, at, module=m), bt, module=m)
        return em.or_(pass_a, pass_b, module=m)
    return naive


# ---------------------------------------------------------------------------
# BIT granularity: taints mirror data widths
# ---------------------------------------------------------------------------

def _propagate_bit(
    cell: Cell, complexity: Complexity, in_taints: List[Signal], em: Emitter
) -> Signal:
    m = cell.module
    op = cell.op
    out_w = cell.out.width
    taints = [em.adapt(t, sig.width, m) for t, sig in zip(in_taints, cell.ins)]

    if op is CellOp.CONST:
        return em.zeros(out_w, m)
    if op in (CellOp.BUF, CellOp.NOT):
        return taints[0]
    if op is CellOp.XOR:
        return em.or_tree(taints, m, width=out_w)
    if op is CellOp.CONCAT:
        return em.concat(taints, m)
    if op is CellOp.SLICE:
        return em.slice_(taints[0], cell.param("lo"), cell.param("hi"), m)
    if op is CellOp.ZEXT:
        return em.zext(taints[0], out_w, m)
    if op is CellOp.SEXT:
        return em.sext(taints[0], out_w, m)
    if op is CellOp.REDXOR:
        return em.redor(taints[0], m)

    if op in (CellOp.AND, CellOp.OR):
        if len(cell.ins) != 2:
            return _splat_naive(cell, taints, em)
        a, b = cell.ins
        at, bt = taints
        if complexity is _N:
            return em.or_(at, bt, module=m)
        if op is CellOp.AND:
            a_pass, b_pass = a, b
        else:
            a_pass, b_pass = em.not_(a, m), em.not_(b, m)
        if complexity is _P:
            return em.or_(at, em.and_(a_pass, bt, module=m), module=m)
        return em.or_(
            em.and_(b_pass, at, module=m),
            em.and_(a_pass, bt, module=m),
            em.and_(at, bt, module=m),
            module=m,
        )

    if op is CellOp.MUX:
        sel, a, b = cell.ins
        st1, at, bt = in_taints[0], taints[1], taints[2]
        st = em.adapt(st1, 1, m)
        if complexity is _N:
            return em.or_(em.sext(st, out_w, m), at, bt, module=m)
        selected = em.mux(sel, at, bt, m)
        if complexity is _P:
            return em.or_(em.sext(st, out_w, m), selected, module=m)
        # Formula 1, per bit: St & ((A_i != B_i) | At_i | Bt_i) | (S ? At_i : Bt_i)
        differs = em.or_(em.xor(a, b, m), at, bt, module=m)
        gated = em.and_(em.sext(st, out_w, m), differs, module=m)
        return em.or_(gated, selected, module=m)

    if op in (CellOp.ADD, CellOp.SUB):
        any_t = em.or_(taints[0], taints[1], module=m)
        if complexity is _N:
            return _splat(em.redor(any_t, m), out_w, em, m)
        return em.smear_up(any_t, m)

    if op in (CellOp.EQ, CellOp.NEQ):
        a, b = cell.ins
        at, bt = taints
        any_t = em.redor(em.or_(at, bt, module=m), m)
        if complexity is _N:
            return any_t
        stable_bits = em.or_(em.not_(em.xor(a, b, m), m), at, bt, module=m)
        could_be_equal = em.redand(stable_bits, m)
        return em.and_(could_be_equal, any_t, module=m)

    if op in (CellOp.ULT, CellOp.ULE):
        a, b = cell.ins
        at, bt = taints
        any_t = em.redor(em.or_(at, bt, module=m), m)
        if complexity is _N:
            return any_t
        a_min = em.and_(a, em.not_(at, m), module=m)
        a_max = em.or_(a, at, module=m)
        b_min = em.and_(b, em.not_(bt, m), module=m)
        b_max = em.or_(b, bt, module=m)
        if op is CellOp.ULT:
            always_1 = em.ult(a_max, b_min, m)
            always_0 = em.ule(b_max, a_min, m)
        else:
            always_1 = em.ule(a_max, b_min, m)
            always_0 = em.ult(b_max, a_min, m)
        stable = em.or_(always_1, always_0, module=m)
        return em.and_(em.not_(stable, m), any_t, module=m)

    if op in (CellOp.SHL, CellOp.SHR):
        a, sh = cell.ins
        at, sht = taints
        sh_tainted = em.redor(sht, m)
        if complexity is _N:
            any_t = em.or_(em.redor(at, m), sh_tainted, module=m)
            return _splat(any_t, out_w, em, m)
        shifted = em.shl(at, sh, m) if op is CellOp.SHL else em.shr(at, sh, m)
        return em.mux(sh_tainted, em.ones(out_w, m), shifted, m)

    if op in (CellOp.REDOR, CellOp.REDAND):
        a = cell.ins[0]
        at = taints[0]
        any_t = em.redor(at, m)
        if complexity is _N:
            return any_t
        untainted = em.not_(at, m)
        if op is CellOp.REDOR:
            # A stable 1 in an untainted position pins the output to 1.
            stable = em.redor(em.and_(a, untainted, module=m), m)
        else:
            stable = em.redor(em.and_(em.not_(a, m), untainted, module=m), m)
        return em.and_(em.not_(stable, m), any_t, module=m)

    return _splat_naive(cell, taints, em)


def _splat(bit: Signal, width: int, em: Emitter, module: str) -> Signal:
    return em.sext(bit, width, module)


def _splat_naive(cell: Cell, taints: List[Signal], em: Emitter) -> Signal:
    m = cell.module
    reduced = [em.redor(t, m) for t in taints]
    return _splat(em.or_tree(reduced, m), cell.out.width, em, m)

"""Taint scheme serialization: persist and reload refined schemes.

A CEGAR run's product is the refined :class:`TaintScheme`; saving it
lets users re-instrument later (new simulations, deeper verification
runs, scheme diffing) without re-running refinement.  Custom module
handlers are code, not data — they are recorded by name only and must
be re-attached on load.
"""

from __future__ import annotations

import json
from typing import Any, Dict, TextIO

from repro.taint.space import (
    Complexity,
    Granularity,
    TaintOption,
    TaintScheme,
    UnitLevel,
)

FORMAT_VERSION = 1


def scheme_to_dict(scheme: TaintScheme) -> Dict[str, Any]:
    def option(opt: TaintOption):
        return [opt.granularity.value, opt.complexity.value]

    return {
        "format": "repro-taint-scheme",
        "version": FORMAT_VERSION,
        "name": scheme.name,
        "unit_level": scheme.unit_level.value,
        "default": option(scheme.default),
        "blackboxes": sorted(scheme.blackboxes),
        "cell_options": {name: option(opt) for name, opt in scheme.cell_options.items()},
        "register_granularity": {
            name: gran.value for name, gran in scheme.register_granularity.items()
        },
        "module_defaults": {
            path: option(opt) for path, opt in scheme.module_defaults.items()
        },
        "custom_modules": sorted(scheme.custom_modules),  # names only
    }


def scheme_from_dict(data: Dict[str, Any]) -> TaintScheme:
    if data.get("format") != "repro-taint-scheme":
        raise ValueError("not a repro-taint-scheme document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported scheme version {data.get('version')!r}")

    def option(pair) -> TaintOption:
        return TaintOption(Granularity(pair[0]), Complexity(pair[1]))

    scheme = TaintScheme(
        name=data["name"],
        unit_level=UnitLevel(data["unit_level"]),
        default=option(data["default"]),
        blackboxes=set(data.get("blackboxes", ())),
        cell_options={k: option(v) for k, v in data.get("cell_options", {}).items()},
        register_granularity={
            k: Granularity(v)
            for k, v in data.get("register_granularity", {}).items()
        },
        module_defaults={
            k: option(v) for k, v in data.get("module_defaults", {}).items()
        },
    )
    if data.get("custom_modules"):
        raise ValueError(
            "scheme uses custom module handlers "
            f"({', '.join(data['custom_modules'])}); re-attach them to "
            "scheme.custom_modules after loading with load_scheme(..., "
            "allow_custom=True)"
        )
    return scheme


def save_scheme(scheme: TaintScheme, stream: TextIO) -> None:
    json.dump(scheme_to_dict(scheme), stream, indent=1)


def load_scheme(stream: TextIO, allow_custom: bool = False) -> TaintScheme:
    data = json.load(stream)
    if allow_custom:
        data = dict(data)
        data["custom_modules"] = []
    return scheme_from_dict(data)

"""The three-dimensional taint space (paper Section 3).

Dimensions:

- **Unit level** — at which abstraction the propagation logic is
  designed: netlist *gates*, HDL *cells* (macrocells), or whole
  *modules*.
- **Taint-bit granularity** — one taint bit per data *bit*, per *word*
  (one bit tracks a whole multi-bit signal), or per *register group*
  (one bit for all the registers of a module; realised here as
  per-module blackboxing, matching the paper's footnote-2 restriction
  of never grouping wires).
- **Logic complexity** — how much dynamic (run-time value) information
  the propagation logic consumes: *naive* (none), *partially dynamic*
  (a subset of inputs), *fully dynamic* (all inputs).

A :class:`TaintScheme` assigns a :class:`TaintOption` to every cell (by
default, per-scheme) plus a set of blackboxed modules; it is the object
the CEGAR loop mutates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


class UnitLevel(enum.Enum):
    GATE = "gate"
    CELL = "cell"
    MODULE = "module"


class Granularity(enum.Enum):
    BIT = "bit"
    WORD = "word"
    MODULE = "module"  # one bit per register group (a module's registers)

    @property
    def order(self) -> int:
        return {"module": 0, "word": 1, "bit": 2}[self.value]


class Complexity(enum.Enum):
    NAIVE = "naive"
    PARTIAL = "partial"
    FULL = "full"

    @property
    def order(self) -> int:
        return {"naive": 0, "partial": 1, "full": 2}[self.value]


@dataclass(frozen=True, order=False)
class TaintOption:
    """A point in the (granularity, complexity) plane for one location."""

    granularity: Granularity
    complexity: Complexity

    def __str__(self) -> str:
        return f"{self.granularity.value}/{self.complexity.value}"

    @property
    def cost(self) -> Tuple[int, int]:
        """Lexicographic overhead order used by the refinement ladder."""
        return (self.granularity.order, self.complexity.order)


#: The paper's Figure 4 ordering: starting from the blackbox scheme,
#: first increase logic complexity, then refine bit granularity (with
#: full dynamic logic), and only then fall back to module-level
#: customization (which is manual and handled outside this ladder).
REFINEMENT_LADDER: Tuple[TaintOption, ...] = (
    TaintOption(Granularity.WORD, Complexity.NAIVE),
    TaintOption(Granularity.WORD, Complexity.PARTIAL),
    TaintOption(Granularity.WORD, Complexity.FULL),
    TaintOption(Granularity.BIT, Complexity.NAIVE),
    TaintOption(Granularity.BIT, Complexity.PARTIAL),
    TaintOption(Granularity.BIT, Complexity.FULL),
)


def refinement_ladder(current: Optional[TaintOption] = None) -> List[TaintOption]:
    """Options strictly more precise than ``current``, cheapest first."""
    if current is None:
        return list(REFINEMENT_LADDER)
    try:
        index = REFINEMENT_LADDER.index(current)
    except ValueError:
        return [opt for opt in REFINEMENT_LADDER if opt.cost > current.cost]
    return list(REFINEMENT_LADDER[index + 1:])


@dataclass
class TaintScheme:
    """A full taint-scheme assignment for one design.

    Attributes:
        name: Human-readable scheme name.
        unit_level: The level the scheme's logic is generated at; GATE
            means the design is lowered to gates before instrumenting.
        default: Option used for every cell without an override.
        blackboxes: Module paths tracked by a single taint register bit
            (the paper's Step 1 "blackboxing" initial scheme).
        cell_options: Per-cell overrides, keyed by the cell's output
            signal name (unique per cell).
        register_granularity: Per-register granularity overrides.
        module_defaults: Per-module-subtree default options (longest
            prefix wins).  Used e.g. to pin the ISA shadow machine at
            CellIFT precision while the DUV is refined.
    """

    name: str
    unit_level: UnitLevel = UnitLevel.CELL
    default: TaintOption = TaintOption(Granularity.WORD, Complexity.NAIVE)
    blackboxes: Set[str] = field(default_factory=set)
    cell_options: Dict[str, TaintOption] = field(default_factory=dict)
    register_granularity: Dict[str, Granularity] = field(default_factory=dict)
    module_defaults: Dict[str, TaintOption] = field(default_factory=dict)
    #: Manual module-level taint logic (see :mod:`repro.taint.custom`).
    custom_modules: Dict[str, object] = field(default_factory=dict)

    def copy(self, name: Optional[str] = None) -> "TaintScheme":
        return TaintScheme(
            name=name or self.name,
            unit_level=self.unit_level,
            default=self.default,
            blackboxes=set(self.blackboxes),
            cell_options=dict(self.cell_options),
            register_granularity=dict(self.register_granularity),
            module_defaults=dict(self.module_defaults),
            custom_modules=dict(self.custom_modules),
        )

    # -- queries ---------------------------------------------------------
    def _module_default(self, module_path: str) -> Optional[TaintOption]:
        if not self.module_defaults:
            return None
        path = module_path
        while path:
            option = self.module_defaults.get(path)
            if option is not None:
                return option
            dot = path.rfind(".")
            path = path[:dot] if dot >= 0 else ""
        return None

    def option_for_cell(self, cell_out_name: str, module: str = "") -> TaintOption:
        override = self.cell_options.get(cell_out_name)
        if override is not None:
            return override
        module_default = self._module_default(module)
        if module_default is not None:
            return module_default
        return self.default

    def granularity_for_register(self, register_name: str, module: str = "") -> Granularity:
        gran = self.register_granularity.get(register_name)
        if gran is not None:
            return gran
        module_default = self._module_default(module)
        if module_default is not None and module_default.granularity is not Granularity.MODULE:
            return module_default.granularity
        if self.default.granularity is Granularity.MODULE:
            return Granularity.WORD
        return self.default.granularity

    def effective_blackbox(self, module_path: str) -> Optional[str]:
        """The outermost blackboxed ancestor of ``module_path``, if any."""
        best: Optional[str] = None
        path = module_path
        while path:
            if path in self.blackboxes:
                best = path
            dot = path.rfind(".")
            path = path[:dot] if dot >= 0 else ""
        return best

    def effective_region(self, module_path: str) -> Optional[Tuple[str, str]]:
        """The outermost special region containing ``module_path``.

        Returns ``(region path, kind)`` with kind ``"custom"`` or
        ``"blackbox"``; custom logic wins over blackboxing for the same
        path (attaching a handler refines the blackbox).
        """
        best: Optional[Tuple[str, str]] = None
        path = module_path
        while path:
            if path in self.custom_modules:
                best = (path, "custom")
            elif path in self.blackboxes:
                best = (path, "blackbox")
            dot = path.rfind(".")
            path = path[:dot] if dot >= 0 else ""
        return best

    # -- mutations used by the CEGAR loop ---------------------------------
    def open_blackbox(self, module_path: str) -> None:
        """Refine a blackboxed module to per-word, naive-logic tracking."""
        self.blackboxes.discard(module_path)

    def refine_cell(self, cell_out_name: str, option: TaintOption) -> None:
        self.cell_options[cell_out_name] = option

    def refine_register(self, register_name: str, granularity: Granularity) -> None:
        self.register_granularity[register_name] = granularity

    def refined_cell_count(self) -> int:
        """Cells whose logic uses dynamic values (partial or full)."""
        return sum(
            1 for opt in self.cell_options.values()
            if opt.complexity is not Complexity.NAIVE
        )


# ---------------------------------------------------------------------------
# Presets for the existing schemes of Table 5
# ---------------------------------------------------------------------------

def cellift_scheme() -> TaintScheme:
    """CellIFT [39]: cell level, per-bit granularity, fully dynamic."""
    return TaintScheme(
        "CellIFT",
        unit_level=UnitLevel.CELL,
        default=TaintOption(Granularity.BIT, Complexity.FULL),
    )


def glift_scheme() -> TaintScheme:
    """GLIFT [46]: gate level, per-bit granularity, fully dynamic."""
    return TaintScheme(
        "GLIFT",
        unit_level=UnitLevel.GATE,
        default=TaintOption(Granularity.BIT, Complexity.FULL),
    )


def rtlift_scheme(dynamic: bool = True) -> TaintScheme:
    """RTLIFT [1]: cell level, per-bit, fully dynamic or naive."""
    complexity = Complexity.FULL if dynamic else Complexity.NAIVE
    return TaintScheme(
        f"RTLIFT-{complexity.value}",
        unit_level=UnitLevel.CELL,
        default=TaintOption(Granularity.BIT, complexity),
    )


def imprecise_scheme(complexity: Complexity) -> TaintScheme:
    """Imprecise Security [23] / Arbitrary Precision [6]: gate level,
    per-bit, user-selected dynamic level."""
    return TaintScheme(
        f"Imprecise-{complexity.value}",
        unit_level=UnitLevel.GATE,
        default=TaintOption(Granularity.BIT, complexity),
    )


def blackbox_scheme(modules: Iterable[str], name: str = "blackbox") -> TaintScheme:
    """The paper's Step-1 initial scheme: every listed module is tracked
    by a single naive taint bit; glue logic defaults to word/naive."""
    return TaintScheme(
        name,
        unit_level=UnitLevel.MODULE,
        default=TaintOption(Granularity.WORD, Complexity.NAIVE),
        blackboxes=set(modules),
    )


#: Table 5 rows: how existing schemes sit in the three-dimensional space.
PRESETS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "GLIFT [46]": {
        "unit": ("gate",), "granularity": ("bit",), "complexity": ("full dyn",),
    },
    "[23], [6]": {
        "unit": ("gate",), "granularity": ("bit",),
        "complexity": ("full dyn", "partial dyn", "naive"),
    },
    "RTLIFT [1]": {
        "unit": ("cell",), "granularity": ("bit",), "complexity": ("full dyn", "naive"),
    },
    "CellIFT [39]": {
        "unit": ("cell",), "granularity": ("bit",), "complexity": ("full dyn", "naive"),
    },
    "HybriDIFT [40]": {
        "unit": ("module",), "granularity": ("customized",), "complexity": ("customized",),
    },
    "Compass": {
        "unit": ("gate", "cell", "module"),
        "granularity": ("bit", "word", "reg group"),
        "complexity": ("full dyn", "partial dyn", "naive"),
    },
}

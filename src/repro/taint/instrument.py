"""Taint instrumentation pass (the paper's FIRRTL compiler pass).

Given a design and a :class:`~repro.taint.space.TaintScheme`, this pass
produces a new circuit containing the original logic *plus* taint logic:

- every non-blackboxed signal gets a taint signal (``<name>__t``) of
  width 1 (WORD granularity) or of the signal's width (BIT);
- every non-blackboxed register gets a taint register;
- every blackboxed module is tracked by a single *sticky* taint
  register bit (the paper's Step-1 "blackboxing" scheme): the bit sets
  as soon as tainted data enters the module and never clears, and the
  module's outputs are tainted whenever the bit is set or tainted data
  can combinationally reach them (per-output input-cone analysis keeps
  the taint network loop-free, which is why the paper only groups
  registers, never wires).

Taint *sources* (which registers/inputs start tainted) are a property
of the verification task, not of the scheme, and are supplied
separately via :class:`TaintSources`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.hdl.cells import Cell, CellOp
from repro.hdl.circuit import Circuit, Register
from repro.hdl.lowering import lower_to_gates
from repro.hdl.signals import Signal, SignalKind
from repro.taint.emitter import Emitter
from repro.taint.policies import effective_complexity, propagate
from repro.taint.space import Complexity, Granularity, TaintOption, TaintScheme, UnitLevel


@dataclass
class TaintSources:
    """Where taint originates: initial register taint and input taint.

    Masks are per-bit; at WORD/MODULE granularity any non-zero mask
    means "tainted".  Use ``-1`` for "all bits".
    """

    registers: Dict[str, int] = field(default_factory=dict)
    inputs: Dict[str, int] = field(default_factory=dict)

    def register_mask(self, name: str, width: int) -> int:
        return self.registers.get(name, 0) & ((1 << width) - 1)

    def input_mask(self, name: str, width: int) -> int:
        return self.inputs.get(name, 0) & ((1 << width) - 1)


class InstrumentationError(RuntimeError):
    pass


@dataclass
class InstrumentedDesign:
    """The result of the instrumentation pass."""

    original: Circuit
    circuit: Circuit
    scheme: TaintScheme
    sources: TaintSources
    taint_name: Dict[str, str]              # original signal -> taint signal
    module_taint: Dict[str, str]            # blackbox region -> taint reg name
    applied_options: Dict[str, TaintOption] # cell out name -> option used
    region_of_cell: Dict[str, Optional[str]]  # cell out name -> blackbox region
    #: For GATE unit-level schemes: the uninstrumented *gate-level*
    #: circuit whose signal names ``taint_name`` refers to (``original``
    #: stays the cell-level design for overhead baselines).
    gate_level_original: Optional[Circuit] = None
    #: Non-fatal findings the pass surfaced (scheme entries and taint
    #: sources that matched nothing — historically silently ignored).
    warnings: object = None

    @property
    def uninstrumented(self) -> Circuit:
        """The design the taint maps actually refer to."""
        return self.gate_level_original or self.original

    def taint_signal(self, original_name: str) -> Signal:
        return self.circuit.signal(self.taint_name[original_name])

    def has_taint(self, original_name: str) -> bool:
        return original_name in self.taint_name

    # ------------------------------------------------------------------
    def add_taint_monitor(
        self, sink_names: Sequence[str], out_name: str = "taint_bad"
    ) -> str:
        """Append an OUTPUT that is 1 when any sink's taint is non-zero."""
        em = Emitter(self.circuit, tag="mon")
        bits = [em.redor(self.taint_signal(n), "_monitor") for n in sink_names]
        any_taint = em.or_tree(bits, "_monitor")
        out = Signal(out_name, 1, SignalKind.OUTPUT, module="_monitor")
        self.circuit.add_cell(Cell(CellOp.BUF, out, (any_taint,), module="_monitor"))
        return out_name

    def add_gated_clean_monitor(
        self, pairs: Sequence[Tuple[str, str]], out_name: str = "taint_gated_clean"
    ) -> str:
        """Append an OUTPUT that is 1 unless a gated taint fires.

        ``pairs`` are ``(condition_signal, value_signal)``: the monitor
        is 0 in a cycle where some condition *value* is 1 while the
        corresponding value signal's *taint* is non-zero.  This is the
        shadow-logic form of the contract constraint ("whenever the ISA
        machine commits, its observation must be untainted") — it uses
        the condition's value, not its taint, so a tainted condition
        cannot mask violations on the assertion side.
        """
        em = Emitter(self.circuit, tag="mon")
        fired = []
        for cond_name, value_name in pairs:
            cond = self.circuit.signal(cond_name)
            cond1 = em.redor(cond, "_monitor")
            taint = em.redor(self.taint_signal(value_name), "_monitor")
            fired.append(em.and_(cond1, taint, module="_monitor"))
        clean = em.not_(em.or_tree(fired, "_monitor"), "_monitor")
        out = Signal(out_name, 1, SignalKind.OUTPUT, module="_monitor")
        self.circuit.add_cell(Cell(CellOp.BUF, out, (clean,), module="_monitor"))
        return out_name

    def add_zero_taint_monitor(
        self, names: Sequence[str], out_name: str = "taint_clean"
    ) -> str:
        """Append an OUTPUT that is 1 when none of the signals is tainted.

        Used as a per-cycle *assumption* (e.g. the contract constraint:
        the ISA machine's observation taint stays 0).
        """
        em = Emitter(self.circuit, tag="mon")
        bits = [em.redor(self.taint_signal(n), "_monitor") for n in names]
        any_taint = em.or_tree(bits, "_monitor")
        clean = em.not_(any_taint, "_monitor")
        out = Signal(out_name, 1, SignalKind.OUTPUT, module="_monitor")
        self.circuit.add_cell(Cell(CellOp.BUF, out, (clean,), module="_monitor"))
        return out_name


def instrument(
    circuit: Circuit, scheme: TaintScheme, sources: Optional[TaintSources] = None
) -> InstrumentedDesign:
    """Run the instrumentation pass and return the instrumented design.

    The result's ``warnings`` is a :class:`~repro.lint.LintReport` of
    non-fatal findings: scheme overrides and taint sources referencing
    cells, registers, or modules the design does not have.  The pass
    ignores such entries when generating logic (a stale override is not
    an error), but a silent typo in a source name has historically
    meant "verifying nothing", so they are surfaced here.
    """
    sources = sources or TaintSources()
    if scheme.unit_level is UnitLevel.GATE:
        design = _instrument_gate_level(circuit, scheme, sources)
    else:
        design = _Instrumenter(circuit, scheme, sources).run()
    from repro.lint.diagnostics import LintReport
    from repro.lint.structural import scheme_reference_diagnostics

    report = LintReport(design.circuit.name)
    report.extend(scheme_reference_diagnostics(circuit, scheme, sources))
    report.sort()
    design.warnings = report
    return design


def _instrument_gate_level(
    circuit: Circuit, scheme: TaintScheme, sources: TaintSources
) -> InstrumentedDesign:
    """GATE unit level: lower to gates, then instrument the gates.

    Source masks given on original names are projected onto the per-bit
    gate registers/inputs.
    """
    lowered = lower_to_gates(circuit)
    gate_sources = TaintSources()
    for reg in lowered.circuit.registers:
        pass
    for orig_name, bit_sigs in lowered.bits.items():
        reg_mask = sources.registers.get(orig_name)
        in_mask = sources.inputs.get(orig_name)
        for i, bit_sig in enumerate(bit_sigs):
            if reg_mask is not None and (reg_mask >> i) & 1:
                gate_sources.registers[bit_sig.name] = 1
            if in_mask is not None and (in_mask >> i) & 1:
                gate_sources.inputs[bit_sig.name] = 1
    gate_scheme = scheme.copy()
    result = _Instrumenter(lowered.circuit, gate_scheme, gate_sources).run()
    result.gate_level_original = lowered.circuit
    result.original = circuit
    return result


class _Instrumenter:
    def __init__(self, circuit: Circuit, scheme: TaintScheme, sources: TaintSources) -> None:
        circuit.validate()
        self.src = circuit
        self.scheme = scheme
        self.sources = sources
        self.inst = circuit.clone(f"{circuit.name}+{scheme.name}")
        self.em = Emitter(self.inst)
        self.taint_of: Dict[str, Signal] = {}
        self.module_taint: Dict[str, Signal] = {}
        self.applied: Dict[str, TaintOption] = {}
        self.region_of_cell: Dict[str, Optional[str]] = {}
        self._entering: Dict[str, Set[str]] = {}   # region -> names entering it
        self._cone_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        self._region_out_cache: Dict[str, Signal] = {}
        self._producer_region: Dict[str, Optional[str]] = {}

    # ------------------------------------------------------------------
    def run(self) -> InstrumentedDesign:
        self._classify_producers()
        self._declare_blackbox_bits()
        self._declare_register_taints()
        self._taint_inputs()
        for cell in self.src.topo_cells():
            self._process_cell(cell)
        self._finish_registers()
        self._finish_blackbox_bits()
        self.inst.validate()
        return InstrumentedDesign(
            original=self.src,
            circuit=self.inst,
            scheme=self.scheme,
            sources=self.sources,
            taint_name={name: sig.name for name, sig in self.taint_of.items()},
            module_taint={r: s.name for r, s in self.module_taint.items()},
            applied_options=self.applied,
            region_of_cell=self.region_of_cell,
        )

    # ------------------------------------------------------------------
    def _region(self, module_path: str) -> Optional[str]:
        region = self.scheme.effective_region(module_path)
        return region[0] if region else None

    def _region_kind(self, region: str) -> str:
        return "custom" if region in self.scheme.custom_modules else "blackbox"

    def _classify_producers(self) -> None:
        """Region in which each signal is produced (None = open logic)."""
        for sig in self.src.inputs:
            self._producer_region[sig.name] = None  # top-level inputs are open
        for reg in self.src.registers:
            self._producer_region[reg.q.name] = self._region(reg.q.module)
        for cell in self.src.cells:
            self._producer_region[cell.out.name] = self._region(cell.module)

    def _declare_blackbox_bits(self) -> None:
        regions = set()
        for region in self._producer_region.values():
            if region is not None:
                regions.add(region)
        for cell in self.src.cells:
            region = self._region(cell.module)
            if region is not None:
                regions.add(region)
        for region in sorted(regions):
            self._entering[region] = set()
            if self._region_kind(region) == "custom":
                continue  # handler-managed; no sticky bit
            q = Signal(f"{region}.__bb_taint", 1, SignalKind.REG, module=region)
            self.inst.add_signal(q)
            self.module_taint[region] = q

    def _declare_register_taints(self) -> None:
        self._reg_taint_q: Dict[str, Signal] = {}
        for reg in self.src.registers:
            region = self._region(reg.q.module)
            if region is not None:
                if self._region_kind(region) == "blackbox":
                    self.taint_of[reg.q.name] = self.module_taint[region]
                # custom regions: taints resolved lazily via the handler
                continue
            gran = self.scheme.granularity_for_register(reg.q.name, reg.q.module)
            width = reg.q.width if gran is Granularity.BIT else 1
            q = Signal(f"{reg.q.name}__t", width, SignalKind.REG, module=reg.q.module)
            self.inst.add_signal(q)
            self._reg_taint_q[reg.q.name] = q
            self.taint_of[reg.q.name] = q

    def _taint_inputs(self) -> None:
        for sig in self.src.inputs:
            mask = self.sources.input_mask(sig.name, sig.width)
            if mask == 0:
                taint = self.em.zeros(1, sig.module)
            elif mask == sig.mask:
                taint = self.em.ones(1, sig.module)
            else:
                taint = self.em.const(mask, sig.width, sig.module)
            self.taint_of[sig.name] = taint

    # ------------------------------------------------------------------
    def _taint_expr(self, sig: Signal) -> Signal:
        existing = self.taint_of.get(sig.name)
        if existing is not None:
            return existing
        region = self._producer_region.get(sig.name)
        if region is None:
            raise InstrumentationError(f"no taint available for signal {sig.name!r}")
        taint = self._region_output_taint(region, sig)
        self.taint_of[sig.name] = taint
        return taint

    def _region_output_taint(self, region: str, sig: Signal) -> Signal:
        cached = self._region_out_cache.get(sig.name)
        if cached is not None:
            return cached
        if self._region_kind(region) == "custom":
            handler = self.scheme.custom_modules[region]
            taint = handler.output_taint(
                sig,
                lambda name: self._taint_expr(self.src.signal(name)),
                self.em,
                region,
            )
            self._region_out_cache[sig.name] = taint
            return taint
        entering = self._combinational_cone_entries(region, sig)
        parts = [self.module_taint[region]]
        for name in entering:
            entry_taint = self._taint_expr(self.src.signal(name))
            parts.append(self.em.adapt(entry_taint, 1, region))
        taint = self.em.or_tree(parts, region)
        self._region_out_cache[sig.name] = taint
        return taint

    def _combinational_cone_entries(self, region: str, sig: Signal) -> Tuple[str, ...]:
        """Signals entering ``region`` that can combinationally reach ``sig``."""
        key = (region, sig.name)
        cached = self._cone_cache.get(key)
        if cached is not None:
            return cached
        entries: List[str] = []
        seen: Set[str] = set()
        stack = [sig.name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            current = self.src.signal(name)
            if self.src.register_of(current) is not None:
                if self._region(current.module) == region:
                    continue  # covered by the region's sticky bit
                entries.append(name)  # external state entering the region
                continue
            producer = self.src.producer(current)
            if producer is None:
                if current.kind is SignalKind.INPUT:
                    entries.append(name)
                continue
            if self._region(producer.module) != region:
                entries.append(name)
                continue
            for fan_in in producer.ins:
                stack.append(fan_in.name)
        result = tuple(sorted(entries))
        self._cone_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def _process_cell(self, cell: Cell) -> None:
        region = self._region(cell.module)
        self.region_of_cell[cell.out.name] = region
        if region is not None:
            for sig in cell.ins:
                if self._producer_region.get(sig.name) != region:
                    self._entering[region].add(sig.name)
            return
        option = self.scheme.option_for_cell(cell.out.name, cell.module)
        complexity = effective_complexity(cell.op, option)
        option = TaintOption(option.granularity, complexity)
        in_taints = [self._taint_expr(sig) for sig in cell.ins]
        taint = propagate(cell, option, in_taints, self.em)
        named = self.em.buf(taint, cell.module, name=f"{cell.out.name}__t")
        self.taint_of[cell.out.name] = named
        self.applied[cell.out.name] = option

    def _finish_registers(self) -> None:
        for reg in self.src.registers:
            q = self._reg_taint_q.get(reg.q.name)
            if q is None:
                continue  # blackboxed
            d_taint = self._taint_expr(self.src.signal(reg.d.name))
            d_taint = self.em.adapt(d_taint, q.width, reg.q.module)
            mask = self.sources.register_mask(reg.q.name, reg.q.width)
            if q.width == 1:
                reset = 1 if mask else 0
            else:
                reset = mask
            self.inst.add_register(Register(q, d_taint, reset))

    def _finish_blackbox_bits(self) -> None:
        # Register next-values computed outside their blackbox also carry
        # taint into the region.
        for reg in self.src.registers:
            region = self._region(reg.q.module)
            if region is not None and self._producer_region.get(reg.d.name) != region:
                self._entering[region].add(reg.d.name)
        for region, q in self.module_taint.items():
            parts = [q]
            for name in sorted(self._entering[region]):
                taint = self._taint_expr(self.src.signal(name))
                parts.append(self.em.adapt(taint, 1, region))
            d = self.em.or_tree(parts, region)
            reset = 0
            for reg in self.src.registers:
                if self._region(reg.q.module) == region:
                    if self.sources.register_mask(reg.q.name, reg.q.width):
                        reset = 1
            self.inst.add_register(Register(q, d, reset))

"""Deterministic fault injection for robustness testing.

Long-running CEGAR verifies must survive crashed engine workers,
dropped queue messages and torn files.  Proving that the recovery
paths actually work requires *reproducing* those failures on demand,
so this module provides a seeded, deterministic :class:`FaultPlan`
that the portfolio scheduler, the engine workers and the checkpoint
journal consult at well-defined injection points:

- :func:`kill_worker` — ``os._exit`` a specific engine worker after it
  finished its M-th solve (simulates an OOM kill / segfault mid-run);
- :func:`drop_entry` — silently drop the N-th cache entry a worker
  streams to the scheduler (simulates a lost queue message);
- :func:`corrupt_entry` — replace the N-th streamed cache entry with
  garbage (simulates queue/disk corruption; the parent-side merge must
  reject it);
- :func:`delay_verdict` — sleep before shipping the final verdict
  (simulates a slow worker racing the scheduler's deadline backstop);
- :func:`delay_solve` — sleep before every model-checking call
  (emulates a slow solve backend — a loaded container or a remote
  solve service — so latency-hiding machinery such as speculative
  CEGAR can be benchmarked deterministically even on a single core);
- :func:`corrupt_checkpoint` / :func:`truncate_checkpoint` — damage a
  checkpoint journal entry on disk right after it was written (the
  reader must detect the bad checksum and fall back);
- :func:`kill_after_checkpoint` — SIGKILL the *calling process* right
  after journal entry N hit the disk (simulates a dead parent; the
  integration tests resume from the journal and expect the identical
  verdict);
- :func:`torn_segment` / :func:`corrupt_manifest` — damage a persistent
  solve-store segment or its manifest right after it was written (the
  store's torn-tail / manifest-rebuild recovery must kick in on the
  next open);
- :func:`stale_lock` — plant a store lock file owned by a dead pid
  before the store is opened (the open must detect the dead owner and
  take the lock over);
- :func:`enospc` — fail the N-th store segment write with ``ENOSPC``
  (the store must keep the entries pending and retry on the next
  flush instead of crashing the verify).

Faults are scoped to a worker *attempt* (default: the first), so a
killed worker's supervised retry runs clean — which is exactly the
recovery the tests want to observe.  A :class:`FaultPlan` is plain
picklable data plus per-process counters; shipping it into a worker
process gives that worker its own independent counter state.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Exit code used by injected worker kills; distinctive so tests (and
#: humans reading scheduler logs) can tell an injected crash from a
#: genuine one.
KILLED_EXIT_CODE = 66

_WORKER_KINDS = ("kill_worker", "drop_entry", "corrupt_entry", "delay_verdict")
_JOURNAL_KINDS = ("corrupt_checkpoint", "truncate_checkpoint",
                  "kill_after_checkpoint")
_STORE_KINDS = ("torn_segment", "corrupt_manifest", "stale_lock", "enospc")
_LATENCY_KINDS = ("delay_solve",)
KINDS = _WORKER_KINDS + _JOURNAL_KINDS + _STORE_KINDS + _LATENCY_KINDS

#: What a corrupted streamed cache entry is replaced with: not a
#: :class:`~repro.formal.cache.CachedVerdict`, so a validating merge
#: must drop it instead of storing it.
CORRUPT_ENTRY_PAYLOAD = "\x00corrupt-cache-entry\x00"


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault (plain data; see the module constructors)."""

    kind: str
    engine: Optional[str] = None   # worker faults: which engine to hit
    after: int = 0                 # solve count / entry index / journal index
    attempt: int = 0               # which worker attempt the fault arms on
    delay: float = 0.0             # delay_verdict only
    pid: Optional[int] = None      # stale_lock only: the planted dead owner

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {KINDS})")
        if self.kind in _WORKER_KINDS and not self.engine:
            raise ValueError(f"fault {self.kind!r} needs an engine name")


def kill_worker(engine: str, after_solves: int = 1, attempt: int = 0) -> FaultSpec:
    """Hard-kill the ``engine`` worker once it completed N solves."""
    return FaultSpec("kill_worker", engine=engine, after=after_solves,
                     attempt=attempt)


def drop_entry(engine: str, index: int = 0, attempt: int = 0) -> FaultSpec:
    """Drop the index-th cache entry the ``engine`` worker streams."""
    return FaultSpec("drop_entry", engine=engine, after=index, attempt=attempt)


def corrupt_entry(engine: str, index: int = 0, attempt: int = 0) -> FaultSpec:
    """Replace the index-th streamed cache entry with garbage."""
    return FaultSpec("corrupt_entry", engine=engine, after=index,
                     attempt=attempt)


def delay_verdict(engine: str, delay: float, attempt: int = 0) -> FaultSpec:
    """Sleep ``delay`` seconds before shipping the final verdict."""
    return FaultSpec("delay_verdict", engine=engine, delay=delay,
                     attempt=attempt)


def delay_solve(delay: float) -> FaultSpec:
    """Sleep ``delay`` seconds before each model-checking call.

    Engine-agnostic: the sleep happens in whichever process is about
    to dispatch a model-checking run (the CEGAR loop inline, a
    speculative candidate worker, a serve-daemon handler), so injected
    latency overlaps across processes exactly as real backend latency
    would.  The run's trajectory is unaffected — only wall-clock time
    moves — which makes this the fault of choice for benchmarking
    latency-hiding schedulers.
    """
    return FaultSpec("delay_solve", delay=delay)


def corrupt_checkpoint(index: int = 0) -> FaultSpec:
    """Flip bytes in journal entry ``index`` right after it is written."""
    return FaultSpec("corrupt_checkpoint", after=index)


def truncate_checkpoint(index: int = 0) -> FaultSpec:
    """Cut journal entry ``index`` in half right after it is written."""
    return FaultSpec("truncate_checkpoint", after=index)


def kill_after_checkpoint(index: int = 0) -> FaultSpec:
    """SIGKILL the writing process after journal entry ``index`` landed."""
    return FaultSpec("kill_after_checkpoint", after=index)


def torn_segment(index: int = 0) -> FaultSpec:
    """Truncate solve-store segment write ``index`` right after it lands."""
    return FaultSpec("torn_segment", after=index)


def corrupt_manifest(index: int = 0) -> FaultSpec:
    """Flip bytes in the store manifest after its ``index``-th write."""
    return FaultSpec("corrupt_manifest", after=index)


def stale_lock(pid: Optional[int] = None) -> FaultSpec:
    """Plant a store lock owned by a dead pid before the store opens.

    ``pid=None`` spawns (and reaps) a short-lived child at injection
    time and uses its — by then certainly dead — pid.
    """
    return FaultSpec("stale_lock", pid=pid)


def enospc(index: int = 0) -> FaultSpec:
    """Fail solve-store segment write ``index`` with ``ENOSPC``."""
    return FaultSpec("enospc", after=index)


@dataclass
class FaultPlan:
    """A seeded, deterministic set of faults to inject during a run.

    The plan is consulted at each injection point; counters (solves per
    worker, streamed entries per worker, journal entries written) are
    kept per process, so the same plan pickled into a fresh worker
    starts counting from zero — deterministic regardless of scheduling.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: Per-process counters; never pickle-shared state of record.
    _solves: Dict[Tuple[str, int], int] = field(default_factory=dict, repr=False)
    _streamed: Dict[Tuple[str, int], int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)

    def __getstate__(self) -> Dict[str, Any]:
        # Counters are per-process scratch state: a plan pickled into a
        # fresh worker must start counting that worker's events from
        # zero, regardless of what the sending process observed.
        return {"specs": self.specs, "seed": self.seed,
                "_solves": {}, "_streamed": {}}

    def _matching(self, kind: str, engine: Optional[str] = None,
                  attempt: Optional[int] = None):
        for spec in self.specs:
            if spec.kind != kind:
                continue
            if engine is not None and spec.engine != engine:
                continue
            if attempt is not None and spec.attempt != attempt:
                continue
            yield spec

    # -- worker-side hooks -------------------------------------------------

    def on_worker_solve(self, engine: str, attempt: int) -> None:
        """Called by the worker after each completed solve (cache store)."""
        key = (engine, attempt)
        count = self._solves.get(key, 0) + 1
        self._solves[key] = count
        for spec in self._matching("kill_worker", engine, attempt):
            if count >= spec.after:
                # Let the queue's feeder thread drain the entries this
                # worker already streamed — the point of the fault is a
                # crash *after* M solves reached the scheduler, so the
                # supervised retry observably resumes from that work.
                import time
                time.sleep(0.2)
                # Then die hard: bypass atexit/finally and leave the
                # result queue exactly as a SIGKILL would.
                os._exit(KILLED_EXIT_CODE)

    def filter_entry(self, engine: str, attempt: int,
                     entry: Any) -> Optional[Any]:
        """Drop or corrupt one streamed cache entry; None means drop."""
        key = (engine, attempt)
        index = self._streamed.get(key, 0)
        self._streamed[key] = index + 1
        for spec in self._matching("drop_entry", engine, attempt):
            if index == spec.after:
                return None
        for spec in self._matching("corrupt_entry", engine, attempt):
            if index == spec.after:
                return CORRUPT_ENTRY_PAYLOAD
        return entry

    def verdict_delay(self, engine: str, attempt: int) -> float:
        """Seconds to sleep before shipping the final verdict."""
        return sum(spec.delay
                   for spec in self._matching("delay_verdict", engine, attempt))

    def solve_delay(self) -> float:
        """Seconds to sleep before dispatching a model-checking call."""
        return sum(spec.delay for spec in self._matching("delay_solve"))

    # -- journal-side hooks ------------------------------------------------

    def on_checkpoint_written(self, index: int, path: str) -> None:
        """Called by the journal right after entry ``index`` was renamed
        into place; damages the file or kills the process per plan."""
        for spec in self._matching("truncate_checkpoint"):
            if spec.after == index:
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    handle.truncate(max(1, size // 2))
        for spec in self._matching("corrupt_checkpoint"):
            if spec.after == index:
                rng = random.Random((self.seed << 16) ^ index)
                with open(path, "r+b") as handle:
                    data = bytearray(handle.read())
                    for _ in range(3):  # flip a few payload bytes
                        pos = rng.randrange(len(data) // 2, len(data))
                        data[pos] ^= 0xFF
                    handle.seek(0)
                    handle.write(bytes(data))
        for spec in self._matching("kill_after_checkpoint"):
            if spec.after == index:
                os.kill(os.getpid(), signal.SIGKILL)

    # -- store-side hooks --------------------------------------------------

    def on_store_open(self, directory: str) -> None:
        """Called by the solve store right before its lock acquisition;
        plants a stale lock file owned by a dead pid per plan."""
        for spec in self._matching("stale_lock"):
            from repro.store.lock import plant_stale_lock

            plant_stale_lock(directory, pid=spec.pid)

    def check_store_write(self, index: int) -> None:
        """Called by the store before segment write ``index`` (counted
        per open); raises an injected ``ENOSPC`` per plan."""
        import errno

        for spec in self._matching("enospc"):
            if spec.after == index:
                raise OSError(errno.ENOSPC, "injected ENOSPC (fault plan)")

    def on_segment_written(self, index: int, path: str) -> None:
        """Called right after segment write ``index`` was renamed into
        place; tears its tail per plan (the reader must keep the intact
        record prefix)."""
        for spec in self._matching("torn_segment"):
            if spec.after == index:
                size = os.path.getsize(path)
                with open(path, "r+b") as handle:
                    # Keep the magic intact: the point is a torn *tail*
                    # (keep-the-prefix recovery), not an unreadable file.
                    handle.truncate(max(24, size // 2))

    def on_manifest_written(self, index: int, path: str) -> None:
        """Called right after manifest write ``index`` (counted per
        open) landed; flips payload bytes per plan so the reader must
        rebuild the manifest from the segments on disk."""
        for spec in self._matching("corrupt_manifest"):
            if spec.after == index:
                rng = random.Random((self.seed << 16) ^ 0x5AFE ^ index)
                with open(path, "r+b") as handle:
                    data = bytearray(handle.read())
                    for _ in range(3):
                        pos = rng.randrange(len(data))
                        data[pos] ^= 0xFF
                    handle.seek(0)
                    handle.write(bytes(data))

"""Self-composition baseline (Contract Shadow Logic [44] style).

Two copies of the whole design (DUV + ISA shadow machine) run side by
side: the program and the public memory region are constrained equal at
reset, the secret region is free in each copy, the per-cycle assumption
is "the ISA machines' architectural observations agree", and the
assertion is "the microarchitectural observations agree".  This is the
``self-composition`` column of Table 2 — no taint logic at all, but
twice the design under the model checker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.hdl.circuit import Circuit
from repro.formal.product import ProductCircuit, self_composition
from repro.formal.properties import SafetyProperty
from repro.cores.common import CoreDesign


@dataclass
class SelfCompTask:
    """A ready-to-check self-composition verification problem."""

    name: str
    circuit: Circuit
    prop: SafetyProperty
    product: ProductCircuit


def make_selfcomp_property(core: CoreDesign, name: str = "") -> SelfCompTask:
    """Build the two-copy product and its non-interference property."""
    if not core.isa_dmem_words:
        raise ValueError("self-composition baseline needs the ISA shadow machine")
    product = self_composition(core.circuit)
    cfg = core.config

    # Initial-state constraints: equal programs, equal public data, and
    # each copy internally consistent (ISA memory == DUV memory).
    shared_equal = list(core.imem_words)
    secret = set(cfg.secret_addresses)
    shared_equal.extend(
        core.dmem_words[a] for a in range(cfg.dmem_depth) if a not in secret
    )
    init_signals = [product.equal_registers_initially(shared_equal, label="pub")]
    for init_out in core.init_assumption_outputs:
        init_signals.append(product.c1(init_out))
        init_signals.append(product.c2(init_out))

    # Per-cycle contract constraint: architectural observations agree.
    assumption = product.equal("isa_obs")

    bad = product.any_differs(list(core.sinks), label="uarch")
    product.circuit.validate()

    symbolic = set()
    for reg_name in core.symbolic_registers():
        symbolic.add(product.c1(reg_name))
        symbolic.add(product.c2(reg_name))

    prop = SafetyProperty(
        name=name or f"{core.name}-selfcomp",
        bad=bad,
        assumptions=(assumption,),
        init_assumptions=tuple(init_signals),
        symbolic_registers=frozenset(symbolic),
    )
    return SelfCompTask(prop.name, product.circuit, prop, product)

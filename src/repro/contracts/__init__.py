"""Security properties: software-hardware contracts (paper Appendix B).

- :func:`~repro.contracts.contract.make_contract_task` — the sandboxing
  contract with taint: assume the ISA shadow machine's observation taint
  is 0 at every commit, assert the DUV's microarchitectural observation
  taint is 0.
- :func:`~repro.contracts.contract.make_prospect_task` — the ProSpeCT
  property: same shape, with the secret memory region *hardwired*
  tainted (the statically-partitioned ProSpeCT memory model).
- :func:`~repro.contracts.selfcomp.make_selfcomp_property` — the
  self-composition baseline (Contract Shadow Logic style) used for the
  Table 2 comparison.
"""

from repro.contracts.contract import make_contract_task, make_prospect_task
from repro.contracts.selfcomp import SelfCompTask, make_selfcomp_property

__all__ = [
    "make_contract_task",
    "make_prospect_task",
    "SelfCompTask",
    "make_selfcomp_property",
]

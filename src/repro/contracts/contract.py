"""The contract property with taint (paper Appendix B).

The original contract: for all programs P, public memories M_pub and
secret pairs (M_sec, M'_sec), if the ISA (1-cycle) machine's
architectural observations agree, then the processor's cycle-by-cycle
microarchitectural observations agree.

Rephrased with taint (what we check): initialize the secret region's
taint to 1 and the rest to 0 (in both the DUV and the shadow ISA
machine); *assume* the ISA observation taint trace is all zeros;
*assert* the microarchitectural observation taint trace is all zeros.
The ISA machine carries the most precise (CellIFT) taint logic to keep
the assumption as weak as the paper recommends; the DUV's taint scheme
is whatever Compass is currently refining.

Universally quantified state: instruction memory (the program P),
both data memories (constrained equal at reset — M_pub and M_sec are
shared between machines).
"""

from __future__ import annotations

from typing import Optional

from repro.taint.instrument import TaintSources
from repro.cegar.loop import TaintVerificationTask
from repro.cores.common import CoreDesign


def make_contract_task(
    core: CoreDesign, name: Optional[str] = None
) -> TaintVerificationTask:
    """Sandboxing-contract verification task for a built core.

    The core must have been built ``with_shadow=True``.
    """
    if not core.isa_dmem_words:
        raise ValueError(
            f"core {core.name!r} was built without the ISA shadow machine; "
            "rebuild with with_shadow=True to verify the contract"
        )

    def sampler(rng, depth):
        """Random program + mirrored memories (init assumptions hold)."""
        init = {}
        for word in core.imem_words:
            init[word] = rng.getrandbits(16)
        mask = (1 << core.config.xlen) - 1
        for address in range(core.config.dmem_depth):
            value = rng.getrandbits(core.config.xlen) & mask
            init[core.dmem_words[address]] = value
            init[core.isa_dmem_words[address]] = value
        return init, [{} for _ in range(depth)]

    return TaintVerificationTask(
        name=name or f"{core.name}-contract",
        circuit=core.circuit,
        sources=TaintSources(registers=core.secret_register_masks()),
        sinks=core.sinks,
        gated_clean_assumptions=core.isa_obs_pairs,
        init_assumption_outputs=core.init_assumption_outputs,
        symbolic_registers=core.symbolic_registers(),
        blackbox_modules=core.blackbox_modules,
        precise_modules=core.precise_modules,
        stimulus_sampler=sampler,
    )


def make_prospect_task(
    core: CoreDesign, name: Optional[str] = None
) -> TaintVerificationTask:
    """The ProSpeCT property (Appendix B): hardwired secret-region taint.

    Structurally this is the contract task — memory is statically
    partitioned, the secret region starts tainted, the constant-time
    assumption is expressed as "the ISA observation taint is 0" — so
    the same task construction applies; the defense-specific part lives
    in the ProSpeCT core itself (its secret bits and issue gating).
    """
    return make_contract_task(core, name=name or f"{core.name}-prospect-property")

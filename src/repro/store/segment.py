"""Append-only checksummed segment files for the solve store.

A segment is one atomically-written file holding a batch of records::

    COMPASS-SEG v1\\n
    <8-byte big-endian payload length> <32-byte sha256(payload)> <payload>
    ...repeated...

Records are length-prefixed and individually checksummed, so a torn
tail — truncation after the atomic rename (power loss before the data
blocks hit the platter, an injected :func:`repro.faults.torn_segment`)
or bit rot inside the file — is *detected* at the first damaged record
and the intact prefix is still usable.  Once a record fails, framing is
lost and the remainder of the file is untrusted: newest-intact-prefix
wins, exactly like the checkpoint journal's newest-intact-entry rule.
"""

from __future__ import annotations

import hashlib
import os
import struct
from typing import List, Tuple

from repro.ioutil import atomic_write

MAGIC = b"COMPASS-SEG v1\n"
_HEADER = struct.Struct(">Q32s")

#: Refuse absurd record lengths up front: a damaged length prefix must
#: not make the reader allocate (or wait on) gigabytes.
MAX_RECORD = 256 * 1024 * 1024


class SegmentError(Exception):
    """The segment file is not usable at all (bad magic, not a file)."""


def write_segment(path: str, records: List[bytes]) -> None:
    """Write ``records`` as one segment, atomically and durably."""
    with atomic_write(path, "wb", fsync=True) as handle:
        handle.write(MAGIC)
        for payload in records:
            handle.write(_HEADER.pack(len(payload),
                                      hashlib.sha256(payload).digest()))
            handle.write(payload)


def read_segment(path: str) -> Tuple[List[bytes], bool]:
    """Read the intact record prefix of one segment.

    Returns ``(records, torn)`` where ``torn`` reports whether the file
    ended in a damaged or truncated record (the returned prefix is
    still trustworthy).  Raises :class:`SegmentError` when the file is
    not a segment at all — unreadable, or magic missing — so the caller
    can skip it entirely.
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise SegmentError(f"unreadable segment {path!r}: {exc}") from exc
    if not blob.startswith(MAGIC):
        raise SegmentError(f"bad magic in {path!r} (not a store segment)")
    records: List[bytes] = []
    offset = len(MAGIC)
    total = len(blob)
    while offset < total:
        if offset + _HEADER.size > total:
            return records, True  # torn inside a record header
        length, digest = _HEADER.unpack_from(blob, offset)
        offset += _HEADER.size
        if length > MAX_RECORD or offset + length > total:
            return records, True  # torn inside the payload
        payload = blob[offset:offset + length]
        offset += length
        if hashlib.sha256(payload).digest() != digest:
            return records, True  # bit rot; framing no longer trusted
        records.append(payload)
    return records, False


def segment_name(generation: int, sequence: int) -> str:
    return f"seg-{generation:04d}-{sequence:06d}.seg"


def parse_segment_name(name: str) -> Tuple[int, int]:
    """(generation, sequence) of a segment file name; raises ValueError."""
    base, ext = os.path.splitext(name)
    parts = base.split("-")
    if ext != ".seg" or len(parts) != 3 or parts[0] != "seg":
        raise ValueError(f"not a segment name: {name!r}")
    return int(parts[1]), int(parts[2])

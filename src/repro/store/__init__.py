"""Persistent, crash-safe solve store shared across runs and processes.

The content-addressed :class:`~repro.formal.cache.SolveCache` memoizes
verdicts for one process; this package makes those verdicts *durable*:
an on-disk store of ``(solve key, CachedVerdict)`` entries that every
run — CLI verifies, the job daemon (:mod:`repro.serve`), benchmark
reruns — opens, extends and shares, so the system never re-proves work
it has already paid for.

Layout and guarantees (see ``docs/serving.md`` for the format):

- entries live in append-only, per-record checksummed **segment
  files**, each written atomically via
  :func:`repro.ioutil.atomic_write`; a torn tail (power loss, injected
  fault) is detected per record and the intact prefix is kept;
- a JSON **manifest** names the live generation and its segments;
  a corrupted manifest is rebuilt from the segments on disk;
- **compaction** folds all live entries into a single segment under a
  bumped generation number; a crash at any point leaves either the old
  or the new generation fully readable;
- a single **writer lock** (advisory lock file) guards mutation, with
  dead-pid detection so the store survives a crashed owner; readers
  need no lock;
- every loaded entry is revalidated through
  :func:`repro.formal.cache.valid_entry`, so a corrupted or hostile
  store can never poison a verdict — bad entries are counted and
  dropped.
"""

from repro.store.lock import StoreLock, StoreLockedError, plant_stale_lock
from repro.store.segment import SegmentError, read_segment, write_segment
from repro.store.store import (
    StoreBackedCache,
    StoreError,
    StoreStats,
    SolveStore,
)

__all__ = [
    "SegmentError",
    "SolveStore",
    "StoreBackedCache",
    "StoreError",
    "StoreLock",
    "StoreLockedError",
    "StoreStats",
    "plant_stale_lock",
    "read_segment",
    "write_segment",
]

"""Advisory writer lock for the persistent solve store.

One writer at a time mutates a store directory; readers need no lock
(segments are immutable once renamed into place and the manifest is
replaced atomically).  The lock is a JSON file created with
``O_CREAT | O_EXCL`` — portable, inspectable, and recoverable: a lock
whose owner pid is dead (crashed writer, SIGKILLed daemon) is *stale*
and taken over instead of wedging the store forever.  Takeover itself
is serialized through an ``flock``-ed guard sidecar so two racers can
never both replace the stale lock and believe they hold it.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from typing import Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

LOCK_NAME = "store.lock"

#: Persistent sidecar serializing stale-lock takeover; never unlinked
#: (its ``flock`` is dropped automatically when the holder exits).
GUARD_SUFFIX = ".guard"


class StoreLockedError(Exception):
    """The store is locked by a live writer process."""


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0, never delivers)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other user's live pid
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return True
    return True


def _dead_pid() -> int:
    """A pid that is certainly dead: a reaped short-lived child."""
    proc = subprocess.Popen([sys.executable, "-c", ""],
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    proc.wait()
    return proc.pid


def plant_stale_lock(directory: str, pid: Optional[int] = None) -> str:
    """Write a lock file owned by a dead pid (fault injection helper).

    Used by :meth:`repro.faults.FaultPlan.on_store_open` to prove the
    dead-owner takeover path; ``pid=None`` spawns and reaps a child so
    the planted owner is guaranteed dead.
    """
    if pid is None:
        pid = _dead_pid()
    path = os.path.join(directory, LOCK_NAME)
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"pid": pid, "host": socket.gethostname(),
                   "created": time.time()}, handle)
    return path


class StoreLock:
    """``O_CREAT|O_EXCL`` lock file with dead-pid takeover.

    ``acquire`` raises :class:`StoreLockedError` when a *live* process
    holds the lock; a lock owned by a dead pid — or an unreadable lock
    file, which only a crashed writer leaves behind — is removed and
    re-taken (``takeovers`` counts how often that happened, for the
    store's observability counters).
    """

    def __init__(self, directory: str) -> None:
        self.path = os.path.join(directory, LOCK_NAME)
        self.held = False
        self.takeovers = 0

    def _read_owner(self) -> Optional[int]:
        """The owning pid, or None when the lock file is unreadable."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            pid = info["pid"]
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return pid if isinstance(pid, int) else None

    def acquire(self) -> None:
        if self.held:
            return
        payload = json.dumps({
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "created": time.time(),
        }).encode("utf-8")
        # Bounded retries: each loop either wins the O_EXCL create,
        # completes a (guard-serialized) takeover, or observes a live
        # owner and raises.
        for _ in range(16):
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                owner = self._read_owner()
                if owner is not None and _pid_alive(owner):
                    raise StoreLockedError(
                        f"store is locked by live pid {owner} ({self.path})")
                # Dead owner or unreadable lock: stale, take it over.
                if self._take_over_stale(payload):
                    return
                continue
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            self.held = True
            return
        raise StoreLockedError(  # pragma: no cover - pathological racing
            f"could not acquire {self.path} (takeover livelock)")

    def _take_over_stale(self, payload: bytes) -> bool:
        """Replace a stale lock with our own; True when we now hold it.

        The read-unlink-recreate sequence must be atomic with respect
        to other takeover attempts: without that, two racers can both
        observe the dead owner, racer A unlinks and recreates the
        lock, then racer B unlinks A's *fresh* lock — two live
        writers.  The sequence is therefore serialized through an
        ``flock``-ed guard file that is never unlinked.  Plain
        ``O_EXCL`` acquirers never unlink anything, so they cannot
        reintroduce the race: a create that slips between our unlink
        and our create simply wins, our create fails, and the next
        loop round observes that live owner and raises.
        """
        guard = os.open(self.path + GUARD_SUFFIX,
                        os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                # Blocking is fine: the critical section below is a
                # few syscalls, and a holder that dies mid-section
                # drops the flock with its fd.
                fcntl.flock(guard, fcntl.LOCK_EX)
            owner = self._read_owner()
            if (os.path.exists(self.path)
                    and owner is not None and _pid_alive(owner)):
                return False  # re-locked while we waited for the guard
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass  # the racing takeover's winner already released
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            except FileExistsError:
                return False  # an O_EXCL acquirer slipped in; it wins
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            self.takeovers += 1
            self.held = True
            return True
        finally:
            os.close(guard)  # drops the flock

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            os.unlink(self.path)
        except OSError:  # pragma: no cover - directory removed under us
            pass

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()

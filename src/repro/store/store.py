"""The persistent solve store and its cache adapter.

:class:`SolveStore` owns a directory of checksummed segment files plus
a JSON manifest and exposes a dict-like view of the validated entries;
:class:`StoreBackedCache` adapts it to the
:class:`~repro.formal.cache.SolveCache` interface the engines already
consume, so plugging persistence into the portfolio, the CEGAR loop or
the job daemon is a one-line cache swap.

Recovery invariants (each has a deterministic fault in
:mod:`repro.faults` and a test exercising it):

- a torn segment tail keeps its intact record prefix;
- a segment that is not a segment at all is skipped;
- a corrupted manifest is rebuilt from the segments on disk;
- a lock owned by a dead pid is taken over;
- a failed segment write (``ENOSPC``) keeps the entries pending in
  memory and retries on the next flush — a full disk degrades
  durability, never correctness;
- records are stored as schema-checked JSON, never pickled: the bytes
  come back from a directory another process (or an attacker) may have
  touched, and unpickling untrusted data executes code, while JSON
  decodes to plain data or not at all.  Every decoded entry is then
  revalidated (:func:`repro.formal.cache.valid_entry`); malformed or
  hostile records are counted and dropped.

:class:`SolveStore` is additionally thread-safe: the job daemon's
worker threads write through a shared :class:`StoreBackedCache` while
the event loop flushes after each completed job, so every method that
touches the pending buffer, the entry map or the segment list holds an
internal mutex.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.formal.cache import (
    CachedVerdict,
    ThreadSafeSolveCache,
    valid_entry,
)
from repro.formal.counterexample import Counterexample
from repro.ioutil import atomic_write, sweep_orphans
from repro.store.lock import StoreLock, StoreLockedError
from repro.store.segment import (
    SegmentError,
    parse_segment_name,
    read_segment,
    segment_name,
    write_segment,
)

MANIFEST_NAME = "manifest.json"

#: Bump when the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


class StoreError(Exception):
    """The store directory cannot be used (format, permissions, ...)."""


@dataclass
class StoreStats:
    """Observability counters for one open store."""

    loaded: int = 0              # validated entries read at open
    rejected: int = 0            # malformed/hostile entries dropped
    torn_segments: int = 0       # segments recovered from a torn tail
    skipped_segments: int = 0    # unreadable segments skipped entirely
    stale_removed: int = 0       # other-generation leftovers deleted
    manifest_recovered: int = 0  # manifest rebuilt from the disk scan
    lock_takeovers: int = 0      # dead-owner locks taken over
    orphans_swept: int = 0       # stale .tmp.* files removed at open
    appended: int = 0            # entries appended this session
    flushed_segments: int = 0    # segment files written this session
    write_errors: int = 0        # failed segment/manifest writes (ENOSPC)
    compactions: int = 0
    hits: int = 0                # cache hits served by persisted entries

    def row(self) -> str:
        recovered = ""
        if (self.torn_segments or self.skipped_segments
                or self.manifest_recovered or self.lock_takeovers
                or self.rejected):
            recovered = (f" [recovered: {self.torn_segments} torn, "
                         f"{self.skipped_segments} skipped, "
                         f"{self.manifest_recovered} manifest rebuilds, "
                         f"{self.lock_takeovers} lock takeovers, "
                         f"{self.rejected} rejected]")
        errors = f", {self.write_errors} write errors" if self.write_errors else ""
        return (f"store: {self.loaded} loaded, {self.hits} hits, "
                f"{self.appended} appended in {self.flushed_segments} "
                f"segments{errors}{recovered}")


def _encode_entry(key: str, verdict: CachedVerdict) -> Optional[bytes]:
    """One record as canonical JSON bytes; None when unencodable.

    Deliberately not pickle: segment payloads are read back from a
    directory whose bytes this process does not control, and
    unpickling untrusted input executes arbitrary code.
    """
    doc: Dict[str, Any] = {
        "key": key,
        "status": verdict.status,
        "bound": verdict.bound,
        "detail": verdict.detail,
    }
    cex = verdict.counterexample
    if cex is not None:
        doc["cex"] = {
            "length": cex.length,
            "inputs": cex.inputs,
            "initial_state": cex.initial_state,
            "bad_signal": cex.bad_signal,
        }
    try:
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return line.encode("utf-8")


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_signal_map(doc: Any) -> bool:
    return (isinstance(doc, dict)
            and all(isinstance(k, str) and _is_int(v)
                    for k, v in doc.items()))


def _decode_cex(doc: Any) -> Optional[Counterexample]:
    if not isinstance(doc, dict):
        return None
    length = doc.get("length")
    inputs = doc.get("inputs")
    initial = doc.get("initial_state")
    bad = doc.get("bad_signal", "")
    if (not _is_int(length) or not isinstance(inputs, list)
            or not all(_is_signal_map(frame) for frame in inputs)
            or not _is_signal_map(initial) or not isinstance(bad, str)):
        return None
    try:
        return Counterexample(length, inputs, initial, bad)
    except ValueError:  # frame count does not match the stated length
        return None


def _decode_entry(payload: bytes) -> Optional[Tuple[str, CachedVerdict]]:
    """(key, verdict) or None when the record is malformed or hostile."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    cex = None
    if doc.get("cex") is not None:
        cex = _decode_cex(doc["cex"])
        if cex is None:
            return None
    key = doc.get("key")
    verdict = CachedVerdict(status=doc.get("status"), bound=doc.get("bound"),
                            counterexample=cex, detail=doc.get("detail"))
    if not valid_entry(key, verdict):
        return None
    return key, verdict


class SolveStore:
    """A persistent, deduplicating verdict store in one directory.

    Args:
        directory: the store directory; created if missing.
        writable: acquire the writer lock and allow append/compact.
            Read-only opens never mutate the directory and need no
            lock.
        faults: optional :class:`repro.faults.FaultPlan`, consulted at
            the open/write injection points (recovery-path tests).
        flush_every: auto-flush the pending buffer after this many
            appended entries (``close``/``flush`` always drain it).
        compact_threshold: fold the store into a single fresh-
            generation segment on close once it spans more than this
            many segment files.
    """

    def __init__(self, directory: str, writable: bool = True,
                 faults=None, flush_every: int = 32,
                 compact_threshold: int = 16) -> None:
        self.directory = directory
        self.writable = writable
        self.faults = faults
        self.flush_every = flush_every
        self.compact_threshold = compact_threshold
        self.stats = StoreStats()
        self.generation = 0
        # One writer thread is the common case, but the job daemon
        # shares this store between its worker pool (appending through
        # a StoreBackedCache) and the event loop (flushing after each
        # job), so every method touching the maps below takes the
        # mutex.  Reentrant because append() auto-flushes.
        self._mutex = threading.RLock()
        self._entries: Dict[str, CachedVerdict] = {}
        self._pending: Dict[str, CachedVerdict] = {}
        self._segments: List[str] = []
        self._next_seq = 0
        self._write_attempts = 0
        self._manifest_writes = 0
        self._warned_write_error = False
        self._closed = False
        self._lock: Optional[StoreLock] = None

        os.makedirs(directory, exist_ok=True)
        self.stats.orphans_swept = len(sweep_orphans(directory))
        if writable:
            if self.faults is not None:
                # May plant a stale lock right before acquisition.
                self.faults.on_store_open(directory)
            self._lock = StoreLock(directory)
            try:
                self._lock.acquire()
            except StoreLockedError:
                self._lock = None
                raise
            self.stats.lock_takeovers = self._lock.takeovers
        try:
            self._load()
        except BaseException:
            self._release_lock()
            raise

    # -- loading -----------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def _read_manifest(self) -> Optional[Dict[str, Any]]:
        """The manifest document, or None when missing/corrupt.

        A corrupt manifest counts toward ``stats.manifest_recovered``
        (the disk scan rebuilds it); a manifest from a *newer* format
        refuses to open rather than silently rewriting a layout this
        code does not understand.
        """
        try:
            with open(self._manifest_path(), "r", encoding="utf-8") as handle:
                doc = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self.stats.manifest_recovered += 1
            return None
        if not isinstance(doc, dict):
            self.stats.manifest_recovered += 1
            return None
        fmt = doc.get("format")
        if isinstance(fmt, int) and fmt > FORMAT_VERSION:
            raise StoreError(
                f"store format {fmt} is newer than supported "
                f"({FORMAT_VERSION}); refusing to touch it")
        if (not isinstance(doc.get("generation"), int)
                or not isinstance(doc.get("segments"), list)
                or not all(isinstance(n, str) for n in doc["segments"])):
            self.stats.manifest_recovered += 1
            return None
        return doc

    def _load(self) -> None:
        disk: Dict[Tuple[int, int], str] = {}
        for name in os.listdir(self.directory):
            try:
                gen, seq = parse_segment_name(name)
            except ValueError:
                continue
            disk[(gen, seq)] = name
        manifest = self._read_manifest()
        if manifest is not None:
            self.generation = manifest["generation"]
        elif disk:
            self.generation = max(gen for gen, _seq in disk)
        else:
            self.generation = 0
        # Segments of the live generation, ordered by sequence number.
        # The manifest listing is advisory: a crash between a segment
        # landing and the manifest update leaves a current-generation
        # segment unlisted, and its entries are newest — adopt it.
        live = sorted((seq, name) for (gen, seq), name in disk.items()
                      if gen == self.generation)
        self._segments = [name for _seq, name in live]
        self._next_seq = live[-1][0] + 1 if live else 0
        listed = manifest["segments"] if manifest is not None else None
        # Leftovers from an interrupted compaction: either the old
        # generation (manifest already advanced) or an orphaned new one
        # (manifest never advanced).  Both are redundant — delete.
        stale = [name for (gen, _seq), name in disk.items()
                 if gen != self.generation]
        if self.writable:
            for name in stale:
                try:
                    os.unlink(os.path.join(self.directory, name))
                    self.stats.stale_removed += 1
                except OSError:  # pragma: no cover - raced
                    pass
        for name in self._segments:
            path = os.path.join(self.directory, name)
            try:
                records, torn = read_segment(path)
            except SegmentError:
                self.stats.skipped_segments += 1
                continue
            if torn:
                self.stats.torn_segments += 1
            for payload in records:
                entry = _decode_entry(payload)
                if entry is None:
                    self.stats.rejected += 1
                    continue
                key, verdict = entry
                self._entries[key] = verdict  # later segments win
                self.stats.loaded += 1
        if self.writable and (manifest is None or listed != self._segments):
            # Normalize: rebuild a manifest that matches the disk.
            self._write_manifest()

    # -- writing -----------------------------------------------------------

    def _write_manifest(self) -> bool:
        doc = {"format": FORMAT_VERSION, "generation": self.generation,
               "segments": list(self._segments)}
        index = self._manifest_writes
        self._manifest_writes += 1
        path = self._manifest_path()
        try:
            with atomic_write(path, fsync=True) as handle:
                json.dump(doc, handle)
        except OSError:
            self.stats.write_errors += 1
            self._warn_write_error("manifest")
            return False
        if self.faults is not None:
            self.faults.on_manifest_written(index, path)
        return True

    def _warn_write_error(self, what: str) -> None:
        if self._warned_write_error:
            return
        self._warned_write_error = True
        warnings.warn(
            f"solve store {what} write failed in {self.directory!r}; "
            "entries stay pending in memory and will be retried "
            "(verdicts are unaffected)", stacklevel=3)

    def append(self, key: str, verdict: CachedVerdict) -> bool:
        """Buffer one entry for the next flush; False if malformed."""
        with self._mutex:
            if self._closed:
                raise StoreError("store is closed")
            if not self.writable:
                raise StoreError("store opened read-only")
            if not valid_entry(key, verdict):
                self.stats.rejected += 1
                return False
            self._pending[key] = verdict
            self.stats.appended += 1
            if len(self._pending) >= self.flush_every:
                self.flush()
            return True

    def flush(self) -> bool:
        """Write pending entries as one new segment; False on failure.

        Failure (``ENOSPC``, permissions) keeps the entries pending so
        a later flush — or close — can retry; it never raises, because
        durability is best-effort while verdict correctness is not at
        stake.  The mutex is held across the whole write, so a flush
        from one thread can never race appends from another: when it
        returns True, everything appended before the call is durable.
        """
        with self._mutex:
            if not self._pending:
                return True
            if not self.writable:
                raise StoreError("store opened read-only")
            records = []
            for key, verdict in self._pending.items():
                payload = _encode_entry(key, verdict)
                if payload is None:  # unencodable detail; keep in memory
                    self.stats.rejected += 1
                    continue
                records.append(payload)
            index = self._write_attempts
            self._write_attempts += 1
            name = segment_name(self.generation, self._next_seq)
            path = os.path.join(self.directory, name)
            try:
                if self.faults is not None:
                    self.faults.check_store_write(index)
                write_segment(path, records)
            except OSError:
                self.stats.write_errors += 1
                self._warn_write_error("segment")
                return False
            if self.faults is not None:
                # May tear the just-written file (post-rename damage).
                self.faults.on_segment_written(index, path)
            self._next_seq += 1
            self._segments.append(name)
            self._entries.update(self._pending)
            self._pending.clear()
            self.stats.flushed_segments += 1
            self._write_manifest()
            return True

    def compact(self) -> bool:
        """Fold all live entries into one fresh-generation segment.

        Crash-safe at every step: the new generation's segment lands
        first, the manifest flips generations atomically, and only then
        are the old segments deleted — an interruption anywhere leaves
        one fully-readable generation (plus redundant leftovers the
        next open removes).
        """
        with self._mutex:
            if not self.writable:
                raise StoreError("store opened read-only")
            live = dict(self._entries)
            live.update(self._pending)
            new_gen = self.generation + 1
            name = segment_name(new_gen, 0)
            path = os.path.join(self.directory, name)
            records = [payload for key, verdict in live.items()
                       if (payload := _encode_entry(key, verdict)) is not None]
            index = self._write_attempts
            self._write_attempts += 1
            try:
                if self.faults is not None:
                    self.faults.check_store_write(index)
                write_segment(path, records)
            except OSError:
                self.stats.write_errors += 1
                self._warn_write_error("compaction")
                return False
            if self.faults is not None:
                self.faults.on_segment_written(index, path)
            old_segments = list(self._segments)
            self.generation = new_gen
            self._segments = [name]
            self._next_seq = 1
            self._entries = live
            self._pending.clear()
            self._write_manifest()
            for old in old_segments:
                try:
                    os.unlink(os.path.join(self.directory, old))
                except OSError:  # pragma: no cover - raced
                    pass
            self.stats.compactions += 1
            return True

    def close(self) -> None:
        """Flush, optionally compact, and release the writer lock."""
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            if self.writable:
                self._pending and self.flush()
                if len(self._segments) > self.compact_threshold:
                    self.compact()
            self._release_lock()

    def _release_lock(self) -> None:
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    def __enter__(self) -> "SolveStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- reading -----------------------------------------------------------

    def entries(self) -> Dict[str, CachedVerdict]:
        """A copy of the live view (loaded plus pending entries)."""
        with self._mutex:
            view = dict(self._entries)
            view.update(self._pending)
            return view

    def get(self, key: str) -> Optional[CachedVerdict]:
        with self._mutex:
            entry = self._pending.get(key)
            return entry if entry is not None else self._entries.get(key)

    def __contains__(self, key: str) -> bool:
        with self._mutex:
            return key in self._pending or key in self._entries

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries.keys() | self._pending.keys())

    def cache(self, max_entries: int = 4096) -> "StoreBackedCache":
        """A :class:`SolveCache` view writing through to this store."""
        return StoreBackedCache(self, max_entries=max_entries)


class StoreBackedCache(ThreadSafeSolveCache):
    """A thread-safe :class:`SolveCache` persisted by a :class:`SolveStore`.

    Entries present in the store are preloaded (without inflating the
    ``stores`` counter); every new ``put`` — including entries streamed
    back from portfolio workers via ``merge_entries`` — is written
    through to the store's pending buffer.  Hits answered by an entry
    that came from disk additionally count in ``store.stats.hits``,
    which is what the serve-smoke "served from the persistent store"
    assertion reads.

    Thread safety comes from :class:`ThreadSafeSolveCache` (the job
    daemon shares one cache across its worker pool); the store has its
    own internal mutex, so flushing the store from a thread that does
    not hold this cache's mutex — the daemon's event loop — is safe.
    """

    def __init__(self, store: SolveStore, max_entries: int = 4096) -> None:
        super().__init__(max_entries)
        self.store = store
        self.preload_entries(store.entries())
        self._persistent = set(self._entries)

    def get(self, key: str) -> Optional[CachedVerdict]:
        with self._mutex:
            entry = super().get(key)
            if entry is not None and key in self._persistent:
                self.store.stats.hits += 1
            return entry

    def put(self, key: str, verdict: CachedVerdict) -> None:
        with self._mutex:
            super().put(key, verdict)
            if self.store.writable and key not in self.store:
                self.store.append(key, verdict)

    def flush(self) -> bool:
        """Drain the backing store's pending buffer to disk."""
        return self.store.flush()

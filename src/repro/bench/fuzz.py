"""Differential taint fuzzing: empirical soundness checking.

Taint schemes must never produce false negatives (Section 2.2).  This
harness checks that empirically on any design: run the original circuit
with two secret valuations, run the instrumented circuit, and flag any
signal whose value differs across the secret pair while its taint bit is
0.  Used by the test suite on random circuits and available to users as
a sanity check for custom taint handlers (whose soundness is a manual
obligation).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.hdl.circuit import Circuit
from repro.sim import Simulator
from repro.taint.instrument import InstrumentedDesign


def random_machine(
    seed: int,
    width: int = 3,
    max_regs: int = 3,
    max_ops: int = 6,
    bad_signal: str = "bad",
) -> Circuit:
    """Generate a small random sequential machine with a ``bad`` output.

    The machine has one free input, 1..``max_regs`` registers with
    random resets, a random dataflow core of 2..``max_ops`` word
    operations (add/sub/and/or/xor/mux), random register feedback, and a
    1-bit ``bad_signal`` output that fires when a randomly chosen value
    hits a random constant.  Deterministic in ``seed``.

    This is the shared workload for differential testing of the formal
    engines: BMC, k-induction, PDR and the portfolio must agree on these
    circuits, and every counterexample must replay in the reference
    simulator.
    """
    from repro.hdl import ModuleBuilder

    rng = random.Random(seed)
    b = ModuleBuilder(f"fuzz{seed}")
    inp = b.input("x", width)
    regs = []
    for i in range(rng.randint(1, max_regs)):
        regs.append(b.reg(f"r{i}", width, reset=rng.randrange(1 << width)))
    values = [inp] + regs
    for _ in range(rng.randint(2, max_ops)):
        op = rng.choice("add sub and or xor mux".split())
        a, c = rng.choice(values), rng.choice(values)
        if op == "add":
            v = a + c
        elif op == "sub":
            v = a - c
        elif op == "and":
            v = a & c
        elif op == "or":
            v = a | c
        elif op == "xor":
            v = a ^ c
        else:
            v = b.mux(a.redor(), a, c)
        values.append(v)
    for reg in regs:
        reg.drive(rng.choice(values))
    target = rng.randrange(1 << width)
    b.output(bad_signal, rng.choice(values[1:]).eq(target))
    return b.build()


@dataclass
class SoundnessViolation:
    """A false negative: value depends on the secret but taint is 0."""

    signal: str
    cycle: int
    value_a: int
    value_b: int

    def __str__(self) -> str:
        return (
            f"{self.signal}@{self.cycle}: {self.value_a} vs {self.value_b} "
            "with taint 0"
        )


@dataclass
class FuzzReport:
    trials: int
    cycles_checked: int
    violations: List[SoundnessViolation] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.violations


def check_soundness_once(
    design: InstrumentedDesign,
    secrets_a: Mapping[str, int],
    secrets_b: Mapping[str, int],
    stimulus: Sequence[Mapping[str, int]],
    base_state: Optional[Mapping[str, int]] = None,
) -> List[SoundnessViolation]:
    """Compare one secret pair under one stimulus; returns violations."""
    circuit = design.uninstrumented
    init_a = dict(base_state or {})
    init_b = dict(base_state or {})
    init_a.update(secrets_a)
    init_b.update(secrets_b)
    wf_a = Simulator(circuit, initial_state=init_a).run(stimulus)
    wf_b = Simulator(circuit, initial_state=init_b).run(stimulus)
    wf_t = Simulator(design.circuit, initial_state=init_a).run(stimulus)
    violations: List[SoundnessViolation] = []
    for name in circuit.signals:
        taint_name = design.taint_name.get(name)
        if taint_name is None or not wf_t.has_signal(taint_name):
            continue
        for cycle in range(len(stimulus)):
            va, vb = wf_a.value(name, cycle), wf_b.value(name, cycle)
            if va != vb and wf_t.value(taint_name, cycle) == 0:
                violations.append(SoundnessViolation(name, cycle, va, vb))
    return violations


def check_soundness_batch(
    design: InstrumentedDesign,
    trials: Sequence[Tuple[Mapping[str, int], Mapping[str, int], Sequence[Mapping[str, int]]]],
    base_state: Optional[Mapping[str, int]] = None,
) -> List[SoundnessViolation]:
    """Check many ``(secrets_a, secrets_b, stimulus)`` trials in one pass.

    Bit-parallel: all secret-A and secret-B runs of the original circuit
    share one :class:`~repro.sim.batch.BatchSimulator` pass (2·N lanes),
    and all instrumented replays share another (N lanes).  Stimuli must
    be equal-length across trials (as :func:`fuzz_soundness` generates
    them).  Returns the violations of the *first* failing trial, in the
    same (signal, cycle) order :func:`check_soundness_once` reports —
    the scalar loop stops at the first failing trial too.
    """
    from repro.sim.batch import BatchSimulator

    if not trials:
        return []
    circuit = design.uninstrumented
    count = len(trials)

    def merged(secrets: Mapping[str, int]) -> Dict[str, int]:
        init = dict(base_state or {})
        init.update(secrets)
        return init

    plain_inits = [merged(a) for a, _, _ in trials] + [merged(b) for _, b, _ in trials]
    stimuli = [list(stim) for _, _, stim in trials]
    wf = BatchSimulator(circuit, lanes=2 * count,
                        initial_states=plain_inits).run(stimuli * 2)
    taint_names = [t for t in design.taint_name.values()
                   if t in design.circuit.signals]
    wf_t = BatchSimulator(design.circuit, lanes=count,
                          initial_states=[merged(a) for a, _, _ in trials]
                          ).run(stimuli, record=taint_names)
    for trial in range(count):
        violations: List[SoundnessViolation] = []
        for name in circuit.signals:
            taint_name = design.taint_name.get(name)
            if taint_name is None or not wf_t.has_signal(taint_name):
                continue
            for cycle in range(len(stimuli[trial])):
                va = wf.value(name, cycle, trial)
                vb = wf.value(name, cycle, count + trial)
                if va != vb and wf_t.value(taint_name, cycle, trial) == 0:
                    violations.append(SoundnessViolation(name, cycle, va, vb))
        if violations:
            return violations  # one failing trial is enough
    return []


def fuzz_soundness(
    design: InstrumentedDesign,
    trials: int = 25,
    cycles: int = 6,
    seed: int = 0,
    base_state: Optional[Mapping[str, int]] = None,
    batch: bool = True,
) -> FuzzReport:
    """Random differential soundness fuzzing of an instrumented design.

    Secrets are the design's taint sources (``design.sources``); inputs
    and secret values are sampled uniformly per trial.  With ``batch``
    (the default) every trial runs as one lane of a bit-parallel
    :class:`~repro.sim.batch.BatchSimulator` pass — same RNG draws,
    same report, ~trials-times fewer simulator passes; ``batch=False``
    keeps the scalar reference loop for differential testing.
    """
    rng = random.Random(seed)
    circuit = design.uninstrumented
    report = FuzzReport(trials=trials, cycles_checked=trials * cycles)
    reg_widths = {reg.q.name: reg.q.width for reg in circuit.registers}
    secret_names = [n for n in design.sources.registers if n in reg_widths]
    input_sigs = list(circuit.inputs)
    if batch:
        drawn = []
        for _ in range(trials):
            secrets_a = {n: rng.getrandbits(reg_widths[n]) for n in secret_names}
            secrets_b = {n: rng.getrandbits(reg_widths[n]) for n in secret_names}
            stimulus = [
                {sig.name: rng.getrandbits(sig.width) for sig in input_sigs}
                for _ in range(cycles)
            ]
            drawn.append((secrets_a, secrets_b, stimulus))
        report.violations.extend(check_soundness_batch(design, drawn, base_state))
        return report
    for _ in range(trials):
        secrets_a = {n: rng.getrandbits(reg_widths[n]) for n in secret_names}
        secrets_b = {n: rng.getrandbits(reg_widths[n]) for n in secret_names}
        stimulus = [
            {sig.name: rng.getrandbits(sig.width) for sig in input_sigs}
            for _ in range(cycles)
        ]
        report.violations.extend(
            check_soundness_once(design, secrets_a, secrets_b, stimulus, base_state)
        )
        if report.violations:
            break  # one counterexample is enough to fail a check
    return report

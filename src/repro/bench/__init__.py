"""Benchmark harness: workloads, gadgets, and table/figure renderers."""

from repro.bench.workloads import WORKLOADS, Workload, workload_names
from repro.bench.gadgets import SPECTRE_GADGET, MUL_TIMING_GADGET, NESTED_BRANCH_GADGET
from repro.bench.fuzz import FuzzReport, fuzz_soundness, random_machine

__all__ = [
    "FuzzReport",
    "fuzz_soundness",
    "random_machine",
    "WORKLOADS",
    "Workload",
    "workload_names",
    "SPECTRE_GADGET",
    "MUL_TIMING_GADGET",
    "NESTED_BRANCH_GADGET",
]

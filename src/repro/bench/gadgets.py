"""Attack gadget programs used by tests, examples and benchmarks.

All gadgets assume the formal memory layout: a small word-addressed
data memory whose top ``secret_words`` addresses hold the secret
(address 6 is secret in the default 8-word / 2-secret configuration).
Each is *architecturally* silent — the branch is always taken, so no
secret is ever architecturally read — which is exactly what makes the
transient leak a contract violation.
"""

from repro.cores.isa import assemble

#: Spectre-style gadget: a transient load reads the secret, a dependent
#: transient load turns its value into a data-memory *address* (visible
#: on the dmem-address observation).  Leaks on BOOM; blocked on BOOM-S
#: (loads wait for branch resolution) and on correct ProSpeCT (the
#: secret-valued address operand is gated); leaks again under ProSpeCT
#: bug 1 (the gate consults the wrong register's secret bit).
SPECTRE_GADGET = assemble("""
    beq r0, r0, skip     # architecturally always taken
    lw  r1, 6(r0)        # transient: secret value into r1
    lw  r2, 0(r1)        # transient: secret-dependent address
skip:
    halt
""")

#: Multiplier timing gadget: a transient MUL with a secret multiplier
#: operand; the early-exit multiplier's latency depends on the value,
#: shifting the PC/commit timing (a pure timing channel).
MUL_TIMING_GADGET = assemble("""
    beq r0, r0, skip
    lw  r1, 6(r0)        # transient: secret into r1
    mul r2, r0, r1       # rs2 secret -> data-dependent latency
skip:
    halt
""")

#: Nested-branch gadget for ProSpeCT bug 2: the outer branch (never
#: taken, correctly predicted) resolves first and — in the buggy
#: design — clears the transient flag of the blocked secret-address
#: load even though the inner (mispredicted) branch is still in flight.
NESTED_BRANCH_GADGET = assemble("""
    bne r1, r1, 1        # outer: never taken, resolves without squash
    beq r0, r0, skip     # inner: taken -> mispredicted
    lw  r1, 6(r0)        # transient: secret value
    lw  r2, 0(r1)        # transient: secret address (gated unless bug 2)
skip:
    halt
""")

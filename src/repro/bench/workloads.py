"""The five RISC-V benchmark kernels of Figure 6, in RV-lite assembly.

The paper simulates median, rsort, qsort, matrix_mul and rsa from the
riscv-tests / AM suites.  We implement the same algorithms at reduced
data sizes (the paper likewise reduces input sizes to fit its 2 KB
caches):

- ``median``   — 3-point median filter over an 8-element array;
- ``rsort``    — exchange sort (the radix variant degenerates at this
  scale; the memory-traffic pattern is what matters for Figure 6);
- ``qsort``    — insertion sort (recursion-free stand-in with the same
  compare/shift memory behaviour at 8 elements);
- ``matrix_mul`` — 2x2 integer matrix multiply using MUL;
- ``rsa``      — modular exponentiation by repeated multiply/reduce.

Every workload is self-checking: the expected memory image comes from
the architectural interpreter, so a workload run doubles as an
end-to-end functional test of whichever core executes it.

Data layout: inputs live in low data memory, outputs at the documented
addresses, and the top ``secret_words`` addresses are never touched —
they hold the (tainted) secret, mirroring the paper's setup where the
first input elements are tainted and the rest of memory is public.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.cores.common import CoreConfig
from repro.cores.isa import IsaInterpreter, assemble


@dataclass(frozen=True)
class Workload:
    """A runnable benchmark kernel."""

    name: str
    description: str
    source: str
    min_xlen: int = 8
    data_depth: int = 16   # data addresses used (must avoid the secret region)

    @functools.cached_property
    def program(self) -> List[int]:
        return assemble(self.source)

    def make_data(self, rng: random.Random, cfg: CoreConfig) -> Dict[int, int]:
        limit = min(256, 1 << cfg.xlen)
        if self.name == "matrix_mul":
            return {i: rng.randrange(1, 16) for i in range(8)}
        if self.name == "rsa":
            return {0: rng.randrange(2, 20), 1: rng.randrange(1, 6),
                    2: rng.randrange(10, 30)}
        return {i: rng.randrange(limit) for i in range(8)}

    def expected_memory(self, data: Dict[int, int], cfg: CoreConfig) -> List[int]:
        """Golden final data memory, from the architectural interpreter."""
        interp = IsaInterpreter(
            self.program, xlen=cfg.xlen,
            imem_depth=max(cfg.imem_depth, len(self.program)),
            dmem_depth=cfg.dmem_depth, dmem=data,
        )
        steps = interp.run(max_steps=20000)
        if not interp.halted:
            raise RuntimeError(f"workload {self.name} did not halt in 20000 steps")
        return list(interp.dmem)

    def reference_instructions(self, data: Dict[int, int], cfg: CoreConfig) -> int:
        interp = IsaInterpreter(
            self.program, xlen=cfg.xlen,
            imem_depth=max(cfg.imem_depth, len(self.program)),
            dmem_depth=cfg.dmem_depth, dmem=data,
        )
        return interp.run(max_steps=20000)


_MEDIAN = """
    li  r1, 1
loop:
    addi r7, r1, -1
    lw  r2, 0(r7)        ; a[i-1]
    lw  r3, 1(r7)        ; a[i]
    lw  r4, 2(r7)        ; a[i+1]
    slt r5, r3, r2
    beq r5, r0, s1
    add r6, r2, r0
    add r2, r3, r0
    add r3, r6, r0
s1:
    slt r5, r4, r3
    beq r5, r0, s2
    add r6, r3, r0
    add r3, r4, r0
    add r4, r6, r0
s2:
    slt r5, r3, r2
    beq r5, r0, s3
    add r3, r2, r0
s3:
    addi r7, r1, 8       ; out[i] at 8+i
    sw  r3, 0(r7)
    addi r1, r1, 1
    li  r5, 7
    bne r1, r5, loop
    halt
"""

_RSORT = """
    li  r1, 0            ; i
outer:
    addi r2, r1, 1       ; j
inner:
    lw  r3, 0(r1)
    lw  r4, 0(r2)
    slt r5, r4, r3
    beq r5, r0, noswap
    sw  r4, 0(r1)
    sw  r3, 0(r2)
noswap:
    addi r2, r2, 1
    li  r5, 8
    bne r2, r5, inner
    addi r1, r1, 1
    li  r5, 7
    bne r1, r5, outer
    halt
"""

_QSORT = """
    li  r1, 1            ; i
outs:
    lw  r2, 0(r1)        ; key
    addi r3, r1, -1      ; j
ins:
    lw  r4, 0(r3)
    slt r5, r2, r4
    beq r5, r0, place
    sw  r4, 1(r3)        ; a[j+1] = a[j]
    addi r3, r3, -1
    li  r6, -1
    bne r3, r6, ins
place:
    sw  r2, 1(r3)        ; a[j+1] = key
    addi r1, r1, 1
    li  r6, 8
    bne r1, r6, outs
    halt
"""

_MATRIX_MUL = """
    li  r1, 0            ; i
mi: li  r2, 0            ; j
mj: li  r3, 0            ; k
    li  r6, 0            ; acc
mk: add r4, r1, r1       ; 2*i
    add r4, r4, r3
    lw  r4, 0(r4)        ; A[i][k]
    add r5, r3, r3       ; 2*k
    add r5, r5, r2
    lw  r5, 4(r5)        ; B[k][j]
    mul r4, r4, r5
    add r6, r6, r4
    addi r3, r3, 1
    li  r5, 2
    bne r3, r5, mk
    add r4, r1, r1
    add r4, r4, r2
    sw  r6, 8(r4)        ; C[i][j]
    addi r2, r2, 1
    li  r5, 2
    bne r2, r5, mj
    addi r1, r1, 1
    li  r5, 2
    bne r1, r5, mi
    halt
"""

_RSA = """
    lw  r1, 0(r0)        ; base
    lw  r2, 1(r0)        ; exponent
    lw  r3, 2(r0)        ; modulus
    li  r4, 1            ; result
expl:
    beq r2, r0, done
    mul r4, r4, r1
modl:
    slt r5, r4, r3
    bne r5, r0, modd
    sub r4, r4, r3
    j   modl
modd:
    addi r2, r2, -1
    j   expl
done:
    sw  r4, 8(r0)
    halt
"""

WORKLOADS: Dict[str, Workload] = {
    "median": Workload(
        "median", "3-point median filter over an 8-element array", _MEDIAN),
    "rsort": Workload(
        "rsort", "in-place exchange sort of 8 elements", _RSORT),
    "qsort": Workload(
        "qsort", "insertion sort of 8 elements", _QSORT),
    "matrix_mul": Workload(
        "matrix_mul", "2x2 integer matrix multiply", _MATRIX_MUL),
    "rsa": Workload(
        "rsa", "modular exponentiation (repeated multiply/reduce)", _RSA,
        min_xlen=16),
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


def run_workload_on_core(core, workload: Workload, seed: int = 0,
                         compiled: bool = True, max_cycles: int = 20000):
    """Execute a workload on a built core; returns (cycles, simulator).

    Raises if the final data memory disagrees with the architectural
    interpreter (self-checking).
    """
    from repro.sim import make_simulator

    cfg = core.config
    rng = random.Random(seed)
    data = workload.make_data(rng, cfg)
    expected = workload.expected_memory(data, cfg)
    sim = make_simulator(core.circuit, compiled=compiled,
                         initial_state=core.initial_state_for(workload.program, data))
    cycles = 0
    for cycles in range(1, max_cycles + 1):
        sim.step({})
        if sim.peek("core.halted"):
            break
    else:
        raise RuntimeError(f"{workload.name} on {core.name}: no halt in {max_cycles}")
    for address, value in enumerate(expected):
        got = sim.peek(core.dmem_words[address])
        if got != value:
            raise AssertionError(
                f"{workload.name} on {core.name}: mem[{address}] = {got}, "
                f"expected {value}"
            )
    return cycles, sim


def run_workload_batch(core, workload: Workload, seeds: Sequence[int],
                       circuit=None, max_cycles: int = 20000,
                       self_check: bool = True, tracer=None):
    """Execute one workload for many data seeds in a single bit-parallel
    pass — the Figure-6 overhead sweep's K-hungry inner loop.

    Each seed becomes one lane of a :class:`~repro.sim.batch.BatchSimulator`
    (same program, per-seed data memory).  Lanes run until every lane's
    ``core.halted`` fires; a lane's data memory is snapshotted at its own
    halt cycle and (by default) checked against the architectural
    interpreter, exactly as the scalar runner does.

    ``circuit`` overrides the simulated netlist (e.g. a taint-
    instrumented variant of ``core.circuit`` sharing its signal names).
    Returns ``(cycles_per_lane, simulator)``.
    """
    from repro.sim import BatchSimulator

    cfg = core.config
    lanes = len(seeds)
    datas = [workload.make_data(random.Random(seed), cfg) for seed in seeds]
    expected = [workload.expected_memory(data, cfg) for data in datas]
    inits = [core.initial_state_for(workload.program, data) for data in datas]
    sim = BatchSimulator(circuit if circuit is not None else core.circuit,
                         lanes=lanes, initial_states=inits, tracer=tracer)
    halted = 0
    memories: Dict[int, List[int]] = {}
    cycles: Dict[int, int] = {}
    depth = len(expected[0]) if expected else 0
    for t in range(1, max_cycles + 1):
        sim.advance({})
        newly = sim.peek_planes("core.halted")[0] & ~halted
        if newly:
            for lane in range(lanes):
                if (newly >> lane) & 1:
                    cycles[lane] = t
                    memories[lane] = [sim.peek(core.dmem_words[a], lane)
                                     for a in range(depth)]
            halted |= newly
            if halted == sim.lane_mask:
                break
    stuck = [seeds[k] for k in range(lanes) if k not in cycles]
    if stuck:
        raise RuntimeError(
            f"{workload.name} on {core.name}: seeds {stuck} did not halt "
            f"in {max_cycles} cycles")
    if self_check:
        for lane in range(lanes):
            for address, value in enumerate(expected[lane]):
                got = memories[lane][address]
                if got != value:
                    raise AssertionError(
                        f"{workload.name} on {core.name} (seed {seeds[lane]}): "
                        f"mem[{address}] = {got}, expected {value}")
    return [cycles[k] for k in range(lanes)], sim

"""Crash-safe file output helpers.

Every artifact the toolchain writes — traces, reports, refined schemes,
VCD dumps, CEGAR checkpoints — goes through :func:`atomic_write`: the
content lands in a temporary file in the *same directory* as the target
and is moved into place with :func:`os.replace` only after it was
written completely.  A crash (including SIGKILL) mid-write therefore
never leaves a half-written artifact under the final name; at worst a
``.tmp.*`` orphan remains, which readers ignore.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator


@contextmanager
def atomic_write(path: str, mode: str = "w", fsync: bool = False) -> Iterator[IO]:
    """Open a temporary file that replaces ``path`` on a clean exit.

    Args:
        path: final destination; its directory must exist.
        mode: ``"w"`` (text, UTF-8) or ``"wb"`` (binary).
        fsync: flush file contents to stable storage before the rename
            (used by the checkpoint journal, where durability matters;
            plain reports skip the extra syscall).

    On an exception inside the ``with`` block the temporary file is
    removed and ``path`` is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write supports modes 'w'/'wb', not {mode!r}")
    directory = os.path.dirname(os.path.abspath(path))
    encoding = None if "b" in mode else "utf-8"
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp."
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - already gone
            pass
        raise

"""Crash-safe file output helpers.

Every artifact the toolchain writes — traces, reports, refined schemes,
VCD dumps, CEGAR checkpoints — goes through :func:`atomic_write`: the
content lands in a temporary file in the *same directory* as the target
and is moved into place with :func:`os.replace` only after it was
written completely.  A crash (including SIGKILL) mid-write therefore
never leaves a half-written artifact under the final name; at worst a
``.tmp.*`` orphan remains, which readers ignore.

Orphans do accumulate in long-lived directories (checkpoint journals,
the persistent solve store), so :func:`sweep_orphans` removes stale
ones; the journal and store call it on open.
"""

from __future__ import annotations

import os
import stat
import tempfile
import time
from contextlib import contextmanager
from typing import IO, Iterator, List


@contextmanager
def atomic_write(path: str, mode: str = "w", fsync: bool = False) -> Iterator[IO]:
    """Open a temporary file that replaces ``path`` on a clean exit.

    Args:
        path: final destination; its directory must exist.
        mode: ``"w"`` (text, UTF-8) or ``"wb"`` (binary).
        fsync: flush file contents to stable storage before the rename
            (used by the checkpoint journal, where durability matters;
            plain reports skip the extra syscall).

    On an exception inside the ``with`` block the temporary file is
    removed and ``path`` is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write supports modes 'w'/'wb', not {mode!r}")
    directory = os.path.dirname(os.path.abspath(path))
    encoding = None if "b" in mode else "utf-8"
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp."
    )
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:  # pragma: no cover - already gone
            pass
        raise


def sweep_orphans(directory: str, min_age: float = 3600.0) -> List[str]:
    """Remove stale ``.tmp.*`` files left behind by crashed writers.

    :func:`atomic_write` unlinks its temporary file on every exception
    path, but a hard kill (SIGKILL, power loss) between ``mkstemp`` and
    the rename leaves the orphan on disk forever.  Long-lived
    directories — the checkpoint journal, the persistent solve store —
    call this on open.

    Args:
        directory: the directory to sweep; a missing directory is a
            no-op.
        min_age: only remove orphans whose mtime is at least this many
            seconds old, so an *in-flight* write by a concurrent
            process is never swept out from under it.  Tests pass 0 to
            sweep unconditionally.

    Returns the file names that were removed (for logging/counters).
    """
    removed: List[str] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    now = time.time()
    for name in names:
        if ".tmp." not in name:
            continue
        path = os.path.join(directory, name)
        try:
            info = os.stat(path)
        except OSError:  # pragma: no cover - raced by another sweeper
            continue
        if not stat.S_ISREG(info.st_mode):
            continue
        if now - info.st_mtime < min_age:
            continue
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced by another sweeper
            continue
        removed.append(name)
    return removed

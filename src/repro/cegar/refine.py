"""Refinement strategy (paper Section 5.4, Figure 4).

At an identified refinement location, candidate taint options are tried
in a fixed overhead order — first raising logic complexity, then bit
granularity — and the first option that locally flips the falsely
tainted bit from 1 to 0 is kept.  If no option helps, the imprecision
is correlation-based and a :class:`CorrelationImprecisionAlert` is
raised for the user (Section 3.2: beyond Compass's scope).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hdl.circuit import Circuit
from repro.formal.counterexample import Counterexample
from repro.sim.waveform import Waveform
from repro.taint.instrument import InstrumentedDesign, TaintSources, instrument
from repro.taint.policies import distinct_complexities, effective_complexity
from repro.taint.space import Complexity, Granularity, TaintOption, TaintScheme, refinement_ladder
from repro.cegar.backtrace import LocationKind, RefinementLocation


class CorrelationImprecisionAlert(RuntimeError):
    """No local refinement blocks the false flow: the imprecision is
    correlation-based and needs manual, module-level custom taint logic."""

    def __init__(self, location: RefinementLocation) -> None:
        super().__init__(
            f"no refinement option at {location} blocks the false taint; "
            "the imprecision is likely correlation-based (Section 3.2) — "
            "provide custom module-level taint logic"
        )
        self.location = location


@dataclass
class RefinementOutcome:
    """Result of one refinement application."""

    scheme: TaintScheme
    design: InstrumentedDesign
    waveform: Waveform
    location: RefinementLocation
    description: str
    gen_time: float = 0.0
    sim_time: float = 0.0


def _reinstrument(
    circuit: Circuit,
    sources: TaintSources,
    scheme: TaintScheme,
    cex: Counterexample,
) -> Tuple[InstrumentedDesign, Waveform, float, float]:
    t0 = time.monotonic()
    design = instrument(circuit, scheme, sources)
    gen_time = time.monotonic() - t0
    t0 = time.monotonic()
    waveform = cex.replay(design.circuit)
    sim_time = time.monotonic() - t0
    return design, waveform, gen_time, sim_time


def _taint_value(design: InstrumentedDesign, waveform: Waveform, name: str, cycle: int) -> int:
    taint_name = design.taint_name.get(name)
    if taint_name is None or not waveform.has_signal(taint_name):
        return 1  # inside a blackbox: conservatively tainted
    return waveform.value(taint_name, cycle)


def apply_refinement(
    circuit: Circuit,
    sources: TaintSources,
    scheme: TaintScheme,
    design: InstrumentedDesign,
    location: RefinementLocation,
    cex: Counterexample,
) -> RefinementOutcome:
    """Refine ``scheme`` at ``location``; returns the new scheme/design.

    Raises :class:`CorrelationImprecisionAlert` when every candidate
    fails the local flip test at a CELL location.
    """
    if location.kind is LocationKind.MODULE:
        new_scheme = scheme.copy()
        new_scheme.open_blackbox(location.name)
        new_design, waveform, t_gen, t_sim = _reinstrument(circuit, sources, new_scheme, cex)
        return RefinementOutcome(
            new_scheme, new_design, waveform, location,
            f"open blackbox {location.name}", t_gen, t_sim,
        )

    if location.kind is LocationKind.REGISTER:
        current = scheme.granularity_for_register(location.name)
        if current is Granularity.BIT:
            raise CorrelationImprecisionAlert(location)
        new_scheme = scheme.copy()
        new_scheme.refine_register(location.name, Granularity.BIT)
        new_design, waveform, t_gen, t_sim = _reinstrument(circuit, sources, new_scheme, cex)
        return RefinementOutcome(
            new_scheme, new_design, waveform, location,
            f"register {location.name}: word -> bit granularity", t_gen, t_sim,
        )

    if location.kind is LocationKind.SOURCE:
        # Tracing reached a taint source: the flow up to here is real;
        # treat as correlation-type imprecision that local cuts cannot fix.
        raise CorrelationImprecisionAlert(location)

    # CELL location: walk the Figure 4 ladder.
    cell = circuit.producer(circuit.signal(location.name))
    if cell is None:
        raise CorrelationImprecisionAlert(location)
    current = design.applied_options.get(location.name, scheme.option_for_cell(location.name))
    gen_time = 0.0
    sim_time = 0.0
    tried: set = {(current.granularity, effective_complexity(cell.op, current))}
    for option in refinement_ladder(current):
        effective = effective_complexity(cell.op, option)
        key = (option.granularity, effective)
        if key in tried:
            continue  # identical logic to something already tried
        tried.add(key)
        candidate = scheme.copy()
        candidate.refine_cell(location.name, TaintOption(option.granularity, effective))
        new_design, waveform, t_gen, t_sim = _reinstrument(circuit, sources, candidate, cex)
        gen_time += t_gen
        sim_time += t_sim
        if _taint_value(new_design, waveform, location.signal, location.cycle) == 0:
            return RefinementOutcome(
                candidate, new_design, waveform, location,
                f"cell {location.name}: {current} -> {option.granularity.value}/{effective.value}",
                gen_time, sim_time,
            )
    raise CorrelationImprecisionAlert(location)

"""Falsely-tainted signal tests (paper Section 4 and Section 5.3).

Two tests, one cheap and one exact:

- :class:`FastFalseTaintOracle` — the paper's *fast test*: re-simulate
  the counterexample with every secret bit flipped; a tainted signal
  whose value did not change is *claimed* falsely tainted.  May
  over-claim (leading to extra, but sound, refinements) — exactly the
  trade-off Section 5.3 describes.
- :func:`exact_false_taint_check` — the model-checking test: two copies
  of the original design, copy 1 fully concrete from the
  counterexample, copy 2 identical except the secret state is symbolic;
  the signal is falsely tainted iff the copies provably agree on it for
  the length of the trace.  This is the counterexample-validation step
  of the CEGAR loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

from repro.hdl.circuit import Circuit
from repro.formal.bmc import BmcStatus, bounded_model_check
from repro.formal.counterexample import Counterexample
from repro.formal.product import self_composition
from repro.formal.properties import SafetyProperty
from repro.sim.waveform import Waveform


@dataclass
class SecretSpec:
    """Which state carries the secret: register name -> tainted-bit mask."""

    registers: Dict[str, int]

    @classmethod
    def from_sources(cls, sources) -> "SecretSpec":
        return cls(registers=dict(sources.registers))

    def flip(self, initial_state: Mapping[str, int], widths: Mapping[str, int]) -> Dict[str, int]:
        flipped = dict(initial_state)
        for name, mask in self.registers.items():
            if name in flipped:
                width_mask = (1 << widths[name]) - 1
                flipped[name] = (flipped[name] ^ (mask & width_mask)) & width_mask
        return flipped


class FastFalseTaintOracle:
    """Simulation-based approximation of "is this signal falsely tainted?".

    Replays the counterexample twice on the *original* design — once
    as-is and once with all secret bits flipped — and compares signal
    values pointwise.
    """

    def __init__(
        self,
        circuit: Circuit,
        cex: Counterexample,
        secrets: SecretSpec,
    ) -> None:
        from repro.formal.counterexample import replay_batch

        widths = {reg.q.name: reg.q.width for reg in circuit.registers}
        flipped_cex = cex.with_initial_state(secrets.flip(cex.initial_state, widths))
        # Both replays share one bit-parallel pass (two lanes).
        self.baseline, self.flipped = replay_batch(circuit, [cex, flipped_cex])

    def value_changed(self, signal_name: str, cycle: int) -> bool:
        return self.baseline.value(signal_name, cycle) != self.flipped.value(signal_name, cycle)

    def is_falsely_tainted(self, signal_name: str, cycle: int) -> bool:
        """True when flipping the secret did not move this signal's value.

        (Only meaningful for signals that *are* tainted at this cycle.)
        """
        return not self.value_changed(signal_name, cycle)


class ExactValidator:
    """Cached exact false-taint checker for one design.

    Building the two-copy product and lowering it to gates dominates the
    cost of a single :func:`exact_false_taint_check` call; across a CEGAR
    run the *design* never changes (only the counterexample does), so
    this class builds the product once, pre-installs difference monitors
    for every signal of interest, and lowers once.
    """

    def __init__(
        self,
        circuit: Circuit,
        secret_registers: Iterable[str],
        monitored_signals: Sequence[str],
        init_assumption_outputs: Sequence[str] = (),
    ) -> None:
        from repro.hdl.lowering import lower_to_gates
        from repro.hdl.optimize import simplify
        from repro.hdl.lowering import LoweredCircuit

        self.circuit = circuit
        self.secret_registers = set(secret_registers)
        shared = {sig.name for sig in circuit.inputs}
        self.product = self_composition(circuit, shared_inputs=shared)
        self.bad_of = {name: self.product.differs(name) for name in monitored_signals}
        self.init_assumptions = tuple(
            self.product.c2(name) for name in init_assumption_outputs
        )
        self.product.circuit.validate()
        lowered = lower_to_gates(self.product.circuit)
        self.lowered = LoweredCircuit(simplify(lowered.circuit), lowered.bits)

    def is_falsely_tainted(
        self, cex: Counterexample, signal_name: str,
        time_limit: Optional[float] = None,
    ) -> bool:
        bad = self.bad_of.get(signal_name)
        if bad is None:
            # Signal not pre-monitored: fall back to the uncached path.
            return exact_false_taint_check(
                self.circuit, cex, self.secret_registers, signal_name,
                time_limit=time_limit,
                init_assumption_outputs=[
                    n[len(self.product.prefix2) + 1:] for n in self.init_assumptions
                ],
            )
        initial_values, symbolic = self._initial_state(cex)
        prop = SafetyProperty(
            name=f"false-taint:{signal_name}",
            bad=bad,
            init_assumptions=self.init_assumptions,
            symbolic_registers=frozenset(symbolic),
        )
        result = bounded_model_check(
            self.lowered, prop,
            max_bound=cex.length - 1,
            time_limit=time_limit,
            initial_values=initial_values,
            input_constraints=[dict(frame) for frame in cex.inputs],
        )
        if result.status is BmcStatus.COUNTEREXAMPLE:
            return False
        return result.status is BmcStatus.BOUND_REACHED

    def _initial_state(self, cex: Counterexample):
        initial_values: Dict[str, int] = {}
        symbolic: Set[str] = set()
        for reg in self.circuit.registers:
            value = cex.initial_state.get(reg.q.name, reg.reset_value)
            initial_values[self.product.c1(reg.q.name)] = value
            if reg.q.name in self.secret_registers:
                symbolic.add(self.product.c2(reg.q.name))
            else:
                initial_values[self.product.c2(reg.q.name)] = value
        return initial_values, symbolic


def exact_false_taint_check(
    circuit: Circuit,
    cex: Counterexample,
    secret_registers: Iterable[str],
    signal_name: str,
    time_limit: Optional[float] = None,
    init_assumption_outputs: Sequence[str] = (),
) -> bool:
    """Exact test: is ``signal_name`` falsely tainted in this trace?

    Returns True (falsely tainted / spurious) when the model checker
    proves the signal equal in both copies for the whole trace length;
    False when some secret valuation makes it differ (truly tainted).

    As the paper notes, this check is lightweight: all public inputs are
    concrete, only copy 2's secret state is symbolic, and the check is
    bounded by the counterexample length.
    """
    secret_set = set(secret_registers)
    shared = {sig.name for sig in circuit.inputs}
    product = self_composition(circuit, shared_inputs=shared)
    bad = product.differs(signal_name)
    product.circuit.validate()

    initial_values: Dict[str, int] = {}
    symbolic: Set[str] = set()
    for reg in circuit.registers:
        value = cex.initial_state.get(reg.q.name, reg.reset_value)
        initial_values[product.c1(reg.q.name)] = value
        if reg.q.name in secret_set:
            symbolic.add(product.c2(reg.q.name))
        else:
            initial_values[product.c2(reg.q.name)] = value

    # Structural invariants of the design (e.g. "shadow ISA memory equals
    # DUV memory at reset") must also hold inside the symbolic copy.
    init_assumptions = tuple(product.c2(name) for name in init_assumption_outputs)
    prop = SafetyProperty(
        name=f"false-taint:{signal_name}",
        bad=bad,
        init_assumptions=init_assumptions,
        symbolic_registers=frozenset(symbolic),
    )
    input_frames = [dict(frame) for frame in cex.inputs]
    result = bounded_model_check(
        product.circuit,
        prop,
        max_bound=cex.length - 1,
        time_limit=time_limit,
        initial_values=initial_values,
        input_constraints=input_frames,
    )
    if result.status is BmcStatus.COUNTEREXAMPLE:
        return False
    return result.status is BmcStatus.BOUND_REACHED

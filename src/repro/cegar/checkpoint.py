"""Crash-safe checkpoint journal for CEGAR runs.

A CEGAR verify is a long-running iterative search; on production-scale
designs a single run spans many minutes of model checking.  Without
checkpoints, a crashed parent process (OOM kill, node preemption,
ctrl-C at the wrong moment) discards *everything*: every refined
scheme, every eliminated counterexample, every cached solve.

:class:`CheckpointJournal` makes the loop resumable.  After every
completed CEGAR iteration the loop appends a :class:`CegarCheckpoint`
— the current scheme, the iteration counter, the running
:class:`~repro.cegar.loop.RefinementStats`, the pruned-candidate set
and a snapshot of the solve cache — to a numbered journal entry on
disk.  Entries are written atomically (write-tmp-then-rename through
:func:`repro.ioutil.atomic_write` with an fsync) and carry a SHA-256
content checksum, so:

- a crash mid-write never leaves a half-written entry under a journal
  name (the rename is atomic);
- a torn or bit-flipped entry (power loss after the rename, disk
  corruption, an injected fault) is *detected* on read and the reader
  falls back to the most recent intact entry instead of resuming from
  garbage.

Journal layout: ``<dir>/journal-000007.ckpt`` — one file per
checkpoint, monotonically numbered; the newest few are kept (``keep``)
and older ones pruned.  File format::

    COMPASS-CKPT v1\\n
    <64 hex chars: sha256 of the payload>\\n
    <pickled CegarCheckpoint payload>

Restored cache entries go through the *validating*
:meth:`~repro.formal.cache.SolveCache.merge_entries`, so even a
corrupted entry that survives inside an intact pickle (e.g. injected
by :func:`repro.faults.corrupt_entry` before the checkpoint was taken)
is rejected on merge instead of poisoning a verdict.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.faults import FaultPlan
from repro.ioutil import atomic_write, sweep_orphans

MAGIC = b"COMPASS-CKPT v1\n"
_ENTRY_RE = re.compile(r"^journal-(\d{6})\.ckpt$")

#: Bump when the checkpoint payload schema changes incompatibly.
FORMAT_VERSION = 1


class CheckpointError(Exception):
    """A checkpoint could not be written or no intact entry exists."""


@dataclass
class CegarCheckpoint:
    """Everything needed to restart a CEGAR run where it stopped.

    ``iteration`` is the *next* iteration to execute: a checkpoint
    written after iteration k completed carries ``iteration == k + 1``.
    ``config_digest`` guards against resuming under different knobs
    (which would make the resumed trajectory diverge silently).
    """

    version: int
    task_name: str
    config_digest: str
    iteration: int
    scheme: Any                      # TaintScheme
    stats: Any                       # RefinementStats
    last_bound: int = -1
    rng_state: Optional[tuple] = None
    cache_entries: Dict[str, Any] = field(default_factory=dict)
    #: Refinement locations that exhausted the option ladder so far
    #: (the loop's pruned-candidate set, restored for observability and
    #: so resumed runs keep identical retry trajectories).
    pruned_candidates: Set[str] = field(default_factory=set)
    #: In-flight speculation at checkpoint time (``{"n": fan-out,
    #: "schemes": [TaintScheme, ...]}``) so a resumed run re-primes the
    #: same wave.  ``None`` for sequential runs and pre-speculation
    #: checkpoints (the field defaults keep old journals loadable, and
    #: readers use ``getattr`` so new journals load in old code too).
    speculation: Optional[Dict[str, Any]] = None


def _encode(checkpoint: CegarCheckpoint) -> bytes:
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + payload


def _decode(blob: bytes) -> CegarCheckpoint:
    """Parse and verify one journal entry; raises CheckpointError."""
    if not blob.startswith(MAGIC):
        raise CheckpointError("bad magic (not a compass checkpoint)")
    rest = blob[len(MAGIC):]
    digest, sep, payload = rest.partition(b"\n")
    if not sep or len(digest) != 64:
        raise CheckpointError("malformed checksum header")
    actual = hashlib.sha256(payload).hexdigest().encode("ascii")
    if actual != digest:
        raise CheckpointError("checksum mismatch (torn or corrupted entry)")
    try:
        checkpoint = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"undecodable payload: {exc}") from exc
    if not isinstance(checkpoint, CegarCheckpoint):
        raise CheckpointError(
            f"payload is a {type(checkpoint).__name__}, not a CegarCheckpoint")
    if checkpoint.version != FORMAT_VERSION:
        raise CheckpointError(
            f"format version {checkpoint.version} != {FORMAT_VERSION}")
    return checkpoint


class CheckpointJournal:
    """Numbered, checksummed, atomically-written checkpoint directory.

    Args:
        directory: journal directory; created if missing.
        keep: how many of the newest entries to retain.  At least 2, so
            a corrupted newest entry always has an intact predecessor
            to fall back to.
        faults: optional deterministic fault plan; consulted after each
            entry is written (checkpoint corruption / parent-kill
            faults for the recovery tests).
    """

    def __init__(self, directory: str, keep: int = 4,
                 faults: Optional[FaultPlan] = None) -> None:
        if keep < 2:
            raise ValueError("keep must be >= 2 (corruption fallback needs "
                             "a previous entry)")
        self.directory = directory
        self.keep = keep
        self.faults = faults
        os.makedirs(directory, exist_ok=True)
        # A writer SIGKILLed between mkstemp and rename leaves a
        # .tmp.* orphan next to the journal entries; clean old ones up
        # (the age guard protects a concurrent writer's in-flight file).
        sweep_orphans(directory)

    # -- enumeration -------------------------------------------------------

    def entries(self) -> List[Tuple[int, str]]:
        """(index, absolute path) of every journal entry, oldest first."""
        found = []
        for name in os.listdir(self.directory):
            match = _ENTRY_RE.match(name)
            if match:
                found.append((int(match.group(1)),
                              os.path.join(self.directory, name)))
        return sorted(found)

    def __len__(self) -> int:
        return len(self.entries())

    # -- writing -----------------------------------------------------------

    def append(self, checkpoint: CegarCheckpoint) -> str:
        """Write the next journal entry atomically; returns its path."""
        entries = self.entries()
        index = entries[-1][0] + 1 if entries else 0
        path = os.path.join(self.directory, f"journal-{index:06d}.ckpt")
        blob = _encode(checkpoint)
        with atomic_write(path, "wb", fsync=True) as handle:
            handle.write(blob)
        self._prune(index)
        if self.faults is not None:
            # May damage the file just written or SIGKILL this process.
            self.faults.on_checkpoint_written(index, path)
        return path

    def _prune(self, newest_index: int) -> None:
        for index, path in self.entries():
            if index <= newest_index - self.keep:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - raced by another run
                    pass

    # -- reading -----------------------------------------------------------

    def latest(self) -> Optional[CegarCheckpoint]:
        """The newest *intact* checkpoint, or None for an empty journal.

        Entries failing the checksum or failing to decode are skipped
        (newest first), so a truncated or corrupted tail falls back to
        the previous entry.  Raises :class:`CheckpointError` only when
        the journal has entries but none of them is readable.
        """
        checkpoint, _skipped = self.latest_with_diagnostics()
        return checkpoint

    def latest_with_diagnostics(
        self,
    ) -> Tuple[Optional[CegarCheckpoint], List[str]]:
        """Like :meth:`latest`, plus messages for every skipped entry."""
        entries = self.entries()
        skipped: List[str] = []
        for index, path in reversed(entries):
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
                return _decode(blob), skipped
            except (OSError, CheckpointError) as exc:
                skipped.append(f"journal-{index:06d}.ckpt: {exc}")
        if entries:
            raise CheckpointError(
                "no intact checkpoint in %r: %s"
                % (self.directory, "; ".join(skipped)))
        return None, skipped

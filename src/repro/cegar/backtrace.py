"""Backward tracing algorithm (paper Algorithm 1, Section 5.3).

Starting from the falsely tainted sink at the last cycle of the
counterexample, trace upstream through the taint propagation graph:

- at each step, fan-ins are taken through the producing cell of the
  *original* netlist (registers step back one cycle to their
  next-value signal);
- a fan-in is a traceback candidate when it is tainted, *claimed
  falsely tainted* by the fast test, and *observable* under the
  concrete values of the counterexample (Appendix A);
- when no candidate remains, the taint logic computing the current
  signal's taint bit is the refinement location.

Signals produced inside a blackboxed module map to a MODULE location:
the only possible refinement there is opening the blackbox.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.hdl.cells import Cell
from repro.hdl.circuit import Circuit
from repro.sim.waveform import Waveform
from repro.taint.instrument import InstrumentedDesign
from repro.cegar.falsetaint import FastFalseTaintOracle
from repro.cegar.observability import observable_fanins


class LocationKind(enum.Enum):
    CELL = "cell"
    REGISTER = "register"
    MODULE = "module"
    SOURCE = "source"   # traced all the way back to a taint source


@dataclass(frozen=True)
class RefinementLocation:
    """Where the imprecision enters the taint propagation graph."""

    kind: LocationKind
    name: str      # cell output name / register name / module path
    cycle: int
    signal: str    # the falsely tainted signal at that point

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}@{self.cycle}"


class BacktraceError(RuntimeError):
    pass


def find_refinement_location(
    design: InstrumentedDesign,
    taint_waveform: Waveform,
    oracle: FastFalseTaintOracle,
    sink: str,
    cycle: Optional[int] = None,
    rng: Optional[random.Random] = None,
    max_steps: int = 100000,
    excluded: Optional[Set[str]] = None,
    hints: Optional[Sequence[str]] = None,
) -> RefinementLocation:
    """Run Algorithm 1 and return the refinement location.

    Args:
        design: the instrumented design that produced the spurious cex.
        taint_waveform: waveform of the *instrumented* circuit replaying
            the counterexample (provides taint values).
        oracle: fast false-taint test over the *original* circuit.
        sink: original signal name of the falsely tainted sink.
        cycle: cycle at which the sink is falsely tainted (default:
            last cycle of the waveform).
        rng: source of randomness for candidate picking (Algorithm 1
            picks one candidate arbitrarily); defaults to deterministic
            first-candidate order.
        excluded: location names where refinement already failed; the
            trace pushes past them by relaxing the false-taint filter
            (the fast test may over- or under-claim, so a dead end is
            not necessarily correlation imprecision).
        hints: ranked signal names (best first) the trace should prefer
            when Algorithm 1 leaves the pick arbitrary — e.g. the
            suspect list of the static pre-screen. Candidates outside
            the hint set fall back to the rng / first-candidate order.
    """
    original = design.original
    excluded = excluded or set()
    hint_rank = {name: i for i, name in enumerate(hints or ())}
    if cycle is None:
        cycle = taint_waveform.length - 1

    def is_tainted(name: str, t: int) -> bool:
        taint_name = design.taint_name.get(name)
        if taint_name is None or not taint_waveform.has_signal(taint_name):
            # Signals internal to blackboxes have no individual taint
            # bit; treat them as tainted so tracing can continue into
            # the region (the region bit itself is what tainted them).
            return True
        return taint_waveform.value(taint_name, t) != 0

    current_name = sink
    current_cycle = cycle
    visited: Set[Tuple[str, int]] = set()

    for _ in range(max_steps):
        visited.add((current_name, current_cycle))
        signal = original.signal(current_name)

        register = original.register_of(signal)
        if register is not None:
            if current_cycle == 0:
                # Tainted at reset: either a module-grouped register (open
                # the blackbox), a word-grouped register whose taint reset
                # over-approximates (refine granularity), or a genuine
                # taint source.
                return _locate(design, original, current_name, 0, register=True)
            d_name = register.d.name
            previous = current_cycle - 1
            if (
                (d_name, previous) not in visited
                and is_tainted(d_name, previous)
                and (oracle.is_falsely_tainted(d_name, previous)
                     or current_name in excluded)
            ):
                current_name, current_cycle = d_name, previous
                continue
            # The register's own taint update introduced the imprecision
            # (e.g. word-grouping of per-bit taint).
            return _locate(design, original, current_name, current_cycle, register=True)

        producer = original.producer(signal)
        if producer is None:
            # Input or constant: taint is a source constant.
            return RefinementLocation(
                LocationKind.SOURCE, current_name, current_cycle, current_name
            )

        values = [taint_waveform.value(s.name, current_cycle) for s in producer.ins]
        observable = observable_fanins(producer, values)
        candidates: List[str] = []
        relaxed: List[str] = []
        for index, fan_in in enumerate(producer.ins):
            if index not in observable:
                continue
            if (fan_in.name, current_cycle) in visited:
                continue
            if not is_tainted(fan_in.name, current_cycle):
                continue
            relaxed.append(fan_in.name)
            if not oracle.is_falsely_tainted(fan_in.name, current_cycle):
                continue
            candidates.append(fan_in.name)
        if not candidates and current_name in excluded and relaxed:
            # Refinement already failed here; the fast test may have
            # misjudged an upstream signal — push past the dead end.
            candidates = relaxed
        if candidates:
            hinted = [c for c in candidates if c in hint_rank]
            if hinted:
                pick = min(hinted, key=lambda c: hint_rank[c])
            elif rng is not None:
                pick = rng.choice(candidates)
            else:
                pick = candidates[0]
            current_name = pick
            continue
        return _locate(design, original, current_name, current_cycle, register=False)

    raise BacktraceError(f"backtrace exceeded {max_steps} steps from sink {sink!r}")


def _locate(
    design: InstrumentedDesign,
    original: Circuit,
    signal_name: str,
    cycle: int,
    register: bool,
) -> RefinementLocation:
    """Map the stopping point to a refinement location, honouring blackboxes."""
    signal = original.signal(signal_name)
    region = design.scheme.effective_blackbox(signal.module)
    if region is None and not register:
        producer = original.producer(signal)
        if producer is not None:
            region = design.scheme.effective_blackbox(producer.module)
    if region is not None:
        return RefinementLocation(LocationKind.MODULE, region, cycle, signal_name)
    if register:
        return RefinementLocation(LocationKind.REGISTER, signal_name, cycle, signal_name)
    return RefinementLocation(LocationKind.CELL, signal_name, cycle, signal_name)

"""Speculative candidate-scheme verification for the CEGAR loop.

The Compass loop walks the taint-scheme lattice one candidate at a
time, but at every refinement signal the *next* candidates are already
known: the scheme the ladder just settled on, and its ladder siblings
at the same location (the schemes a repeat counterexample at that
location would produce).  This module makes "verify one candidate" a
schedulable unit and runs those predictions concurrently:

- :func:`verify_candidate` is the pure verification unit extracted
  from the loop body — instrument, static pre-screen, engine dispatch,
  counterexample extraction — with **no loop state**.  The loop and
  the speculative workers run the exact same function, which is what
  makes speculation *result-transparent*: a worker's verdict is
  consumed only for the precise scheme the sequential walk reaches, so
  the final (scheme, verdict, refinement sequence) is bit-identical to
  the sequential run for any fan-out ``N`` (given deterministic engine
  settings; wall-clock-limited runs are deterministic modulo their
  time limits, exactly like the sequential loop).

- :class:`SpeculativeScheduler` owns a supervised process pool in the
  style of :mod:`repro.formal.portfolio`: crashed workers are
  relaunched with exponential backoff, losers are cancelled on the
  first refinement signal (terminate → join → kill), and every worker
  streams its solve results back through the shared cache as they are
  produced — a cancelled loser's work still warms the (store-backed)
  cache for the next iteration.  With ``remote`` set, candidates are
  dispatched to the job daemon as ``candidate`` jobs instead; remote
  cancellation is advisory (an abandoned job completes server-side and
  warms the daemon's store).

Workers run their nested portfolio in forced-sequential mode: daemonic
pool processes cannot spawn children, and a cancel must never leave
orphan grandchildren behind.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.formal.bmc import BmcStatus, bounded_model_check
from repro.formal.cache import CacheStats, SolveCache
from repro.formal.counterexample import Counterexample
from repro.formal.induction import InductionStatus, k_induction
from repro.formal.portfolio import (
    EngineReport,
    PortfolioConfig,
    PortfolioResult,
    PortfolioStatus,
    _StreamingCache,
    verify_portfolio,
)
from repro.obs import NULL_TRACER, Tracer
from repro.taint.policies import effective_complexity
from repro.taint.scheme_io import scheme_to_dict
from repro.taint.space import TaintOption, TaintScheme, refinement_ladder
from repro.cegar.backtrace import LocationKind, RefinementLocation

#: Engine label speculative candidate workers report under — fault
#: plans target them with e.g. ``kill_worker("spec", after_solves=1)``.
SPEC_ENGINE = "spec"


def scheme_digest(scheme: TaintScheme) -> str:
    """Content digest of a candidate scheme (the scheduler's slot key)."""
    doc = scheme_to_dict(scheme)
    doc.pop("name", None)  # candidate identity, not its display name
    canon = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class CandidateVerdict:
    """The outcome of verifying one candidate scheme.

    A plain, picklable record: the loop folds it into its stats and
    trajectory identically whether it was computed inline, by a
    speculative worker, or by the job daemon (``source``).
    """

    digest: str
    status: str = "bound_reached"  # proved | counterexample | bound_reached
    counterexample: Optional[Counterexample] = None
    #: Deepest cycle the engines proved clean (folded into the loop's
    #: running bound on non-proved outcomes).
    bound: int = -1
    #: Clean bound donated by an inconclusive static pre-screen
    #: (folded unconditionally, mirroring the inlined loop body).
    static_bound: int = -1
    proved_by: str = ""
    #: Raw engine status for the parent's ``cegar.model-check`` span.
    engine_status: str = ""
    winner: Optional[str] = None  # portfolio winner engine
    static_prescreens: int = 0
    static_proofs: int = 0
    static_cex: int = 0
    static_skipped_bounds: int = 0
    suspects: Tuple[str, ...] = ()
    portfolio: Optional[PortfolioResult] = None
    elapsed: float = 0.0
    source: str = "inline"  # inline | speculative | remote


def verify_candidate(
    task,
    scheme: TaintScheme,
    config,
    *,
    cache: Optional[SolveCache] = None,
    tracer: Optional[Tracer] = None,
    design=None,
    prop=None,
    time_limit: Optional[float] = None,
    iteration: Optional[int] = None,
    in_worker: bool = False,
) -> CandidateVerdict:
    """Verify one candidate scheme: the pure unit behind the CEGAR loop.

    Instrument → static pre-screen → engine dispatch → counterexample
    extraction, reproducing the historical loop body exactly, with no
    loop state.  ``time_limit`` is the model-checking wall-clock budget
    for this candidate (the loop passes ``mc_time_limit`` clamped to
    the remaining ``total_time_limit``); ``in_worker`` forces a nested
    portfolio into sequential mode (pool workers are daemonic and must
    not leave grandchildren behind on cancellation).

    Args:
        task: the :class:`~repro.cegar.loop.TaintVerificationTask`.
        scheme: the candidate taint scheme.
        config: a :class:`~repro.cegar.loop.CegarConfig` (engine
            selection and budgets; ``trace``/``solve_cache`` on it are
            ignored — pass ``tracer``/``cache`` explicitly).
        design, prop: optionally the already-instrumented design for
            ``scheme`` (the loop reuses its own instrumentation; a
            worker instruments from scratch — deterministically the
            same result).
    """
    from repro.cegar.loop import instrument_task

    started = time.monotonic()
    tracer = tracer or NULL_TRACER
    span_args = {} if iteration is None else {"iteration": iteration}
    if design is None or prop is None:
        design, prop = instrument_task(task, scheme)
    verdict = CandidateVerdict(digest=scheme_digest(scheme))

    start_bound = 0
    if config.mc_enabled and (config.static_prescreen
                              or config.engine == "static"):
        from repro.analyze import static_verify

        with tracer.span("cegar.analyze", cat="mc", **span_args) as asp:
            sres = static_verify(
                design.circuit, prop,
                max_frames=config.static_max_frames, tracer=tracer,
            )
            asp.set(status=sres.status, bound=sres.bound)
        verdict.static_prescreens = 1
        tracer.count("analyze.prescreens")
        if sres.proved:
            verdict.static_proofs = 1
            verdict.status = "proved"
            verdict.proved_by = "static"
            verdict.elapsed = time.monotonic() - started
            return verdict
        if sres.status == "violation":
            verdict.static_cex = 1
            verdict.status = "counterexample"
            verdict.counterexample = sres.counterexample
            verdict.elapsed = time.monotonic() - started
            return verdict
        verdict.suspects = tuple(sres.suspects)
        verdict.static_bound = sres.bound
        if sres.bound >= 0:
            start_bound = sres.bound + 1
            verdict.static_skipped_bounds = start_bound
            tracer.count("analyze.skipped_bounds", start_bound)

    if config.mc_enabled and config.engine != "static" \
            and config.faults is not None:
        # Injected backend latency (chaos/bench): sleep in whichever
        # process dispatches the model-checking call, so the latency
        # overlaps across processes like a real slow solve service.
        lag = config.faults.solve_delay()
        if lag > 0:
            time.sleep(lag)

    if not config.mc_enabled or config.engine == "static":
        pass  # no model checker to consult; stop at the bound
    elif config.engine == "portfolio":
        pres = verify_portfolio(
            design.circuit, prop,
            PortfolioConfig(
                engines=config.portfolio_engines,
                jobs=config.jobs,
                max_bound=config.max_bound,
                induction_max_k=config.induction_max_k,
                unique_states=config.unique_states,
                pdr_max_frames=config.pdr_max_frames,
                time_limit=time_limit,
                max_conflicts=config.max_conflicts,
                start_bound=start_bound,
                static_max_frames=config.static_max_frames,
                certify=config.certify,
                max_worker_retries=config.max_worker_retries,
                retry_backoff=config.retry_backoff,
                faults=config.faults,
                force_sequential=in_worker,
            ),
            cache=cache,
            tracer=tracer if tracer is not NULL_TRACER else None,
        )
        verdict.portfolio = pres
        verdict.engine_status = pres.status.value
        verdict.winner = pres.winner
        if pres.status is PortfolioStatus.PROVED:
            verdict.status = "proved"
            verdict.proved_by = pres.winner or "portfolio"
        elif pres.status is PortfolioStatus.COUNTEREXAMPLE:
            verdict.status = "counterexample"
            verdict.counterexample = pres.counterexample
        verdict.bound = pres.bound
    elif config.use_induction:
        ind = k_induction(
            design.circuit, prop,
            max_k=config.induction_max_k,
            time_limit=time_limit,
            unique_states=config.unique_states,
            cache=cache,
            tracer=tracer if tracer is not NULL_TRACER else None,
        )
        verdict.engine_status = ind.status.value
        if ind.status is InductionStatus.PROVED:
            verdict.status = "proved"
            verdict.proved_by = "kind"
        elif ind.status is InductionStatus.COUNTEREXAMPLE:
            verdict.status = "counterexample"
            verdict.counterexample = ind.counterexample
            verdict.bound = ind.bound
        else:
            # Induction inconclusive: fall back to plain BMC for depth.
            bmc = bounded_model_check(
                design.circuit, prop,
                max_bound=config.max_bound, time_limit=time_limit,
                start_bound=start_bound,
                cache=cache,
                tracer=tracer if tracer is not NULL_TRACER else None,
            )
            if bmc.status is BmcStatus.COUNTEREXAMPLE:
                verdict.status = "counterexample"
                verdict.counterexample = bmc.counterexample
            verdict.bound = bmc.bound
    else:
        bmc = bounded_model_check(
            design.circuit, prop,
            max_bound=config.max_bound, time_limit=time_limit,
            start_bound=start_bound,
            cache=cache,
            tracer=tracer if tracer is not NULL_TRACER else None,
        )
        verdict.engine_status = bmc.status.value
        if bmc.status is BmcStatus.COUNTEREXAMPLE:
            verdict.status = "counterexample"
            verdict.counterexample = bmc.counterexample
        verdict.bound = bmc.bound
    verdict.elapsed = time.monotonic() - started
    return verdict


# ---------------------------------------------------------------------------
# Candidate prediction
# ---------------------------------------------------------------------------

def ladder_siblings(
    circuit,
    scheme: TaintScheme,
    design,
    location: RefinementLocation,
) -> List[TaintScheme]:
    """Schemes a repeat refinement at ``location`` would settle on.

    After the ladder picked option ``o`` at a CELL location, the next
    counterexample that backtraces to the *same* location walks the
    ladder from ``o`` — producing exactly ``scheme + (location -> o')``
    for some later ladder option ``o'``.  This mirrors
    :func:`repro.cegar.refine.apply_refinement`'s walk (including the
    effective-complexity dedup) so the sibling digests match what the
    loop would instrument.  MODULE and REGISTER refinements are
    terminal at their location: no siblings.
    """
    from repro.hdl.circuit import CircuitError

    if location.kind is not LocationKind.CELL:
        return []
    try:
        cell = circuit.producer(circuit.signal(location.name))
    except CircuitError:
        return []
    if cell is None:
        return []
    current = design.applied_options.get(
        location.name, scheme.option_for_cell(location.name))
    tried = {(current.granularity, effective_complexity(cell.op, current))}
    siblings: List[TaintScheme] = []
    for option in refinement_ladder(current):
        effective = effective_complexity(cell.op, option)
        key = (option.granularity, effective)
        if key in tried:
            continue
        tried.add(key)
        sibling = scheme.copy()
        sibling.refine_cell(location.name, TaintOption(option.granularity,
                                                       effective))
        siblings.append(sibling)
    return siblings


def predict_candidates(
    task,
    scheme: TaintScheme,
    design,
    location: Optional[RefinementLocation],
    limit: int,
) -> List[TaintScheme]:
    """The next speculative wave after a refinement settled on ``scheme``.

    The settled scheme itself leads (the lookahead: the cheapest
    surviving option is what the next model-checking call verifies),
    followed by its ladder siblings at the refinement location,
    cheapest first, capped at ``limit``.
    """
    wave = [scheme]
    if location is not None:
        wave.extend(ladder_siblings(task.circuit, scheme, design, location))
    return wave[:max(1, limit)]


# ---------------------------------------------------------------------------
# Worker process entry point
# ---------------------------------------------------------------------------

def _candidate_worker(queue, digest, task, scheme, config, time_limit,
                      seed_entries, traced=False, attempt=0):
    """Run :func:`verify_candidate` in a pool process.

    Solve results stream to the parent as they are produced (through
    :class:`~repro.formal.portfolio._StreamingCache` under the
    ``spec`` engine label), so a cancelled loser's partial work — and
    the memoized portfolio verdict of a completed one — still reaches
    the shared (store-backed) cache.
    """
    import os

    faults = config.faults
    local = _StreamingCache(queue, SPEC_ENGINE, faults=faults,
                            attempt=attempt)
    if seed_entries:
        local.merge_entries(seed_entries)
    baseline = replace(local.stats)
    tracer = Tracer() if traced else None
    try:
        verdict = verify_candidate(
            task, scheme, config, cache=local, tracer=tracer,
            time_limit=time_limit, in_worker=True,
        )
        verdict.source = "speculative"
        stats = local.stats
        stats.hits -= baseline.hits  # report only this worker's traffic
        stats.misses -= baseline.misses
        stats.stores -= baseline.stores
        stats.evictions -= baseline.evictions
        stats.rejected -= baseline.rejected
        msg = {
            "type": "spec-verdict", "digest": digest, "verdict": verdict,
            "entries": local.snapshot_entries(), "cache_stats": stats,
        }
        if tracer is not None:
            msg["trace_events"] = tracer.snapshot_events()
            msg["trace_pid"] = os.getpid()
        if faults is not None:
            delay = faults.verdict_delay(SPEC_ENGINE, attempt)
            if delay > 0:
                time.sleep(delay)
        queue.put(msg)
    except Exception as exc:  # pragma: no cover - shipped as a miss
        queue.put({
            "type": "spec-verdict", "digest": digest, "verdict": None,
            "error": f"{type(exc).__name__}: {exc}",
            "entries": local.snapshot_entries(), "cache_stats": CacheStats(),
        })


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------

@dataclass
class _Slot:
    """One in-flight speculative candidate."""

    digest: str
    scheme: TaintScheme
    state: str = "running"  # running | delayed | done | failed | cancelled
    proc: Any = None
    thread: Any = None
    started: float = 0.0
    kill_at: Optional[float] = None      # backstop past the time budget
    relaunch_at: float = 0.0             # crashed: not before this time
    attempts: int = 0
    retries: int = 0
    time_limit: Optional[float] = None
    dead_since: Optional[float] = None
    job: Optional[Dict[str, Any]] = None  # remote mode submission doc


class SpeculativeScheduler:
    """First-verdict-wins speculation over candidate taint schemes.

    Lifecycle, from the loop's point of view::

        spec = SpeculativeScheduler(task, config, cache, stats, tracer)
        spec.ensure(scheme, limit)        # iteration start: current scheme
        spec.discard(scheme)              # sim prefilter produced the cex
        v = spec.collect(scheme, limit)   # model-check time; None = miss
        spec.advance(wave, limit)         # refinement settled: next wave
        spec.close()                      # loop exit (any path)

    ``advance`` reconciles the in-flight set against the new wave:
    slots whose candidate survives are *promoted* (kept running), the
    rest are cancelled — first-refinement-signal-wins, mirroring the
    per-property portfolio race.  All worker solve traffic merges into
    ``cache`` (losers included), and per-candidate tracer spans are
    adopted onto the parent timeline under the worker's pid track.
    """

    def __init__(self, task, config, cache: Optional[SolveCache],
                 stats, tracer: Optional[Tracer] = None,
                 remote: Optional[str] = None) -> None:
        import multiprocessing

        # The stimulus sampler is a closure (unpicklable) and only the
        # sim prefilter uses it — workers never do.
        self.task = replace(task, stimulus_sampler=None)
        self.config = replace(config, trace=None, solve_cache=None,
                              store_dir=None, speculate=0,
                              speculate_remote=None)
        self.cache = cache
        self.stats = stats
        self.tracer = tracer or NULL_TRACER
        self.remote = remote
        self.jobs = max(1, int(config.speculate))
        self._slots: Dict[str, _Slot] = {}
        self._results: Dict[str, CandidateVerdict] = {}
        self._closed = False
        if remote is None:
            self._ctx = multiprocessing.get_context()
            self._queue = self._ctx.Queue()
        else:
            import threading

            self._ctx = None
            self._queue = None
            self._lock = threading.Lock()
            self._remote_task_doc = self._build_remote_task_doc()

    # -- public API --------------------------------------------------------

    def in_flight(self) -> List[str]:
        """Digests of candidates currently speculated on (for snapshots)."""
        return sorted(d for d, s in self._slots.items()
                      if s.state in ("running", "delayed"))

    def snapshot(self) -> Dict[str, Any]:
        """Checkpointable record of the in-flight speculation."""
        return {
            "n": self.jobs,
            "schemes": [self._slots[d].scheme.copy()
                        for d in self.in_flight()],
        }

    def ensure(self, scheme: TaintScheme,
               time_limit: Optional[float] = None) -> None:
        """Make sure ``scheme`` is being speculated on (iteration start).

        Never cancels other slots — siblings in flight may be the next
        wave's candidates.  At capacity, one non-essential slot is
        evicted: the current scheme is the one candidate certain to be
        needed.
        """
        if self._closed:
            return
        self._drain()
        digest = scheme_digest(scheme)
        if digest in self._results or digest in self._slots:
            return
        if len(self._active()) >= self.jobs:
            victim = next((d for d in reversed(list(self._slots))
                           if self._slots[d].state in ("running", "delayed")),
                          None)
            if victim is None:
                return
            self._cancel(victim)
        self._submit(scheme, digest, time_limit)

    def advance(self, wave: List[TaintScheme],
                time_limit: Optional[float] = None) -> None:
        """Reconcile in-flight speculation against the next wave.

        Keeps (promotes) slots whose candidate is in ``wave``, cancels
        the rest, and submits the missing candidates in wave order
        until ``speculate`` slots are busy.
        """
        if self._closed:
            return
        self._drain()
        self.stats.spec_waves += 1
        wanted = {}
        for scheme in wave[:self.jobs]:
            wanted.setdefault(scheme_digest(scheme), scheme)
        for digest in list(self._slots):
            slot = self._slots[digest]
            if slot.state not in ("running", "delayed"):
                continue
            if digest in wanted:
                self.stats.spec_promoted += 1
            else:
                self._cancel(digest)
        for digest, scheme in wanted.items():
            if len(self._active()) >= self.jobs:
                break
            if digest in self._slots or digest in self._results:
                continue
            self._submit(scheme, digest, time_limit)

    def discard(self, scheme: TaintScheme) -> None:
        """Drop the speculation on ``scheme`` (the prefilter beat it)."""
        if self._closed:
            return
        self._drain()
        digest = scheme_digest(scheme)
        if digest in self._slots and self._slots[digest].state in (
                "running", "delayed"):
            self._cancel(digest)
        self._results.pop(digest, None)

    def collect(self, scheme: TaintScheme) -> Optional[CandidateVerdict]:
        """The loop needs this scheme's verdict now; wait for it.

        Returns the speculative :class:`CandidateVerdict` (a hit), or
        None when the candidate was never speculated on or its worker
        failed unrecoverably (a miss — the caller verifies inline).
        """
        if self._closed:
            return None
        digest = scheme_digest(scheme)
        verdict = self._wait(digest)
        if verdict is not None:
            self.stats.spec_hits += 1
            self.tracer.count("speculate.hits")
        else:
            self.stats.spec_misses += 1
            self.tracer.count("speculate.misses")
        return verdict

    def close(self) -> None:
        """Cancel everything in flight and tear the pool down."""
        if self._closed:
            return
        for digest in list(self._slots):
            if self._slots[digest].state in ("running", "delayed"):
                self._cancel(digest)
        self._drain()
        if self._queue is not None:
            self._queue.close()
            self._queue.cancel_join_thread()
        self._closed = True

    # -- submission --------------------------------------------------------

    def _active(self) -> List[_Slot]:
        return [s for s in self._slots.values()
                if s.state in ("running", "delayed")]

    def _submit(self, scheme: TaintScheme, digest: str,
                time_limit: Optional[float]) -> None:
        slot = _Slot(digest=digest, scheme=scheme.copy(),
                     time_limit=time_limit)
        self._slots[digest] = slot
        self.stats.spec_submitted += 1
        self.tracer.count("speculate.submitted")
        if self.remote is not None:
            self._launch_remote(slot)
        else:
            self._launch(slot)

    def _launch(self, slot: _Slot) -> None:
        seed = self.cache.snapshot_entries() if self.cache is not None else None
        attempt = slot.attempts
        slot.attempts += 1
        proc = self._ctx.Process(
            target=_candidate_worker,
            args=(self._queue, slot.digest, self.task, slot.scheme,
                  self.config, slot.time_limit, seed, self.tracer.enabled,
                  attempt),
            daemon=True,
        )
        proc.start()
        slot.proc = proc
        slot.started = time.monotonic()
        slot.state = "running"
        slot.dead_since = None
        budget = slot.time_limit
        slot.kill_at = None if budget is None else budget + 2.0 + 0.25 * budget

    def _cancel(self, digest: str) -> None:
        slot = self._slots[digest]
        slot.state = "cancelled"
        self.stats.spec_cancelled += 1
        self.tracer.count("speculate.cancelled")
        if slot.proc is not None:
            self._reap(slot)
        # Remote cancellation is advisory: the daemon completes the job
        # and its verdict warms the daemon-side store; we just stop
        # listening (the submission thread is a daemon thread).

    def _reap(self, slot: _Slot) -> None:
        proc = slot.proc
        if proc is None:
            return
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - ignores SIGTERM: escalate
            proc.kill()
            proc.join(timeout=5.0)
        slot.proc = None

    # -- result plumbing ---------------------------------------------------

    def _drain(self, timeout: Optional[float] = None) -> bool:
        """Pump queued worker messages; True when a verdict arrived."""
        if self._queue is None:
            return False
        import queue as queue_mod

        got_verdict = False
        while True:
            try:
                msg = self._queue.get(timeout=timeout) if timeout else \
                    self._queue.get_nowait()
            except queue_mod.Empty:
                return got_verdict
            timeout = None  # only block for the first message
            if msg.get("type") == "entry":
                if self.cache is not None:
                    self.cache.merge_entries(
                        {str(msg["key"]): msg["entry"]})
                continue
            if msg.get("type") == "spec-verdict":
                got_verdict = True
                self._finish(msg)

    def _finish(self, msg: Dict[str, Any]) -> None:
        digest = str(msg["digest"])
        slot = self._slots.get(digest)
        # Losers warm the cache too: merge entries no matter the state.
        if self.cache is not None:
            self.cache.merge_entries(msg.get("entries") or {})
            stats = msg.get("cache_stats")
            if isinstance(stats, CacheStats):
                self.cache.stats.hits += stats.hits
                self.cache.stats.misses += stats.misses
                self.cache.stats.rejected += stats.rejected
        if self.tracer.enabled and msg.get("trace_events"):
            self.tracer.adopt(msg["trace_events"])
            self.tracer.label_track(int(msg["trace_pid"]),
                                    f"{SPEC_ENGINE} worker")
        if slot is None or slot.state == "cancelled":
            return
        verdict = msg.get("verdict")
        if verdict is None:
            # In-worker exception: deterministic, so retrying is
            # pointless — record a miss and let the loop run inline
            # (which reproduces the error if it is real).
            slot.state = "failed"
            self._reap(slot)
            return
        slot.state = "done"
        self._reap(slot)
        self._results[digest] = verdict

    def _supervise(self) -> None:
        """Crash/backstop policing for all running local workers."""
        now = time.monotonic()
        for slot in list(self._slots.values()):
            if slot.state == "delayed":
                if now >= slot.relaunch_at:
                    self._launch(slot)
                continue
            if slot.state != "running" or slot.proc is None:
                continue
            if slot.kill_at is not None and now - slot.started > slot.kill_at:
                # Wedged past its budget plus grace: cut it loose.
                self._reap(slot)
                slot.state = "failed"
                continue
            if not slot.proc.is_alive():
                # Verdict may still be in flight through the queue.
                if slot.dead_since is None:
                    slot.dead_since = now
                elif now - slot.dead_since > 1.0:
                    self._crash(slot)

    def _crash(self, slot: _Slot) -> None:
        proc = slot.proc
        exitcode = proc.exitcode if proc is not None else None
        self._reap(slot)
        slot.dead_since = None
        self.stats.spec_crashes += 1
        self.tracer.count("speculate.worker_crashes")
        if slot.retries < self.config.max_worker_retries:
            backoff = self.config.retry_backoff * (2 ** slot.retries)
            slot.retries += 1
            slot.state = "delayed"
            slot.relaunch_at = time.monotonic() + backoff
            self.stats.spec_retries += 1
            self.tracer.count("speculate.worker_retries")
        else:
            slot.state = "failed"
            self.tracer.count("speculate.worker_crashes_unrecovered")
            _ = exitcode  # recorded via counters; no report object here

    def _wait(self, digest: str) -> Optional[CandidateVerdict]:
        poll = getattr(self.config, "poll_interval", 0.05) or 0.05
        while True:
            if digest in self._results:
                return self._results.pop(digest)
            slot = self._slots.get(digest)
            if slot is None or slot.state in ("cancelled", "failed"):
                return None
            if self.remote is not None:
                time.sleep(poll)
                continue
            self._drain(timeout=poll)
            self._supervise()

    # -- remote mode -------------------------------------------------------

    def _build_remote_task_doc(self) -> Dict[str, Any]:
        from repro.hdl.serialize import circuit_to_dict

        task = self.task
        return {
            "name": task.name,
            "circuit": circuit_to_dict(task.circuit),
            "sources": {"registers": dict(task.sources.registers),
                        "inputs": dict(task.sources.inputs)},
            "sinks": list(task.sinks),
            "clean_assumptions": list(task.clean_assumptions),
            "gated_clean_assumptions": [list(p) for p in
                                        task.gated_clean_assumptions],
            "assumption_outputs": list(task.assumption_outputs),
            "init_assumption_outputs": list(task.init_assumption_outputs),
            "symbolic_registers": sorted(task.symbolic_registers),
            "blackbox_modules": (list(task.blackbox_modules)
                                 if task.blackbox_modules is not None
                                 else None),
            "precise_modules": list(task.precise_modules),
        }

    def _launch_remote(self, slot: _Slot) -> None:
        import threading

        config = self.config
        slot.job = {
            "kind": "candidate",
            "task": self._remote_task_doc,
            "scheme": scheme_to_dict(slot.scheme),
            "config": {
                "engine": config.engine,
                "mc_enabled": config.mc_enabled,
                "use_induction": config.use_induction,
                "max_bound": config.max_bound,
                "induction_max_k": config.induction_max_k,
                "unique_states": config.unique_states,
                "static_prescreen": config.static_prescreen,
                "static_max_frames": config.static_max_frames,
                "jobs": config.jobs,
                "portfolio_engines": list(config.portfolio_engines),
                "pdr_max_frames": config.pdr_max_frames,
                "max_conflicts": config.max_conflicts,
                "certify": config.certify,
                "mc_time_limit": slot.time_limit,
                "max_worker_retries": config.max_worker_retries,
                "retry_backoff": config.retry_backoff,
            },
        }
        slot.started = time.monotonic()
        slot.state = "running"
        thread = threading.Thread(target=self._remote_worker, args=(slot,),
                                  daemon=True)
        slot.thread = thread
        thread.start()

    def _remote_worker(self, slot: _Slot) -> None:
        try:
            from repro.serve.client import connect

            client = connect(self.remote, timeout=slot.time_limit)
            with client:
                reply = client.submit(slot.job, deadline=slot.time_limit)
            verdict = verdict_from_doc(reply.get("result") or {})
            verdict.source = "remote"
        except Exception:
            with self._lock:
                if slot.state == "running":
                    slot.state = "failed"
            return
        with self._lock:
            if slot.state == "running":
                slot.state = "done"
                self._results[slot.digest] = verdict


# ---------------------------------------------------------------------------
# JSON round trip (the `candidate` job kind's result document)
# ---------------------------------------------------------------------------

def verdict_to_doc(verdict: CandidateVerdict) -> Dict[str, Any]:
    """JSON-able form of a verdict (the daemon's result document)."""
    doc: Dict[str, Any] = {
        "digest": verdict.digest,
        "status": verdict.status,
        "bound": verdict.bound,
        "static_bound": verdict.static_bound,
        "proved_by": verdict.proved_by,
        "engine_status": verdict.engine_status,
        "winner": verdict.winner,
        "static_prescreens": verdict.static_prescreens,
        "static_proofs": verdict.static_proofs,
        "static_cex": verdict.static_cex,
        "static_skipped_bounds": verdict.static_skipped_bounds,
        "suspects": list(verdict.suspects),
        "elapsed": round(verdict.elapsed, 3),
        "counterexample": None,
        "portfolio": None,
    }
    cex = verdict.counterexample
    if cex is not None:
        doc["counterexample"] = {
            "length": cex.length,
            "inputs": [dict(frame) for frame in cex.inputs],
            "initial_state": dict(cex.initial_state),
            "bad_signal": cex.bad_signal,
        }
    pres = verdict.portfolio
    if pres is not None:
        doc["portfolio"] = {
            "status": pres.status.value,
            "winner": pres.winner,
            "bound": pres.bound,
            "mode": pres.mode,
            "cache_hit": pres.cache_hit,
            "certificate_ok": pres.certificate_ok,
            "reports": [
                {"engine": r.engine, "status": r.status, "bound": r.bound,
                 "elapsed": round(r.elapsed, 3), "retries": r.retries,
                 "winner": r.winner}
                for r in pres.reports
            ],
        }
    return doc


def verdict_from_doc(doc: Dict[str, Any]) -> CandidateVerdict:
    """Rebuild a :class:`CandidateVerdict` from the daemon's document.

    The portfolio block becomes a summary :class:`PortfolioResult`
    (reports and winner only — certificates stay server-side) so
    ``RefinementStats.record_portfolio`` folds remote candidates the
    same way as local ones.
    """
    verdict = CandidateVerdict(
        digest=str(doc.get("digest", "")),
        status=str(doc.get("status", "bound_reached")),
        bound=int(doc.get("bound", -1)),
        static_bound=int(doc.get("static_bound", -1)),
        proved_by=str(doc.get("proved_by", "")),
        engine_status=str(doc.get("engine_status", "")),
        winner=doc.get("winner"),
        static_prescreens=int(doc.get("static_prescreens", 0)),
        static_proofs=int(doc.get("static_proofs", 0)),
        static_cex=int(doc.get("static_cex", 0)),
        static_skipped_bounds=int(doc.get("static_skipped_bounds", 0)),
        suspects=tuple(doc.get("suspects", ()) or ()),
        elapsed=float(doc.get("elapsed", 0.0)),
    )
    cdoc = doc.get("counterexample")
    if cdoc is not None:
        verdict.counterexample = Counterexample(
            length=int(cdoc["length"]),
            inputs=[dict(frame) for frame in cdoc.get("inputs", ())],
            initial_state=dict(cdoc.get("initial_state", {})),
            bad_signal=str(cdoc.get("bad_signal", "")),
        )
    pdoc = doc.get("portfolio")
    if pdoc is not None:
        verdict.portfolio = PortfolioResult(
            status=PortfolioStatus(pdoc["status"]),
            winner=pdoc.get("winner"),
            bound=int(pdoc.get("bound", -1)),
            mode=str(pdoc.get("mode", "remote")),
            cache_hit=bool(pdoc.get("cache_hit", False)),
            certificate_ok=pdoc.get("certificate_ok"),
            reports=[
                EngineReport(
                    engine=str(r.get("engine", "?")),
                    status=str(r.get("status", "not_run")),
                    bound=int(r.get("bound", -1)),
                    elapsed=float(r.get("elapsed", 0.0)),
                    retries=int(r.get("retries", 0)),
                    winner=bool(r.get("winner", False)),
                )
                for r in pdoc.get("reports", ())
            ],
        )
    return verdict

"""Observable fan-ins (paper Appendix A).

Given a cell and a concrete valuation of its inputs, a *set* of inputs
is observable when changing only those inputs can flip the output; the
observable fan-ins are the union of all *minimal* observable sets.  The
backtracing algorithm only traces back into observable fan-ins — the
paper obtains them from JasperGold's ``why`` command, we compute them
directly from the definition.

:func:`observable_fanins` uses closed forms per operator (exact for the
binary forms our builder emits) with a conservative all-inputs fallback;
:func:`observable_fanins_exact` enumerates the definition and is used to
validate the closed forms in tests.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Sequence, Tuple

from repro.hdl.cells import Cell, CellOp, evaluate_cell


def observable_fanins(cell: Cell, in_values: Sequence[int]) -> FrozenSet[int]:
    """Indices of ``cell.ins`` that belong to some minimal observable set."""
    op = cell.op
    n = len(cell.ins)
    if op is CellOp.CONST:
        return frozenset()
    if n == 1:
        return frozenset({0})
    all_inputs = frozenset(range(n))

    if op in (CellOp.XOR, CellOp.ADD, CellOp.SUB, CellOp.CONCAT, CellOp.EQ, CellOp.NEQ):
        # Every input can flip the output on its own.
        return all_inputs

    if op is CellOp.AND:
        if n != 2:
            singles = [i for i in range(n) if _and_others(cell, in_values, i) != 0]
            return frozenset(singles) if singles else all_inputs
        a, b = in_values
        singles = [i for i, other in ((0, b), (1, a)) if other != 0]
        return frozenset(singles) if singles else all_inputs

    if op is CellOp.OR:
        mask = cell.out.mask
        if n != 2:
            singles = [i for i in range(n) if _or_others(cell, in_values, i) != mask]
            return frozenset(singles) if singles else all_inputs
        a, b = in_values
        singles = [i for i, other in ((0, b), (1, a)) if other != mask]
        return frozenset(singles) if singles else all_inputs

    if op is CellOp.MUX:
        sel, a, b = in_values
        selected = 1 if sel else 2
        unselected = 2 if sel else 1
        if a != b:
            return frozenset({0, selected})
        # a == b: the selector alone cannot flip the output, but the
        # minimal set {sel, unselected} can — so all three are observable.
        return frozenset({0, 1, 2})

    if op is CellOp.ULT:
        a, b = in_values
        max_a = cell.ins[0].mask
        singles = []
        if b > 0:
            singles.append(0)
        if a < max_a:
            singles.append(1)
        return frozenset(singles) if singles else frozenset({0, 1})

    if op is CellOp.ULE:
        a, b = in_values
        max_b = cell.ins[1].mask
        singles = []
        if b < max_b:
            singles.append(0)
        if a > 0:
            singles.append(1)
        return frozenset(singles) if singles else frozenset({0, 1})

    if op in (CellOp.SHL, CellOp.SHR):
        a, sh = in_values
        width = cell.out.width
        singles = []
        if sh < width:
            singles.append(0)
        if a != 0:
            singles.append(1)
        return frozenset(singles) if singles else frozenset({0, 1})

    # Conservative fallback: trace into everything (sound for the
    # backtracing algorithm — observability only prunes work).
    return all_inputs


def _and_others(cell: Cell, in_values: Sequence[int], index: int) -> int:
    acc = cell.out.mask
    for i, v in enumerate(in_values):
        if i != index:
            acc &= v
    return acc


def _or_others(cell: Cell, in_values: Sequence[int], index: int) -> int:
    acc = 0
    for i, v in enumerate(in_values):
        if i != index:
            acc |= v
    return acc


# ---------------------------------------------------------------------------
# Reference implementation of the Appendix A definition (test oracle)
# ---------------------------------------------------------------------------

def _observable(cell: Cell, in_values: Sequence[int], subset: Tuple[int, ...]) -> bool:
    """Exhaustively decide observable(subset, v, F)."""
    baseline = evaluate_cell(cell, list(in_values))
    domains = [range(1 << cell.ins[i].width) for i in subset]
    for assignment in itertools.product(*domains):
        trial = list(in_values)
        for idx, value in zip(subset, assignment):
            trial[idx] = value
        if evaluate_cell(cell, trial) != baseline:
            return True
    return False


def observable_fanins_exact(cell: Cell, in_values: Sequence[int]) -> FrozenSet[int]:
    """Union of minimal observable sets, by exhaustive enumeration.

    Exponential in total input width — only suitable for narrow cells
    (it is the *test oracle* for :func:`observable_fanins`).
    """
    n = len(cell.ins)
    observable_sets: List[Tuple[int, ...]] = []
    for size in range(1, n + 1):
        for subset in itertools.combinations(range(n), size):
            if _observable(cell, in_values, subset):
                observable_sets.append(subset)
    minimal: List[Tuple[int, ...]] = []
    for candidate in observable_sets:
        cand = set(candidate)
        if not any(set(other) < cand for other in observable_sets):
            minimal.append(candidate)
    result: set = set()
    for subset in minimal:
        result.update(subset)
    return frozenset(result)

"""Verification report generation for CEGAR results.

Renders a :class:`~repro.cegar.loop.CegarResult` as a self-contained
Markdown document: outcome, Table-3-style statistics, the refinement
log, the final scheme summarized per module (Table-4 style), and the
overhead against CellIFT (Figure-5 style).  Used by ``python -m repro
verify --report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.taint import cellift_scheme, instrumentation_overhead, scheme_summary


def render_report(result, task=None) -> str:
    """Render a Markdown verification report for a CEGAR result."""
    from repro.cegar.loop import instrument_task

    task = task or result.task
    lines: List[str] = []
    lines.append(f"# Compass verification report: {task.name}")
    lines.append("")
    lines.append(f"- design: `{task.circuit.name}` "
                 f"({len(task.circuit.cells)} cells, "
                 f"{task.circuit.state_bits()} state bits)")
    lines.append(f"- sinks: {', '.join(f'`{s}`' for s in task.sinks)}")
    lines.append(f"- taint sources: "
                 f"{len(task.sources.registers)} registers, "
                 f"{len(task.sources.inputs)} inputs")
    lines.append("")

    lines.append("## Outcome")
    lines.append("")
    status = result.status.value
    if result.secure:
        depth = "unbounded" if status == "proved" else f"up to cycle {result.bound}"
        lines.append(f"**{status.upper()}** — the property holds {depth}.")
    elif status == "real_leak":
        lines.append(f"**REAL LEAK** — witnessed in {result.leak.length} cycles.")
    else:
        lines.append(f"**{status.upper()}**")
    lines.append("")

    stats = result.stats
    lines.append("## Refinement statistics (Table 3 format)")
    lines.append("")
    lines.append("| counterexamples | refinements | t_MC | t_Simu | t_BT | t_Gen |")
    lines.append("|---|---|---|---|---|---|")
    lines.append(
        f"| {stats.counterexamples_eliminated} | {stats.refinements} "
        f"| {stats.t_mc:.2f}s | {stats.t_simu:.2f}s "
        f"| {stats.t_bt:.2f}s | {stats.t_gen:.2f}s |"
    )
    lines.append("")

    if stats.portfolio_calls:
        lines.append("## Verification portfolio")
        lines.append("")
        lines.append(f"{stats.portfolio_calls} model-checking call(s) dispatched "
                     "to the parallel engine portfolio.")
        lines.append("")
        lines.append("| engine | total time | winning verdicts |")
        lines.append("|---|---|---|")
        for engine in sorted(stats.engine_times):
            lines.append(
                f"| {engine} | {stats.engine_times[engine]:.2f}s "
                f"| {stats.engine_wins.get(engine, 0)} |"
            )
        lines.append("")
        if stats.cache is not None:
            cache = stats.cache
            lines.append(
                f"Solve cache: {cache.hits} hits / {cache.misses} misses "
                f"({cache.hit_rate * 100:.0f}% hit rate), "
                f"{cache.stores} stores, {cache.evictions} evictions."
            )
            lines.append("")

    if stats.refinement_log:
        lines.append("## Refinements applied")
        lines.append("")
        for entry in stats.refinement_log:
            lines.append(f"1. {entry}")
        lines.append("")

    design, _prop = instrument_task(task, result.scheme)
    compass = instrumentation_overhead(design)
    cellift = cellift_scheme()
    cellift.module_defaults = dict(result.scheme.module_defaults)
    cellift_design, _ = instrument_task(task, cellift)
    full = instrumentation_overhead(cellift_design)
    lines.append("## Scheme overhead vs CellIFT (Figure 5 format)")
    lines.append("")
    lines.append("| scheme | gate overhead | register-bit overhead |")
    lines.append("|---|---|---|")
    lines.append(f"| CellIFT | {full.gate_overhead * 100:.1f}% "
                 f"| {full.reg_bit_overhead * 100:.1f}% |")
    lines.append(f"| Compass | {compass.gate_overhead * 100:.1f}% "
                 f"| {compass.reg_bit_overhead * 100:.1f}% |")
    lines.append("")

    lines.append("## Final taint scheme per module (Table 4 format)")
    lines.append("")
    lines.append("| module | granularity | taint bits / orig bits | refined / cells |")
    lines.append("|---|---|---|---|")
    for row in scheme_summary(design, depth=2):
        if row.module.startswith("isa") or row.module.startswith("_"):
            continue
        lines.append(
            f"| `{row.module}` | {row.granularity} "
            f"| {row.taint_bits}/{row.orig_bits} "
            f"| {row.refined_cells}/{row.orig_cells} |"
        )
    lines.append("")
    return "\n".join(lines)

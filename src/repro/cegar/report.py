"""Verification report generation for CEGAR results.

Renders a :class:`~repro.cegar.loop.CegarResult` as a self-contained
Markdown document: outcome, Table-3-style statistics, the refinement
log, the final scheme summarized per module (Table-4 style), and the
overhead against CellIFT (Figure-5 style).  Used by ``python -m repro
verify --report``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.taint import cellift_scheme, instrumentation_overhead, scheme_summary

#: Span category -> Table-3 column, for the trace-derived breakdown.
_PHASE_LABELS = {
    "mc": "model checking (t_MC)",
    "simu": "simulation (t_Simu)",
    "bt": "backtracing (t_BT)",
    "gen": "generation (t_Gen)",
    "engine": "engine frames (inside t_MC)",
    "portfolio": "portfolio scheduling",
}


def _render_time_breakdown(tracer) -> List[str]:
    """The "where did the time go" section, from a run's live trace."""
    from repro.obs import summary_from_events

    summary = summary_from_events(tracer.snapshot_events())
    lines: List[str] = []
    lines.append("## Where did the time go")
    lines.append("")
    lines.append(f"{len(summary.spans)} spans on {len(summary.tracks)} "
                 f"track(s), wall {summary.wall:.2f}s.")
    lines.append("")
    cats = summary.category_totals()
    if cats:
        lines.append("| phase | total |")
        lines.append("|---|---|")
        for cat in sorted(cats, key=lambda c: -cats[c]):
            lines.append(f"| {_PHASE_LABELS.get(cat, cat)} | {cats[cat]:.3f}s |")
        lines.append("")
    rows = summary.by_name()
    if rows:
        lines.append("| span | count | total | self |")
        lines.append("|---|---|---|---|")
        for name, count, total, self_t in rows[:10]:
            lines.append(f"| `{name}` | {count} | {total:.3f}s | {self_t:.3f}s |")
        lines.append("")
    if summary.counters:
        lines.append("| counter | total |")
        lines.append("|---|---|")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            shown = int(value) if value == int(value) else value
            lines.append(f"| `{name}` | {shown} |")
        lines.append("")
    return lines


def render_report(result, task=None, tracer=None) -> str:
    """Render a Markdown verification report for a CEGAR result.

    With ``tracer`` (the :class:`~repro.obs.Tracer` the run recorded
    into) the report gains a "where did the time go" section: phase
    totals from the trace, the hottest spans by self-time, and the SAT
    / solve-cache counter totals.
    """
    from repro.cegar.loop import instrument_task

    task = task or result.task
    lines: List[str] = []
    lines.append(f"# Compass verification report: {task.name}")
    lines.append("")
    lines.append(f"- design: `{task.circuit.name}` "
                 f"({len(task.circuit.cells)} cells, "
                 f"{task.circuit.state_bits()} state bits)")
    lines.append(f"- sinks: {', '.join(f'`{s}`' for s in task.sinks)}")
    lines.append(f"- taint sources: "
                 f"{len(task.sources.registers)} registers, "
                 f"{len(task.sources.inputs)} inputs")
    lines.append("")

    lines.append("## Outcome")
    lines.append("")
    status = result.status.value
    if result.secure:
        depth = "unbounded" if status == "proved" else f"up to cycle {result.bound}"
        lines.append(f"**{status.upper()}** — the property holds {depth}.")
    elif status == "real_leak":
        lines.append(f"**REAL LEAK** — witnessed in {result.leak.length} cycles.")
    else:
        lines.append(f"**{status.upper()}**")
    lines.append("")

    stats = result.stats
    lines.append("## Refinement statistics (Table 3 format)")
    lines.append("")
    lines.append("| counterexamples | refinements | t_MC | t_Simu | t_BT | t_Gen |")
    lines.append("|---|---|---|---|---|---|")
    lines.append(
        f"| {stats.counterexamples_eliminated} | {stats.refinements} "
        f"| {stats.t_mc:.2f}s | {stats.t_simu:.2f}s "
        f"| {stats.t_bt:.2f}s | {stats.t_gen:.2f}s |"
    )
    lines.append("")

    if stats.static_prescreens:
        lines.append("## Static pre-screen")
        lines.append("")
        for row in stats.analyze_rows():
            lines.append(f"- {row}")
        lines.append("")

    if stats.portfolio_calls:
        lines.append("## Verification portfolio")
        lines.append("")
        lines.append(f"{stats.portfolio_calls} model-checking call(s) dispatched "
                     "to the parallel engine portfolio.")
        lines.append("")
        lines.append("| engine | total time | winning verdicts |")
        lines.append("|---|---|---|")
        for engine in sorted(stats.engine_times):
            lines.append(
                f"| {engine} | {stats.engine_times[engine]:.2f}s "
                f"| {stats.engine_wins.get(engine, 0)} |"
            )
        lines.append("")
        if stats.certificates_checked:
            lines.append(
                f"Proof certificates: {stats.certificates_checked} "
                f"inductive-invariant certificate(s) validated by the "
                f"independent checker, {stats.certificates_failed} "
                f"rejected."
            )
            lines.append("")
        if stats.cache is not None:
            cache = stats.cache
            rejected = (f", {cache.rejected} rejected on merge"
                        if cache.rejected else "")
            lines.append(
                f"Solve cache: {cache.hits} hits / {cache.misses} misses "
                f"({cache.hit_rate * 100:.0f}% hit rate), "
                f"{cache.stores} stores, {cache.evictions} evictions"
                f"{rejected}."
            )
            lines.append("")

    if stats.spec_submitted:
        lines.append("## Speculative CEGAR")
        lines.append("")
        lines.append(
            f"{stats.spec_waves} candidate wave(s), {stats.spec_submitted} "
            f"speculative verifies submitted; {stats.spec_hits} "
            f"model-checking call(s) answered by a speculative verdict, "
            f"{stats.spec_misses} verified inline, {stats.spec_cancelled} "
            f"loser(s) cancelled, {stats.spec_promoted} slot(s) promoted "
            f"into the next wave."
        )
        if stats.spec_crashes or stats.spec_retries:
            lines.append(
                f"Supervision: {stats.spec_retries} crashed candidate "
                f"worker(s) relaunched, {stats.spec_crashes} crash(es) "
                f"observed."
            )
        lines.append("")

    if (stats.worker_crashes or stats.worker_retries
            or stats.checkpoints_written or stats.resumed_from is not None):
        lines.append("## Robustness")
        lines.append("")
        if stats.resumed_from is not None:
            lines.append(f"- resumed from a checkpoint at iteration "
                         f"{stats.resumed_from}")
        if stats.checkpoints_written:
            lines.append(f"- checkpoints written this run: "
                         f"{stats.checkpoints_written}")
        if stats.worker_retries:
            lines.append(f"- crashed engine workers relaunched: "
                         f"{stats.worker_retries}")
        if stats.worker_crashes:
            lines.append(f"- worker crashes left unrecovered: "
                         f"{stats.worker_crashes}")
        lines.append("")

    if tracer is not None and len(tracer):
        lines.extend(_render_time_breakdown(tracer))

    if stats.refinement_log:
        lines.append("## Refinements applied")
        lines.append("")
        for entry in stats.refinement_log:
            lines.append(f"1. {entry}")
        lines.append("")

    design, _prop = instrument_task(task, result.scheme)
    compass = instrumentation_overhead(design)
    cellift = cellift_scheme()
    cellift.module_defaults = dict(result.scheme.module_defaults)
    cellift_design, _ = instrument_task(task, cellift)
    full = instrumentation_overhead(cellift_design)
    lines.append("## Scheme overhead vs CellIFT (Figure 5 format)")
    lines.append("")
    lines.append("| scheme | gate overhead | register-bit overhead |")
    lines.append("|---|---|---|")
    lines.append(f"| CellIFT | {full.gate_overhead * 100:.1f}% "
                 f"| {full.reg_bit_overhead * 100:.1f}% |")
    lines.append(f"| Compass | {compass.gate_overhead * 100:.1f}% "
                 f"| {compass.reg_bit_overhead * 100:.1f}% |")
    lines.append("")

    lines.append("## Final taint scheme per module (Table 4 format)")
    lines.append("")
    lines.append("| module | granularity | taint bits / orig bits | refined / cells |")
    lines.append("|---|---|---|---|")
    for row in scheme_summary(design, depth=2):
        if row.module.startswith("isa") or row.module.startswith("_"):
            continue
        lines.append(
            f"| `{row.module}` | {row.granularity} "
            f"| {row.taint_bits}/{row.orig_bits} "
            f"| {row.refined_cells}/{row.orig_cells} |"
        )
    lines.append("")
    return "\n".join(lines)

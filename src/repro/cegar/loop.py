"""The Compass CEGAR loop (paper Figure 1 / Figure 3, Section 4).

``run_compass`` drives the whole flow:

1. *Taint initialization* — start from the blackboxing scheme (one
   sticky taint bit per module, naive logic elsewhere).
2. *Model checking and counterexample validation* — k-induction /
   BMC on the instrumented design; counterexamples are validated with
   the exact two-copy bounded check.
3. *Taint refinement* — the backtracing algorithm finds a location;
   options are substituted in the Figure 4 order; the counterexample is
   re-simulated until its spurious taint is blocked; then back to 2.

Statistics mirror Table 3: number of counterexamples eliminated, number
of refinements, and the t_MC / t_Simu / t_BT / t_Gen runtime breakdown.
"""

from __future__ import annotations

import copy
import enum
import hashlib
import json
import random
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.faults import FaultPlan
from repro.hdl.circuit import Circuit
from repro.formal.cache import CacheStats, SolveCache
from repro.formal.counterexample import Counterexample
from repro.formal.portfolio import ENGINE_NAMES
from repro.formal.properties import SafetyProperty
from repro.obs import NULL_TRACER, Tracer
from repro.taint.instrument import InstrumentedDesign, TaintSources, instrument
from repro.taint.space import TaintScheme, blackbox_scheme
from repro.cegar.backtrace import find_refinement_location
from repro.cegar.falsetaint import (
    ExactValidator,
    FastFalseTaintOracle,
    SecretSpec,
    exact_false_taint_check,
)
from repro.cegar.refine import CorrelationImprecisionAlert, apply_refinement


@dataclass(frozen=True)
class TaintVerificationTask:
    """One verification task: design, taint sources, sinks, assumptions.

    Attributes:
        circuit: the design under verification (may already include
            shadow logic such as the ISA reference machine).
        sources: which registers/inputs start tainted (the secret).
        sinks: original signal names that must stay untainted (the
            attacker-observable microarchitectural observation).
        clean_assumptions: signals whose *taint* is assumed 0 at every
            cycle (the contract constraint check: the ISA machine's
            architectural observation must not be tainted).
        gated_clean_assumptions: pairs (condition signal, value signal);
            assumed: never (condition == 1 and value's taint != 0).
        assumption_outputs: 1-bit design signals assumed 1 every cycle
            (environment constraints, e.g. "no external interrupts").
        init_assumption_outputs: 1-bit design signals assumed 1 at the
            initial state only (e.g. "ISA-machine memory equals DUV
            memory at reset").
        symbolic_registers: registers whose initial value is universally
            quantified (program memory, secret and public data, ...).
        blackbox_modules: modules for the initial blackboxing scheme
            (default: every module path in the design).
        precise_modules: module subtrees pinned at CellIFT (bit/full)
            precision and never blackboxed — used for shadow logic such
            as the ISA reference machine.
        stimulus_sampler: optional ``fn(rng, depth) -> (initial_state,
            input_frames)`` producing random environments that satisfy
            the task's *init* assumptions by construction; used by the
            simulation prefilter (the paper's simulation-based testing
            mode) to find counterexamples cheaply before invoking the
            model checker.
    """

    name: str
    circuit: Circuit
    sources: TaintSources
    sinks: Tuple[str, ...]
    clean_assumptions: Tuple[str, ...] = ()
    gated_clean_assumptions: Tuple[Tuple[str, str], ...] = ()
    assumption_outputs: Tuple[str, ...] = ()
    init_assumption_outputs: Tuple[str, ...] = ()
    symbolic_registers: FrozenSet[str] = frozenset()
    blackbox_modules: Optional[Tuple[str, ...]] = None
    precise_modules: Tuple[str, ...] = ()
    stimulus_sampler: Optional[object] = field(default=None, compare=False)

    def initial_scheme(self) -> TaintScheme:
        from repro.taint.space import Complexity, Granularity, TaintOption

        modules = self.blackbox_modules
        if modules is None:
            modules = tuple(
                m for m in sorted(self.circuit.module_paths())
                if not any(m == p or m.startswith(p + ".") for p in self.precise_modules)
            )
        scheme = blackbox_scheme(modules, name=f"{self.name}-blackbox")
        for module in self.precise_modules:
            scheme.module_defaults[module] = TaintOption(Granularity.BIT, Complexity.FULL)
        return scheme

    def secret_registers(self) -> Tuple[str, ...]:
        return tuple(self.sources.registers)


@dataclass
class CegarConfig:
    """Budgets and knobs for the CEGAR loop."""

    max_bound: int = 20                  # BMC depth per model-checking call
    mc_time_limit: Optional[float] = None
    use_induction: bool = True
    induction_max_k: int = 12
    unique_states: bool = True
    max_counterexamples: int = 50
    max_refinements: int = 400
    #: How many alternative refinement locations to try for one stuck
    #: counterexample before declaring correlation imprecision.
    max_location_retries: int = 8
    total_time_limit: Optional[float] = None
    exact_validation: bool = True
    seed: Optional[int] = 0
    #: Simulation prefilter: try random stimuli on the instrumented
    #: design before each model-checking call (paper Section 6.2's
    #: simulation-based testing, used here to accelerate refinement).
    sim_prefilter: bool = True
    sim_trials: int = 48
    sim_depth: int = 12
    #: Refinement-by-testing mode: when False, no model checker is ever
    #: invoked — counterexamples come from random simulation only and the
    #: loop ends when simulation finds nothing (cheap scheme derivation
    #: for the simulation-oriented experiments of Section 6.2).
    mc_enabled: bool = True
    #: Fail fast: run the structural/scheme lint rules over the task's
    #: circuit and initial scheme before the loop starts, raising
    #: :class:`repro.lint.LintError` on errors instead of spending the
    #: model-checking budget on an ill-formed task.
    lint_on_entry: bool = True
    #: Model-checking engine: "sequential" is the classic k-induction /
    #: BMC cascade above; "portfolio" races BMC, PDR and k-induction
    #: concurrently (:mod:`repro.formal.portfolio`) with a shared solve
    #: cache, taking the first definitive verdict; "static" answers
    #: from the SAT-free abstract interpreter only
    #: (:func:`repro.analyze.static_verify`) — inconclusive iterations
    #: end the loop at the ternary bound, like ``mc_enabled=False``.
    engine: str = "sequential"
    #: Run the static analyzer before every model-checking call:
    #: a ``verified``/``violation`` verdict skips SAT entirely, and an
    #: inconclusive one still donates its proven-clean bound so BMC
    #: skips the shallow solves.  Prune counts land in
    #: :class:`RefinementStats` and the ``analyze.*`` tracer counters.
    static_prescreen: bool = False
    #: Frame budget for the static engine's bounded ternary pass.
    static_max_frames: int = 64
    #: Portfolio only: concurrently running engine processes (0 = one
    #: per engine, 1 = in-process sequential portfolio).
    jobs: int = 0
    #: Portfolio only: which engines participate, in launch order.
    portfolio_engines: Tuple[str, ...] = ENGINE_NAMES
    #: Portfolio only: PDR frame limit per model-checking call.
    pdr_max_frames: int = 50
    #: Portfolio only: deterministic per-SAT-call conflict budget.
    max_conflicts: Optional[int] = None
    #: Portfolio only: validate each PDR proof's inductive-invariant
    #: certificate with the independent checker before accepting the
    #: verdict; a rejected certificate downgrades the call to UNKNOWN.
    certify: bool = True
    #: Portfolio only: verdict cache shared across model-checking calls
    #: (and, when injected, across runs).  None builds a fresh cache
    #: per ``run_compass`` call.
    solve_cache: Optional[SolveCache] = None
    #: Portfolio only: capacity of the per-run cache when none is given.
    cache_max_entries: int = 4096
    #: Persistent solve store (:mod:`repro.store`): when set (and no
    #: ``solve_cache`` was injected), ``run_compass`` opens the store
    #: read-write, seeds a store-backed cache from it, and persists
    #: every new verdict, so a rerun answers the already-decided solves
    #: from disk.  A locked or corrupt store degrades gracefully to an
    #: in-memory cache with a warning — persistence is never allowed to
    #: fail a verify.  Deliberately absent from the checkpoint config
    #: digest: where verdicts are stored does not shape the trajectory.
    store_dir: Optional[str] = None
    #: Observability: a :class:`repro.obs.Tracer` that records phase
    #: spans (model-check / simulate / backtrace / generate), engine
    #: frames and SAT counters for this run.  None disables tracing;
    #: the Table-3 statistics are collected either way.
    trace: Optional[Tracer] = None
    #: Supervision (portfolio process mode): how many times a crashed
    #: engine worker is relaunched, and the exponential backoff base.
    max_worker_retries: int = 2
    retry_backoff: float = 0.1
    #: Checkpointing: how many journal entries ``run_compass`` keeps
    #: when a ``checkpoint_dir`` is given (>= 2 so corruption of the
    #: newest entry can fall back to its predecessor).
    checkpoint_keep: int = 4
    #: Deterministic fault-injection plan (:mod:`repro.faults`),
    #: threaded into the portfolio workers and the checkpoint journal.
    #: None (the default) injects nothing; tests use this to prove the
    #: recovery paths.
    faults: Optional[FaultPlan] = None
    #: Speculative CEGAR (:mod:`repro.cegar.speculate`): after each
    #: refinement settles, fan the next N candidate schemes (the
    #: settled lookahead plus its ladder siblings at the refinement
    #: location) out to supervised worker processes; the loop consumes
    #: a worker's verdict only for the exact scheme the sequential
    #: walk reaches, so the result is bit-identical for any N.  Losers
    #: are cancelled on the first refinement signal and their solve
    #: traffic still warms the shared (store-backed) cache.  0 (the
    #: default) disables speculation.  Deliberately absent from the
    #: checkpoint config digest: speculation never shapes the
    #: trajectory, only the wall-clock.
    speculate: int = 0
    #: Dispatch speculative candidates to the job daemon at this unix
    #: socket (``repro verify --speculate N --remote SOCKET``) instead
    #: of local worker processes.  Unreachable daemons degrade to
    #: inline verification, never fail the run.
    speculate_remote: Optional[str] = None


@dataclass
class RefinementStats:
    """Table 3 statistics."""

    counterexamples_eliminated: int = 0
    refinements: int = 0
    t_mc: float = 0.0
    t_simu: float = 0.0
    t_bt: float = 0.0
    t_gen: float = 0.0
    refinement_log: List[str] = field(default_factory=list)
    #: The spurious counterexamples the loop eliminated, kept for the
    #: unnecessary-refinement pruning pass (paper Section 6.5).
    eliminated: List[Counterexample] = field(default_factory=list)
    #: Portfolio observability: cumulative wall-clock per engine, how
    #: often each engine produced the winning verdict, number of
    #: portfolio invocations, and the solve-cache counters.
    engine_times: Dict[str, float] = field(default_factory=dict)
    engine_wins: Dict[str, int] = field(default_factory=dict)
    portfolio_calls: int = 0
    cache: Optional[CacheStats] = None
    #: Robustness observability: supervised worker relaunches and
    #: crashes seen by the portfolio scheduler, checkpoints written,
    #: and — on a resumed run — the iteration the journal restored.
    worker_crashes: int = 0
    worker_retries: int = 0
    checkpoints_written: int = 0
    resumed_from: Optional[int] = None
    #: Static pre-screen observability: analyzer invocations, how many
    #: ended the iteration without SAT (proof or definite violation),
    #: and how many shallow BMC solves its bounds let the solver skip.
    static_prescreens: int = 0
    static_proofs: int = 0
    static_cex: int = 0
    static_skipped_bounds: int = 0
    #: Proof-certificate observability: how many PDR invariant
    #: certificates the independent checker validated, and how many it
    #: rejected (each rejection downgraded its call to UNKNOWN).
    certificates_checked: int = 0
    certificates_failed: int = 0
    #: Persistent-store observability: a snapshot of the
    #: :class:`repro.store.StoreStats` counters when the run used a
    #: ``store_dir`` (entries loaded/persisted, recovery events, hits
    #: served from disk).  None when no store was attached.
    store: Optional[object] = None
    #: Speculation observability (``speculate > 0``): candidate waves
    #: launched, workers submitted, model-checking calls answered by a
    #: speculative verdict (hits) vs verified inline (misses), losers
    #: cancelled, slots promoted into the next wave, and supervised
    #: worker crashes/retries at the speculation level.
    spec_waves: int = 0
    spec_submitted: int = 0
    spec_hits: int = 0
    spec_misses: int = 0
    spec_cancelled: int = 0
    spec_promoted: int = 0
    spec_crashes: int = 0
    spec_retries: int = 0

    @property
    def total(self) -> float:
        return self.t_mc + self.t_simu + self.t_bt + self.t_gen

    def row(self, name: str) -> str:
        return (
            f"{name:<12} CEX={self.counterexamples_eliminated:<3} "
            f"refinements={self.refinements:<4} "
            f"t_MC={self.t_mc:6.2f}s t_Simu={self.t_simu:6.2f}s "
            f"t_BT={self.t_bt:6.2f}s t_Gen={self.t_gen:6.2f}s"
        )

    def record_portfolio(self, result) -> None:
        """Fold one :class:`PortfolioResult` into the counters."""
        self.portfolio_calls += 1
        for report in result.reports:
            self.engine_times[report.engine] = (
                self.engine_times.get(report.engine, 0.0) + report.elapsed
            )
            self.worker_retries += report.retries
            if report.status == "crashed":
                self.worker_crashes += 1
        if result.winner is not None:
            self.engine_wins[result.winner] = (
                self.engine_wins.get(result.winner, 0) + 1
            )
        if result.certificate_ok is not None:
            self.certificates_checked += 1
            if not result.certificate_ok:
                self.certificates_failed += 1

    def portfolio_rows(self) -> List[str]:
        """Human-readable portfolio/cache summary (empty when unused)."""
        if not self.portfolio_calls:
            return []
        engines = " ".join(
            f"{name}={self.engine_times.get(name, 0.0):.2f}s"
            f"(+{self.engine_wins.get(name, 0)} wins)"
            for name in sorted(self.engine_times)
        )
        rows = [f"portfolio: {self.portfolio_calls} calls  {engines}"]
        if self.certificates_checked:
            rows.append(f"certificates: {self.certificates_checked} checked, "
                        f"{self.certificates_failed} rejected")
        if self.worker_retries or self.worker_crashes:
            rows.append(f"supervision: {self.worker_retries} worker "
                        f"retries, {self.worker_crashes} unrecovered crashes")
        if self.cache is not None:
            rows.append(self.cache.row())
        return rows

    def analyze_rows(self) -> List[str]:
        """Static pre-screen summary lines (empty when unused)."""
        if not self.static_prescreens:
            return []
        return [
            f"static pre-screen: {self.static_prescreens} runs, "
            f"{self.static_proofs} proofs, {self.static_cex} definite "
            f"violations, {self.static_skipped_bounds} SAT bounds skipped"
        ]

    def speculation_rows(self) -> List[str]:
        """Speculative-CEGAR summary lines (empty when unused)."""
        if not self.spec_submitted:
            return []
        rows = [
            f"speculation: {self.spec_waves} waves, "
            f"{self.spec_submitted} candidates submitted, "
            f"{self.spec_hits} hits / {self.spec_misses} misses, "
            f"{self.spec_cancelled} cancelled, "
            f"{self.spec_promoted} promoted"
        ]
        if self.spec_crashes or self.spec_retries:
            rows.append(f"speculation supervision: {self.spec_retries} "
                        f"worker retries, {self.spec_crashes} crashes")
        return rows

    def robustness_rows(self) -> List[str]:
        """Checkpoint/resume summary lines (empty when unused)."""
        rows = []
        if self.resumed_from is not None:
            rows.append(f"resumed from checkpoint at iteration "
                        f"{self.resumed_from}")
        if self.checkpoints_written:
            rows.append(f"checkpoints written: {self.checkpoints_written}")
        if self.store is not None:
            rows.append(self.store.row())
        return rows


class CegarStatus(enum.Enum):
    PROVED = "proved"                    # unbounded proof
    BOUND_REACHED = "bound_reached"      # bounded proof up to `bound`
    REAL_LEAK = "real_leak"              # valid counterexample
    CORRELATION_ALERT = "correlation_alert"
    BUDGET_EXHAUSTED = "budget_exhausted"


@dataclass
class CegarResult:
    status: CegarStatus
    task: TaintVerificationTask
    scheme: TaintScheme
    design: InstrumentedDesign
    prop: SafetyProperty
    stats: RefinementStats
    bound: int = -1
    leak: Optional[Counterexample] = None
    alert: Optional[CorrelationImprecisionAlert] = None
    verify_time: float = 0.0             # t_veri: final model-checking time

    @property
    def secure(self) -> bool:
        return self.status in (CegarStatus.PROVED, CegarStatus.BOUND_REACHED)


def instrument_task(
    task: TaintVerificationTask, scheme: TaintScheme
) -> Tuple[InstrumentedDesign, SafetyProperty]:
    """Instrument the task's design and build the safety property."""
    design = instrument(task.circuit, scheme, task.sources)
    bad = design.add_taint_monitor(task.sinks, out_name="__compass_bad")
    assumptions: List[str] = list(task.assumption_outputs)
    if task.clean_assumptions:
        assumptions.append(
            design.add_zero_taint_monitor(task.clean_assumptions, out_name="__compass_clean")
        )
    if task.gated_clean_assumptions:
        assumptions.append(
            design.add_gated_clean_monitor(
                task.gated_clean_assumptions, out_name="__compass_gated_clean"
            )
        )
    prop = SafetyProperty(
        name=task.name,
        bad=bad,
        assumptions=tuple(assumptions),
        init_assumptions=tuple(task.init_assumption_outputs),
        symbolic_registers=frozenset(task.symbolic_registers),
    )
    return design, prop


def _tainted_sink(
    design: InstrumentedDesign, waveform, sinks: Sequence[str], cycle: int
) -> Optional[str]:
    for sink in sinks:
        taint_name = design.taint_name.get(sink)
        if taint_name and waveform.value(taint_name, cycle) != 0:
            return sink
    return None


def simulate_for_counterexample(
    task: TaintVerificationTask,
    design: InstrumentedDesign,
    prop: SafetyProperty,
    trials: int,
    depth: int,
    rng: random.Random,
) -> Optional[Counterexample]:
    """Random-stimulus search for a property violation (sim prefilter).

    Runs the instrumented design on random environments; a trial yields
    a counterexample when the ``bad`` signal fires in a cycle where all
    per-cycle assumptions held so far.  Environments come from the
    task's ``stimulus_sampler`` when provided (which guarantees the
    init assumptions hold); otherwise symbolic registers and inputs are
    sampled uniformly and trials violating init assumptions are skipped.
    """
    from repro.sim.simulator import Simulator

    circuit = design.circuit
    input_names = [sig.name for sig in circuit.inputs]
    reg_widths = {reg.q.name: reg.q.width for reg in circuit.registers}
    symbolic = [name for name in sorted(task.symbolic_registers) if name in reg_widths]

    best: Optional[Counterexample] = None
    for _ in range(trials):
        if best is not None and best.length <= 3:
            break  # shallow enough; deeper search will not beat it much
        if task.stimulus_sampler is not None:
            init, frames = task.stimulus_sampler(rng, depth)
            frames = [
                {name: frame.get(name, rng.getrandbits(circuit.signal(name).width))
                 for name in input_names}
                for frame in frames
            ]
        else:
            init = {name: rng.getrandbits(reg_widths[name]) for name in symbolic}
            frames = [
                {name: rng.getrandbits(circuit.signal(name).width)
                 for name in input_names}
                for _ in range(depth)
            ]
        sim = Simulator(circuit, initial_state=init)
        horizon = len(frames) if best is None else min(len(frames), best.length - 1)
        for t, frame in enumerate(frames[:horizon]):
            sim.step(frame)
            if t == 0 and any(sim.peek(n) == 0 for n in prop.init_assumptions):
                break
            if any(sim.peek(name) == 0 for name in prop.assumptions):
                break
            if sim.peek(prop.bad):
                best = Counterexample(
                    length=t + 1,
                    inputs=[dict(f) for f in frames[:t + 1]],
                    initial_state=dict(init),
                    bad_signal=prop.bad,
                )
                break
    return best


def _config_digest(task: TaintVerificationTask, config: CegarConfig) -> str:
    """Fingerprint of the knobs that shape a run's trajectory.

    Stored in every checkpoint; a resume under different knobs would
    silently diverge from the interrupted run, so it is rejected.
    Budget-only knobs (wall-clock limits) and observability knobs are
    deliberately excluded — resuming with a fresh time budget is the
    whole point.
    """
    doc = {
        "task": task.name,
        "engine": config.engine,
        "max_bound": config.max_bound,
        "use_induction": config.use_induction,
        "induction_max_k": config.induction_max_k,
        "unique_states": config.unique_states,
        "max_counterexamples": config.max_counterexamples,
        "max_refinements": config.max_refinements,
        "max_location_retries": config.max_location_retries,
        "exact_validation": config.exact_validation,
        "seed": config.seed,
        "sim_prefilter": config.sim_prefilter,
        "sim_trials": config.sim_trials,
        "sim_depth": config.sim_depth,
        "mc_enabled": config.mc_enabled,
        "portfolio_engines": list(config.portfolio_engines),
        "pdr_max_frames": config.pdr_max_frames,
        "max_conflicts": config.max_conflicts,
        "static_prescreen": config.static_prescreen,
        "static_max_frames": config.static_max_frames,
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    ).hexdigest()


def run_compass(
    task: TaintVerificationTask,
    config: Optional[CegarConfig] = None,
    initial_scheme: Optional[TaintScheme] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> CegarResult:
    """Run the full Compass CEGAR loop on a verification task.

    When ``config.store_dir`` is set (and no explicit ``solve_cache``
    was injected), the persistent solve store at that directory backs
    the run's cache: verdicts decided by earlier runs are answered from
    disk and every new verdict is persisted for the next run.  Store
    trouble — held by a live process, unreadable format, full disk —
    degrades to an in-memory cache with a warning; it never fails the
    verify.  ``result.stats.store`` carries the store counters.
    """
    config = config or CegarConfig()
    if config.store_dir is None or config.solve_cache is not None:
        return _run_compass_inner(task, config, initial_scheme,
                                  checkpoint_dir, resume)
    from repro.store import SolveStore, StoreError, StoreLockedError

    try:
        store = SolveStore(config.store_dir, faults=config.faults)
    except (StoreLockedError, StoreError, OSError) as exc:
        warnings.warn(
            f"solve store {config.store_dir!r} unavailable ({exc}); "
            "running with an in-memory cache instead",
            stacklevel=2,
        )
        return _run_compass_inner(task, config, initial_scheme,
                                  checkpoint_dir, resume)
    try:
        run_config = replace(
            config, solve_cache=store.cache(config.cache_max_entries))
        result = _run_compass_inner(task, run_config, initial_scheme,
                                    checkpoint_dir, resume)
    finally:
        store.close()
    # Snapshot after close so the flush/compaction counters are final.
    result.stats.store = replace(store.stats)
    return result


def _run_compass_inner(
    task: TaintVerificationTask,
    config: Optional[CegarConfig] = None,
    initial_scheme: Optional[TaintScheme] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> CegarResult:
    """The store-free CEGAR loop body (see :func:`run_compass`).

    Args:
        task: the verification task.
        config: budgets and knobs.
        initial_scheme: starting scheme (default: the task's blackbox
            scheme).
        checkpoint_dir: when given, journal the loop state after every
            completed iteration into this directory (atomic,
            checksummed entries — see :mod:`repro.cegar.checkpoint`)
            so a killed run can be resumed.
        resume: restore the newest intact checkpoint from
            ``checkpoint_dir`` and continue exactly where the
            interrupted run stopped — same scheme, same iteration
            counter, same RNG trajectory, with the journaled solve
            cache answering the already-decided questions.  An empty
            journal falls through to a fresh run.
    """
    from repro.cegar.checkpoint import (
        CegarCheckpoint,
        CheckpointError,
        CheckpointJournal,
        FORMAT_VERSION,
    )

    config = config or CegarConfig()
    if config.engine not in ("sequential", "portfolio", "static"):
        raise ValueError(
            f"unknown CEGAR engine {config.engine!r} "
            "(expected 'sequential', 'portfolio' or 'static')"
        )
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True needs a checkpoint_dir")
    digest = _config_digest(task, config)
    if config.seed is not None:
        rng = random.Random(config.seed)
    else:
        # seed=None must still be reproducible — a speculative worker
        # and the sequential walk have to draw the same trajectory, and
        # a resumed run replays the journaled rng state.  Derive the
        # seed from the config digest instead of the old unseeded
        # ``random.Random()`` fallback.
        rng = random.Random(int(digest[:16], 16))
    tracer = config.trace or NULL_TRACER

    journal: Optional[CheckpointJournal] = None
    restored: Optional[CegarCheckpoint] = None
    if checkpoint_dir is not None:
        journal = CheckpointJournal(checkpoint_dir, keep=config.checkpoint_keep,
                                    faults=config.faults)
        if resume:
            restored, skipped = journal.latest_with_diagnostics()
            for message in skipped:
                tracer.count("cegar.checkpoint_entries_rejected")
                warnings.warn(f"checkpoint fallback: skipped {message}",
                              stacklevel=2)
            if restored is not None and restored.config_digest != digest:
                raise CheckpointError(
                    "checkpoint was written under a different configuration; "
                    "refusing to resume (delete the journal or rerun with "
                    "the original knobs)"
                )

    stats = RefinementStats()
    solve_cache: Optional[SolveCache] = None
    if (config.engine == "portfolio" or journal is not None
            or config.solve_cache is not None):
        # Checkpointed runs always keep a solve cache — journaled with
        # every entry, it is what makes a resume skip the already-
        # decided solves even under the sequential engine.  An injected
        # cache (store-backed or cross-run) is honored on every engine.
        # NOT `config.solve_cache or ...`: SolveCache has __len__, so an
        # injected-but-still-empty cache is falsy and would silently be
        # replaced by a fresh one (dropping store write-through).
        solve_cache = (config.solve_cache if config.solve_cache is not None
                       else SolveCache(config.cache_max_entries))
        # Shared live counters: with an injected cache these accumulate
        # across runs, which is what cross-run observability wants.
        stats.cache = solve_cache.stats
    scheme = (initial_scheme or task.initial_scheme()).copy(name=f"{task.name}-compass")
    start_iteration = 0
    last_bound = -1
    pruned_candidates: Set[str] = set()
    if restored is not None:
        scheme = restored.scheme
        stats = restored.stats
        stats.resumed_from = restored.iteration
        start_iteration = restored.iteration
        last_bound = restored.last_bound
        pruned_candidates = set(restored.pruned_candidates)
        if rng is not None and restored.rng_state is not None:
            rng.setstate(restored.rng_state)
        if solve_cache is not None:
            # Validating merge: entries corrupted on disk are counted
            # in stats.rejected and dropped, never replayed.
            solve_cache.merge_entries(restored.cache_entries)
            stats.cache = solve_cache.stats
        tracer.count("cegar.resumes")
    restored_speculation = (getattr(restored, "speculation", None)
                            if restored is not None else None)
    started = time.monotonic()

    speculator = None
    if config.speculate > 0 and config.mc_enabled and config.engine != "static":
        from repro.cegar.speculate import SpeculativeScheduler

        speculator = SpeculativeScheduler(
            task, config, solve_cache, stats, tracer=config.trace,
            remote=config.speculate_remote,
        )

    def write_checkpoint(next_iteration: int) -> None:
        if journal is None:
            return
        snapshot = copy.deepcopy(stats)
        snapshot.cache = (replace(solve_cache.stats)
                          if solve_cache is not None else None)
        journal.append(CegarCheckpoint(
            version=FORMAT_VERSION,
            task_name=task.name,
            config_digest=digest,
            iteration=next_iteration,
            scheme=scheme.copy(),
            stats=snapshot,
            last_bound=last_bound,
            rng_state=rng.getstate() if rng is not None else None,
            cache_entries=(solve_cache.snapshot_entries()
                           if solve_cache is not None else {}),
            pruned_candidates=set(pruned_candidates),
            speculation=(speculator.snapshot()
                         if speculator is not None else None),
        ))
        stats.checkpoints_written += 1
        tracer.count("cegar.checkpoints")

    def out_of_time() -> bool:
        return (
            config.total_time_limit is not None
            and time.monotonic() - started > config.total_time_limit
        )

    def mc_limit() -> Optional[float]:
        """``mc_time_limit`` clamped to the remaining overall budget.

        A per-candidate verify (speculative or inline) must never
        outlive the loop's own deadline.
        """
        limit = config.mc_time_limit
        if config.total_time_limit is not None:
            remaining = max(
                0.0, config.total_time_limit - (time.monotonic() - started))
            limit = remaining if limit is None else min(limit, remaining)
        return limit

    if config.lint_on_entry:
        from repro.lint import LintConfig, LintError, lint

        report = lint(
            task.circuit, scheme,
            config=LintConfig(semantic=False),
            categories=["structural", "scheme"],
        )
        if not report.ok:
            raise LintError(report)

    from repro.cegar.speculate import predict_candidates, verify_candidate

    try:
        with tracer.span("cegar.instrument", cat="gen") as sp:
            design, prop = instrument_task(task, scheme)
        stats.t_gen += sp.elapsed

        validator: Optional[ExactValidator] = None
        if config.exact_validation:
            with tracer.span("cegar.validator-init", cat="mc") as sp:
                validator = ExactValidator(
                    task.circuit, task.secret_registers(), task.sinks,
                    init_assumption_outputs=task.init_assumption_outputs,
                )
            stats.t_mc += sp.elapsed

        if journal is not None and restored is None:
            # Entry 0: even a run killed inside its first iteration can be
            # resumed (from the initial scheme, with an empty cache).
            write_checkpoint(start_iteration)

        if speculator is not None and restored_speculation:
            # Re-prime the wave the interrupted run had in flight so a
            # resume replays the same speculative overlap.
            speculator.advance(list(restored_speculation.get("schemes", ())),
                               mc_limit())

        verify_time = 0.0
        for iteration in range(start_iteration, config.max_counterexamples + 1):
            # ---- Step 2: model checking -------------------------------
            if speculator is not None:
                # The current scheme is the one candidate certain to be
                # verified: make sure its worker runs while the sim
                # prefilter searches (the prefilter never solves, so
                # the worker sees the same cache the inline call would).
                speculator.ensure(scheme, mc_limit())
            cex: Optional[Counterexample] = None
            if config.sim_prefilter:
                with tracer.span("cegar.sim-prefilter", cat="simu",
                                 iteration=iteration) as sp:
                    cex = simulate_for_counterexample(
                        task, design, prop, config.sim_trials,
                        config.sim_depth, rng,
                    )
                    sp.set(hit=cex is not None)
                stats.t_simu += sp.elapsed
            static_suspects: Tuple[str, ...] = ()
            with tracer.span("cegar.model-check", cat="mc",
                             iteration=iteration,
                             engine=config.engine) as mc_span:
                verdict = None
                if cex is not None:
                    # First refinement signal wins: the prefilter beat
                    # this scheme's speculative verify; drop the loser
                    # (its streamed solves stay in the cache).
                    if speculator is not None:
                        speculator.discard(scheme)
                else:
                    if speculator is not None:
                        verdict = speculator.collect(scheme)
                    if verdict is None:
                        verdict = verify_candidate(
                            task, scheme, config, cache=solve_cache,
                            tracer=tracer, design=design, prop=prop,
                            time_limit=mc_limit(), iteration=iteration,
                        )
                if verdict is not None:
                    stats.static_prescreens += verdict.static_prescreens
                    stats.static_proofs += verdict.static_proofs
                    stats.static_cex += verdict.static_cex
                    stats.static_skipped_bounds += verdict.static_skipped_bounds
                    static_suspects = verdict.suspects
                    last_bound = max(last_bound, verdict.static_bound)
                    if verdict.portfolio is not None:
                        stats.record_portfolio(verdict.portfolio)
                    if verdict.engine_status:
                        if verdict.portfolio is not None:
                            mc_span.set(status=verdict.engine_status,
                                        winner=verdict.winner)
                        else:
                            mc_span.set(status=verdict.engine_status)
                    if verdict.source != "inline":
                        mc_span.set(speculative=verdict.source)
                    if verdict.status == "proved":
                        verify_time = mc_span.elapsed
                        stats.t_mc += verify_time
                        # Terminal checkpoint: a resume re-runs this
                        # iteration and the restored cache answers the
                        # proof instantly.
                        write_checkpoint(iteration)
                        return CegarResult(CegarStatus.PROVED, task, scheme,
                                           design, prop, stats, bound=-1,
                                           verify_time=verify_time)
                    last_bound = max(last_bound, verdict.bound)
                    if verdict.status == "counterexample":
                        cex = verdict.counterexample
            verify_time = mc_span.elapsed
            stats.t_mc += verify_time

            if cex is None:
                write_checkpoint(iteration)
                return CegarResult(CegarStatus.BOUND_REACHED, task, scheme,
                                   design, prop, stats, bound=last_bound,
                                   verify_time=verify_time)

            # ---- Counterexample validation ----------------------------
            with tracer.span("cegar.replay", cat="simu",
                             iteration=iteration) as sp:
                taint_wf = cex.replay(design.circuit)
            stats.t_simu += sp.elapsed
            final_cycle = taint_wf.length - 1
            sink = _tainted_sink(design, taint_wf, task.sinks, final_cycle)
            if sink is None:
                raise RuntimeError(
                    "model checker produced a trace with no tainted sink")

            if config.exact_validation:
                with tracer.span("cegar.validate", cat="mc",
                                 iteration=iteration, sink=sink) as sp:
                    spurious = validator.is_falsely_tainted(
                        cex, sink, time_limit=mc_limit(),
                    )
                    sp.set(spurious=spurious)
                stats.t_mc += sp.elapsed
            else:
                with tracer.span("cegar.validate-fast", cat="simu",
                                 iteration=iteration, sink=sink) as sp:
                    quick = FastFalseTaintOracle(
                        task.circuit, cex, SecretSpec.from_sources(task.sources)
                    )
                    spurious = quick.is_falsely_tainted(sink, final_cycle)
                    sp.set(spurious=spurious)
                stats.t_simu += sp.elapsed
            if not spurious:
                write_checkpoint(iteration)
                return CegarResult(CegarStatus.REAL_LEAK, task, scheme, design,
                                   prop, stats, bound=last_bound, leak=cex,
                                   verify_time=verify_time)

            # ---- Step 3: iterative refinement (Figure 3) ---------------
            with tracer.span("cegar.oracle-build", cat="simu",
                             iteration=iteration) as sp:
                oracle = FastFalseTaintOracle(
                    task.circuit, cex, SecretSpec.from_sources(task.sources)
                )
            stats.t_simu += sp.elapsed
            failed_locations: set = set()
            while _tainted_sink(design, taint_wf, task.sinks,
                                final_cycle) is not None:
                if stats.refinements >= config.max_refinements or out_of_time():
                    return CegarResult(CegarStatus.BUDGET_EXHAUSTED, task,
                                       scheme, design, prop, stats,
                                       bound=last_bound)
                sink = _tainted_sink(design, taint_wf, task.sinks, final_cycle)
                outcome = None
                alert = None
                for _attempt in range(config.max_location_retries):
                    with tracer.span("cegar.backtrace", cat="bt",
                                     iteration=iteration, sink=sink) as sp:
                        location = find_refinement_location(
                            design, taint_wf, oracle, sink, cycle=final_cycle,
                            rng=rng, excluded=failed_locations,
                            hints=static_suspects,
                        )
                        sp.set(location=location.name)
                    stats.t_bt += sp.elapsed
                    try:
                        outcome = apply_refinement(
                            task.circuit, task.sources, scheme, design,
                            location, cex,
                        )
                        break
                    except CorrelationImprecisionAlert as caught:
                        # The ladder is exhausted here; the fast test may
                        # have misjudged an upstream signal, so retry the
                        # trace with this location excluded before giving up.
                        alert = caught
                        failed_locations.add(location.name)
                if outcome is None:
                    return CegarResult(CegarStatus.CORRELATION_ALERT, task,
                                       scheme, design, prop, stats,
                                       bound=last_bound, alert=alert)
                stats.t_gen += outcome.gen_time
                stats.t_simu += outcome.sim_time
                if tracer.enabled:
                    # The refinement machinery measures its own generate /
                    # simulate split; fold it into the trace as backdated
                    # spans so category totals keep matching the stats.
                    tracer.add_span("cegar.refine-gen", "gen",
                                    outcome.gen_time, iteration=iteration,
                                    location=location.name)
                    tracer.add_span("cegar.refine-sim", "simu",
                                    outcome.sim_time, iteration=iteration,
                                    location=location.name)
                    tracer.count("cegar.refinements")
                stats.refinements += 1
                stats.refinement_log.append(f"{location}: {outcome.description}")
                scheme = outcome.scheme
                design, prop = instrument_task(task, scheme)
                with tracer.span("cegar.replay", cat="simu",
                                 iteration=iteration) as sp:
                    taint_wf = cex.replay(design.circuit)
                stats.t_simu += sp.elapsed
            stats.counterexamples_eliminated += 1
            stats.eliminated.append(cex)
            tracer.count("cegar.counterexamples_eliminated")
            pruned_candidates |= failed_locations
            if speculator is not None:
                # Refinement settled: fan out the next wave — the settled
                # scheme (the lookahead the next model-checking call is
                # certain to need) plus its ladder siblings at the last
                # refinement location.  Slots already computing a wave
                # candidate are promoted; the rest are cancelled.
                speculator.advance(
                    predict_candidates(task, scheme, design, location,
                                       config.speculate),
                    mc_limit(),
                )
            # Iteration complete (counterexample eliminated, scheme
            # stable): journal the state — including the in-flight
            # speculation — so a crash from here on resumes at k + 1.
            write_checkpoint(iteration + 1)
            if out_of_time():
                return CegarResult(CegarStatus.BUDGET_EXHAUSTED, task, scheme,
                                   design, prop, stats, bound=last_bound)
        return CegarResult(CegarStatus.BUDGET_EXHAUSTED, task, scheme, design,
                           prop, stats, bound=last_bound)
    finally:
        if speculator is not None:
            speculator.close()

"""Counterexample-guided taint refinement (paper Sections 4-5).

The CEGAR loop starts from the coarse blackboxing scheme, model checks
the instrumented design, validates counterexamples with an exact
two-copy bounded check, locates imprecision with the backward tracing
algorithm (Algorithm 1, with the fast false-taint test and the
observable-fan-in restriction), and refines the scheme along the
Figure 4 option ladder until the property is proved, a real leak is
found, or the budget runs out.
"""

from repro.cegar.observability import observable_fanins, observable_fanins_exact
from repro.cegar.falsetaint import FastFalseTaintOracle, exact_false_taint_check
from repro.cegar.backtrace import (
    RefinementLocation,
    LocationKind,
    find_refinement_location,
)
from repro.cegar.refine import (
    CorrelationImprecisionAlert,
    apply_refinement,
)
from repro.cegar.loop import (
    CegarConfig,
    CegarResult,
    CegarStatus,
    RefinementStats,
    TaintVerificationTask,
    run_compass,
)
from repro.cegar.checkpoint import (
    CegarCheckpoint,
    CheckpointError,
    CheckpointJournal,
)
from repro.cegar.speculate import (
    CandidateVerdict,
    SpeculativeScheduler,
    predict_candidates,
    scheme_digest,
    verify_candidate,
)
from repro.cegar.prune import PruneReport, prune_refinements

__all__ = [
    "observable_fanins",
    "observable_fanins_exact",
    "FastFalseTaintOracle",
    "exact_false_taint_check",
    "RefinementLocation",
    "LocationKind",
    "find_refinement_location",
    "CorrelationImprecisionAlert",
    "apply_refinement",
    "CegarConfig",
    "CegarResult",
    "CegarStatus",
    "RefinementStats",
    "TaintVerificationTask",
    "run_compass",
    "CegarCheckpoint",
    "CheckpointError",
    "CheckpointJournal",
    "CandidateVerdict",
    "SpeculativeScheduler",
    "predict_candidates",
    "scheme_digest",
    "verify_candidate",
    "PruneReport",
    "prune_refinements",
]

"""Pruning unnecessary refinements (the paper's Section 6.5 future work).

The CEGAR loop's early refinements cut counterexamples close to the
sink; once later refinements cut the same flows closer to the source,
the early cuts can become redundant (the paper's CSR / MulDiv
examples).  This pass tries to *undo* refinements one at a time, in
reverse application order, keeping an undo whenever every eliminated
counterexample remains blocked (its sinks stay untainted on replay).

The pruned scheme is guaranteed to block the recorded counterexamples
but — like any scheme — may admit new spurious ones, so callers should
re-verify afterwards (``run_compass(..., initial_scheme=pruned)`` picks
up where pruning left off and will re-refine if needed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.formal.counterexample import Counterexample
from repro.taint.instrument import InstrumentedDesign, TaintSources, instrument
from repro.taint.space import TaintScheme
from repro.cegar.loop import TaintVerificationTask, _tainted_sink


@dataclass
class PruneReport:
    """Outcome of a pruning pass."""

    attempted: int = 0
    removed: int = 0
    kept: int = 0
    #: Undo trials accepted by static taint reachability alone (no replay).
    static_accepted: int = 0
    elapsed: float = 0.0
    removed_log: List[str] = field(default_factory=list)

    def row(self) -> str:
        row = (
            f"pruning: removed {self.removed}/{self.attempted} refinements "
            f"in {self.elapsed:.2f}s"
        )
        if self.static_accepted:
            row += f" ({self.static_accepted} accepted without replay)"
        return row


def _blocks_all(
    task: TaintVerificationTask,
    scheme: TaintScheme,
    counterexamples: Sequence[Counterexample],
) -> bool:
    """Does ``scheme`` keep every counterexample's sink untainted?

    All counterexamples replay bit-parallel in one pass (one lane per
    witness), recording only the sink taint signals the check reads.
    """
    from repro.formal.counterexample import replay_batch

    design = instrument(task.circuit, scheme, task.sources)
    record = {design.taint_name[sink] for sink in task.sinks
              if design.taint_name.get(sink) in design.circuit.signals}
    waveforms = replay_batch(design.circuit, list(counterexamples),
                             record=sorted(record))
    for waveform in waveforms:
        if _tainted_sink(design, waveform, task.sinks, waveform.length - 1):
            return False
    return True


_RegionKey = Tuple[FrozenSet[str], FrozenSet[str]]


def _statically_clean(
    task: TaintVerificationTask,
    scheme: TaintScheme,
    cache: Dict[_RegionKey, object],
) -> bool:
    """All sinks unreachable in the ever-tainted structural closure?

    The closure over-approximates every instrumented replay (taint is
    never generated outside the source set), so a clean answer accepts
    the undo trial without simulating a single counterexample.  It
    depends only on the scheme's region structure — cell options and
    register granularities change *precision*, not the propagation
    edges — so one closure is shared by every trial with the same
    blackbox/custom-module sets.
    """
    from repro.analyze.ift import taint_reachability

    key: _RegionKey = (
        frozenset(scheme.blackboxes),
        frozenset(scheme.custom_modules),
    )
    reach = cache.get(key)
    if reach is None:
        reach = taint_reachability(task.circuit, scheme, task.sources)
        cache[key] = reach
    return not reach.reachable(task.sinks)


def prune_refinements(
    task: TaintVerificationTask,
    scheme: TaintScheme,
    counterexamples: Sequence[Counterexample],
    time_limit: Optional[float] = None,
    use_static: bool = True,
) -> Tuple[TaintScheme, PruneReport]:
    """Remove refinements that are no longer needed.

    Args:
        task: the verification task the scheme was refined for.
        scheme: the refined scheme (not mutated).
        counterexamples: the spurious counterexamples the CEGAR loop
            eliminated (``result.stats.eliminated``).
        use_static: accept undo trials whose sinks are provably
            unreachable in the structural taint closure without
            replaying any counterexample.

    Returns the pruned scheme and a report.  With no counterexamples to
    re-check the scheme is returned unchanged (nothing can be validated).
    """
    started = time.monotonic()
    report = PruneReport()
    current = scheme.copy(name=f"{scheme.name}-pruned")
    if not counterexamples:
        report.elapsed = time.monotonic() - started
        return current, report

    initial_blackboxes = set(task.initial_scheme().blackboxes)
    reach_cache: Dict[_RegionKey, object] = {}

    def trial_blocks(trial: TaintScheme) -> bool:
        if use_static and _statically_clean(task, trial, reach_cache):
            report.static_accepted += 1
            return True
        return _blocks_all(task, trial, counterexamples)

    def out_of_time() -> bool:
        return time_limit is not None and time.monotonic() - started > time_limit

    # Undo candidates, most recent first (later refinements tend to be
    # closer to the source and to subsume earlier ones).
    cell_names = list(current.cell_options)
    for cell_name in reversed(cell_names):
        if out_of_time():
            break
        report.attempted += 1
        trial = current.copy()
        removed_option = trial.cell_options.pop(cell_name)
        if trial_blocks(trial):
            current = trial
            report.removed += 1
            report.removed_log.append(f"cell {cell_name} ({removed_option})")
        else:
            report.kept += 1

    for reg_name in list(current.register_granularity):
        if out_of_time():
            break
        report.attempted += 1
        trial = current.copy()
        del trial.register_granularity[reg_name]
        if trial_blocks(trial):
            current = trial
            report.removed += 1
            report.removed_log.append(f"register {reg_name}")
        else:
            report.kept += 1

    # Re-close opened blackboxes whose interior refinements all vanished.
    for module in sorted(initial_blackboxes - current.blackboxes):
        if out_of_time():
            break
        report.attempted += 1
        trial = current.copy()
        trial.blackboxes.add(module)
        if trial_blocks(trial):
            current = trial
            report.removed += 1
            report.removed_log.append(f"re-blackbox {module}")
        else:
            report.kept += 1

    report.elapsed = time.monotonic() - started
    return current, report

"""Unit tests for CEGAR loop components: the simulation prefilter,
instrument_task, and result/statistics plumbing."""

import random

import pytest

from repro.hdl import ModuleBuilder
from repro.taint import TaintSources
from repro.cegar import CegarConfig, CegarStatus, TaintVerificationTask, run_compass
from repro.cegar.loop import instrument_task, simulate_for_counterexample


def _leaky_task():
    b = ModuleBuilder("leaky")
    sel = b.input("sel", 1)
    sec = b.reg("secret", 4)
    sec.drive(sec)
    pub = b.reg("pub", 4)
    pub.drive(pub)
    b.output("sink", b.mux(sel, sec, pub))
    return TaintVerificationTask(
        name="leaky", circuit=b.build(),
        sources=TaintSources(registers={"secret": -1}),
        sinks=("sink",),
        symbolic_registers=frozenset({"secret", "pub"}),
    )


def _safe_task():
    b = ModuleBuilder("safe")
    sel = b.input("sel", 1)
    sec = b.reg("secret", 4)
    sec.drive(sec)
    pub = b.reg("pub", 4)
    pub.drive(pub)
    b.output("sink", b.mux(sel, pub, pub))
    return TaintVerificationTask(
        name="safe", circuit=b.build(),
        sources=TaintSources(registers={"secret": -1}),
        sinks=("sink",),
        symbolic_registers=frozenset({"secret", "pub"}),
    )


class TestSimulationPrefilter:
    def test_finds_violation_on_leaky_design(self):
        task = _leaky_task()
        design, prop = instrument_task(task, task.initial_scheme())
        cex = simulate_for_counterexample(task, design, prop, trials=64,
                                          depth=6, rng=random.Random(0))
        assert cex is not None
        # The counterexample must replay to a tainted sink.
        wf = cex.replay(design.circuit)
        assert wf.value(design.taint_name["sink"], wf.length - 1) != 0

    def test_prefers_shallow_counterexamples(self):
        task = _leaky_task()
        design, prop = instrument_task(task, task.initial_scheme())
        cex = simulate_for_counterexample(task, design, prop, trials=64,
                                          depth=12, rng=random.Random(0))
        assert cex.length <= 3

    def test_no_violation_on_clean_design(self):
        task = _safe_task()
        from repro.taint import cellift_scheme

        design, prop = instrument_task(task, cellift_scheme())
        cex = simulate_for_counterexample(task, design, prop, trials=32,
                                          depth=6, rng=random.Random(0))
        assert cex is None

    def test_sampler_is_used(self):
        calls = []

        def sampler(rng, depth):
            calls.append(depth)
            return {"secret": 5, "pub": 1}, [{"sel": 1}] * depth

        task = _leaky_task()
        task = TaintVerificationTask(
            name=task.name, circuit=task.circuit, sources=task.sources,
            sinks=task.sinks, symbolic_registers=task.symbolic_registers,
            stimulus_sampler=sampler,
        )
        design, prop = instrument_task(task, task.initial_scheme())
        cex = simulate_for_counterexample(task, design, prop, trials=4,
                                          depth=5, rng=random.Random(0))
        assert calls and calls[0] == 5
        assert cex is not None
        assert cex.inputs[0]["sel"] == 1


class TestInstrumentTask:
    def test_monitors_created(self):
        task = _leaky_task()
        design, prop = instrument_task(task, task.initial_scheme())
        assert prop.bad == "__compass_bad"
        assert prop.bad in design.circuit.signals
        assert prop.symbolic_registers == task.symbolic_registers

    def test_assumption_monitors(self):
        b = ModuleBuilder("t")
        cond = b.input("cond", 1)
        sec = b.reg("secret", 4)
        sec.drive(sec)
        b.output("sink", sec)
        b.output("obs", sec)
        task = TaintVerificationTask(
            name="t", circuit=b.build(),
            sources=TaintSources(registers={"secret": -1}),
            sinks=("sink",),
            clean_assumptions=("obs",),
            gated_clean_assumptions=(("cond", "obs"),),
        )
        design, prop = instrument_task(task, task.initial_scheme())
        assert "__compass_clean" in prop.assumptions
        assert "__compass_gated_clean" in prop.assumptions


class TestLoopOutcomes:
    def test_mc_disabled_mode_stops_at_bound(self):
        task = _safe_task()
        result = run_compass(task, CegarConfig(mc_enabled=False, sim_trials=16,
                                               sim_depth=6, seed=0,
                                               exact_validation=False))
        assert result.status is CegarStatus.BOUND_REACHED

    def test_budget_exhaustion_reported(self):
        task = _leaky_task()
        # 0 refinements allowed: the first spurious/real cex cannot be
        # processed -> REAL_LEAK (this design truly leaks) is still fine,
        # so use a max_counterexamples=0 config on the safe task instead.
        safe = _safe_task()
        result = run_compass(safe, CegarConfig(max_counterexamples=0,
                                               max_bound=4, use_induction=False,
                                               seed=0))
        assert result.status in (CegarStatus.BUDGET_EXHAUSTED,
                                 CegarStatus.BOUND_REACHED)

    def test_eliminated_counterexamples_recorded(self):
        result = run_compass(_safe_task(),
                             CegarConfig(max_bound=5, induction_max_k=5, seed=0))
        assert result.secure
        assert len(result.stats.eliminated) == result.stats.counterexamples_eliminated

    def test_real_leak_short_circuits(self):
        result = run_compass(_leaky_task(),
                             CegarConfig(max_bound=5, induction_max_k=5, seed=0))
        assert result.status is CegarStatus.REAL_LEAK
        assert result.leak is not None

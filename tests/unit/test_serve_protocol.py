"""The job daemon's wire protocol and job handlers (repro.serve)."""

import json

import pytest

from repro.hdl import ModuleBuilder
from repro.hdl.serialize import circuit_to_dict
from repro.serve import (
    PROTOCOL_VERSION,
    JobError,
    ProtocolError,
    decode_message,
    encode_message,
    job_digest,
    run_job,
)


def _safe_machine(width=4):
    b = ModuleBuilder("safe")
    c = b.reg("cnt", width)
    c.drive(c)
    b.output("bad", c.eq(5))
    return b.build()


def _solve_job(**config):
    return {
        "kind": "solve",
        "circuit": circuit_to_dict(_safe_machine()),
        "prop": {"bad": "bad"},
        "config": dict({"jobs": 1, "max_bound": 6}, **config),
    }


class TestWireProtocol:
    def test_round_trip(self):
        msg = {"type": "submit", "id": 3, "job": {"kind": "ping"}}
        line = encode_message(msg)
        assert line.endswith(b"\n")
        decoded = decode_message(line)
        assert decoded["type"] == "submit"
        assert decoded["id"] == 3
        assert decoded["v"] == PROTOCOL_VERSION

    def test_version_is_checked_exactly(self):
        line = json.dumps({"v": PROTOCOL_VERSION + 1,
                           "type": "ping"}).encode() + b"\n"
        with pytest.raises(ProtocolError, match="protocol version"):
            decode_message(line)
        with pytest.raises(ProtocolError, match="protocol version"):
            decode_message(json.dumps({"type": "ping"}).encode())

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError, match="not a JSON message"):
            decode_message(b"\xff\xfe not json")
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_message(b"[1, 2, 3]")
        line = json.dumps({"v": PROTOCOL_VERSION}).encode()
        with pytest.raises(ProtocolError, match="no 'type'"):
            decode_message(line)

    def test_oversized_message_rejected(self):
        from repro.serve.protocol import MAX_MESSAGE

        with pytest.raises(ProtocolError, match="too large"):
            decode_message(b"x" * (MAX_MESSAGE + 1))


class TestClientReadLoop:
    def test_idless_error_reply_is_terminal(self):
        """The daemon replies to an undecodable/oversized line with an
        ``error`` carrying no id; the client's submit loop must surface
        it (as ServeUnavailable, so the caller falls back to local
        execution) instead of waiting forever for a reply with its id."""
        import socket

        from repro.serve.client import ServeClient, ServeUnavailable

        left, right = socket.socketpair(socket.AF_UNIX,
                                        socket.SOCK_STREAM)
        try:
            # Queue the daemon's reply up front: small enough to sit in
            # the socketpair buffer, so no reader thread is needed.
            right.sendall(encode_message(
                {"type": "error", "error": "message too large"}))
            client = ServeClient(left)
            with pytest.raises(ServeUnavailable, match="too large"):
                client.submit({"kind": "ping"})
        finally:
            left.close()
            right.close()

    def test_progress_for_another_id_is_still_skipped(self):
        import socket

        from repro.serve.client import ServeClient

        left, right = socket.socketpair(socket.AF_UNIX,
                                        socket.SOCK_STREAM)
        try:
            right.sendall(
                encode_message({"type": "progress", "id": 99,
                                "elapsed": 0.1, "events": 1,
                                "counters": {}})
                + encode_message({"type": "result", "id": 0, "ok": True,
                                  "result": {"pong": True},
                                  "dedup": False, "elapsed": 0.2}))
            client = ServeClient(left)
            reply = client.submit({"kind": "ping"})
            assert reply["result"] == {"pong": True}
        finally:
            left.close()
            right.close()


class TestJobDigest:
    def test_stable_under_key_order(self):
        a = {"kind": "lint", "core": {"name": "Sodor", "xlen": 4}}
        b = {"core": {"xlen": 4, "name": "Sodor"}, "kind": "lint"}
        assert job_digest(a) == job_digest(b)

    def test_faults_change_identity(self):
        """A faulted job must never dedup against its clean twin."""
        clean = {"kind": "verify", "core": {"name": "Sodor"}}
        faulted = dict(clean, faults={"specs": [
            {"kind": "kill_worker", "engine": "bmc"}]})
        assert job_digest(clean) != job_digest(faulted)

    def test_unserializable_job_is_a_job_error(self):
        with pytest.raises(JobError, match="not JSON-serializable"):
            job_digest({"kind": "solve", "circuit": object()})


class TestRunJobErrors:
    def test_unknown_kind(self):
        with pytest.raises(JobError, match="unknown job kind"):
            run_job({"kind": "espresso"})
        with pytest.raises(JobError, match="must be an object"):
            run_job(["kind", "solve"])

    def test_unknown_core(self):
        with pytest.raises(JobError, match="unknown core"):
            run_job({"kind": "lint", "core": {"name": "Pentium"}})

    def test_unknown_workload(self):
        with pytest.raises(JobError, match="unknown workload"):
            run_job({"kind": "simulate", "core": "Rocket",
                     "workload": "crysis"})

    def test_unknown_config_field_rejected(self):
        job = _solve_job()
        job["config"]["rm_rf"] = True
        with pytest.raises(JobError, match="unknown solve config field"):
            run_job(job)

    def test_bad_fault_spec_rejected(self):
        job = _solve_job()
        job["faults"] = {"specs": [{"kind": "meteor_strike"}]}
        with pytest.raises(JobError, match="bad fault spec"):
            run_job(job)
        job["faults"] = {"specs": [{"kind": "kill_worker", "engine": "bmc",
                                    "payload": "x"}]}
        with pytest.raises(JobError, match="unknown fault spec fields"):
            run_job(job)

    def test_bad_circuit_document(self):
        with pytest.raises(JobError, match="must be an object"):
            run_job({"kind": "solve", "circuit": "nope",
                     "prop": {"bad": "bad"}})

    def test_prop_needs_bad_signal(self):
        job = _solve_job()
        job["prop"] = {"name": "p"}
        with pytest.raises(JobError, match="'bad' signal"):
            run_job(job)


class TestRunJobHappyPaths:
    def test_solve_round_trips_through_json(self):
        """The whole job AND result must survive a JSON round-trip:
        that is exactly what the socket does to them."""
        job = json.loads(json.dumps(_solve_job()))
        result = run_job(job)
        assert result["kind"] == "solve"
        assert result["status"] == "proved"
        assert result["counterexample"] is None
        assert any(r["winner"] for r in result["reports"])
        json.dumps(result)  # must be wire-clean

    def test_solve_violation_carries_counterexample(self):
        b = ModuleBuilder("unsafe")
        c = b.reg("cnt", 4)
        c.drive(c + 1)
        b.output("bad", c.eq(3))
        job = {"kind": "solve", "circuit": circuit_to_dict(b.build()),
               "prop": {"bad": "bad"}, "config": {"jobs": 1, "max_bound": 8}}
        result = run_job(job)
        assert result["status"] == "counterexample"
        cex = result["counterexample"]
        assert cex is not None and cex["length"] >= 1
        json.dumps(result)

    def test_solve_consults_the_cache(self):
        from repro.formal import SolveCache

        cache = SolveCache()
        cold = run_job(_solve_job(), cache=cache)
        warm = run_job(_solve_job(), cache=cache)
        assert cold["status"] == warm["status"] == "proved"
        assert not cold["cache_hit"]
        assert warm["cache_hit"]

    def test_deadline_caps_time_limit(self):
        """A submitted deadline must tighten, never widen, the job's
        own budget."""
        job = _solve_job(time_limit=3600.0)
        result = run_job(job, deadline=0.0)
        # Zero remaining budget: the portfolio gives up immediately
        # rather than out-waiting the deadline.
        assert result["status"] in ("unknown", "bound_reached", "proved")

    def test_lint_job(self):
        result = run_job({"kind": "lint",
                          "core": {"name": "Sodor", "xlen": 4, "imem": 4,
                                   "dmem": 4, "secret_words": 1}})
        assert result["kind"] == "lint"
        assert result["report"]["schema"] == "repro-lint/v1"
        json.dumps(result)

    def test_simulate_job_lanes(self):
        result = run_job({"kind": "simulate", "core": "Sodor",
                          "workload": "median", "lanes": 2, "seed": 7})
        assert result["lanes"] == 2
        assert len(result["cycles"]) == 2
        json.dumps(result)

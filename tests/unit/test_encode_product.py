import random

import pytest

from repro.hdl import ModuleBuilder, lower_to_gates
from repro.sim import Simulator
from repro.formal import (
    BmcStatus,
    SafetyProperty,
    Unroller,
    bounded_model_check,
    rename_circuit,
    self_composition,
)
from repro.formal.sat.solver import Solver, SolveStatus

import sys
import os

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
from conftest import random_cell_circuit, random_stimulus  # noqa: E402


class TestEncodeViaUnroller:
    """The encoder is validated by checking SAT models against simulation."""

    @pytest.mark.parametrize("seed", range(6))
    def test_frame_encoding_matches_simulation(self, seed):
        circ = random_cell_circuit(seed)
        lowered = lower_to_gates(circ)
        unroller = Unroller(lowered)
        frames = 4
        unroller.ensure_depth(frames)
        stim = random_stimulus(seed + 3, frames)
        # Pin the inputs to the stimulus, solve, and compare every output
        # value with the reference simulator.
        for t, frame in enumerate(stim):
            for name, value in frame.items():
                unroller.constrain_word(t, name, value)
        result = unroller.solver.solve()
        assert result.status is SolveStatus.SAT
        sim = Simulator(circ)
        for t, frame in enumerate(stim):
            expected = sim.step(frame)
            for out in circ.outputs:
                got = unroller.word_value(t, out.name, result.model)
                assert got == expected[out.name], (t, out.name)

    def test_register_initial_values(self):
        b = ModuleBuilder("t")
        r = b.reg("r", 4, reset=9)
        r.drive(r)
        b.output("o", r)
        lowered = lower_to_gates(b.build())
        unroller = Unroller(lowered)
        unroller.ensure_depth(2)
        result = unroller.solver.solve()
        assert unroller.word_value(0, "o", result.model) == 9
        assert unroller.word_value(1, "o", result.model) == 9

    def test_symbolic_registers_are_free(self):
        b = ModuleBuilder("t")
        r = b.reg("r", 4, reset=0)
        r.drive(r)
        b.output("o", r)
        lowered = lower_to_gates(b.build())
        unroller = Unroller(lowered, symbolic_registers={"r"})
        unroller.ensure_depth(1)
        # force o == 13 at frame 0: only satisfiable because r is free
        unroller.constrain_word(0, "o", 13)
        assert unroller.solver.solve().status is SolveStatus.SAT

    def test_assume_signal(self):
        b = ModuleBuilder("t")
        a = b.input("a", 1)
        b.output("o", a)
        lowered = lower_to_gates(b.build())
        unroller = Unroller(lowered)
        unroller.ensure_depth(1)
        unroller.assume_signal(0, "o", 0)
        lit = unroller.lit_of_bit(0, "a")
        assert unroller.solver.solve(assumptions=[lit]).status is SolveStatus.UNSAT

    def test_state_uniqueness(self):
        b = ModuleBuilder("t")
        r = b.reg("r", 2)
        r.drive(r)  # state never changes
        b.output("o", r)
        lowered = lower_to_gates(b.build())
        unroller = Unroller(lowered, symbolic_all=True)
        unroller.ensure_depth(2)
        unroller.add_state_uniqueness(0, 1)
        # holding register means frames 0 and 1 always equal -> UNSAT
        assert unroller.solver.solve().status is SolveStatus.UNSAT


class TestRenameAndProduct:
    def test_rename_prefixes_everything(self):
        circ = random_cell_circuit(0)
        renamed = rename_circuit(circ, "c1")
        renamed.validate()
        assert all(s.name.startswith("c1.") for s in renamed.signals.values())

    def test_rename_keeps_shared_inputs(self):
        circ = random_cell_circuit(0)
        renamed = rename_circuit(circ, "c1", shared_inputs={"in0"})
        assert "in0" in renamed.signals
        assert "c1.in1" in renamed.signals

    def test_product_shared_input_feeds_both(self):
        b = ModuleBuilder("t")
        a = b.input("a", 4)
        b.output("o", a + 1)
        prod = self_composition(b.build(), shared_inputs={"a"})
        bad = prod.any_differs(["o"])
        prod.circuit.validate()
        res = bounded_model_check(prod.circuit, SafetyProperty("p", bad), 2)
        assert res.status is BmcStatus.BOUND_REACHED  # same input -> same output

    def test_product_detects_secret_flow(self):
        b = ModuleBuilder("t")
        sel = b.input("sel", 1)
        sec = b.reg("secret", 4)
        sec.drive(sec)
        b.output("o", b.mux(sel, sec, b.const(0, 4)))
        prod = self_composition(b.build(), shared_inputs={"sel"})
        bad = prod.any_differs(["o"])
        prop = SafetyProperty(
            "p", bad, symbolic_registers=frozenset({"c1.secret", "c2.secret"})
        )
        res = bounded_model_check(prod.circuit, prop, 2)
        assert res.status is BmcStatus.COUNTEREXAMPLE

    def test_equal_registers_initially_blocks_public_divergence(self):
        b = ModuleBuilder("t")
        pub = b.reg("pub", 4)
        pub.drive(pub)
        b.output("o", pub)
        prod = self_composition(b.build())
        bad = prod.any_differs(["o"])
        eq = prod.equal_registers_initially(["pub"])
        prop = SafetyProperty(
            "p", bad, init_assumptions=(eq,),
            symbolic_registers=frozenset({"c1.pub", "c2.pub"}),
        )
        res = bounded_model_check(prod.circuit, prop, 3)
        assert res.status is BmcStatus.BOUND_REACHED

    def test_unknown_shared_input_rejected(self):
        circ = random_cell_circuit(0)
        with pytest.raises(ValueError):
            self_composition(circ, shared_inputs={"nope"})

"""Builder edge cases: odd memory depths, width checking, scope nesting."""

import pytest

from repro.hdl import ModuleBuilder
from repro.hdl.circuit import CircuitError
from repro.sim import Simulator


class TestMemoryEdges:
    def test_non_power_of_two_depth_wraps(self):
        b = ModuleBuilder("t")
        addr = b.input("addr", 2)
        mem = b.mem("m", 3, 8, init=[10, 20, 30])
        b.output("rd", mem.read(addr))
        sim = Simulator(b.build())
        assert sim.step({"addr": 0})["rd"] == 10
        assert sim.step({"addr": 2})["rd"] == 30
        assert sim.step({"addr": 3})["rd"] == 10  # wraps to index 0

    def test_narrow_address_zero_extended(self):
        b = ModuleBuilder("t")
        addr = b.input("addr", 1)
        mem = b.mem("m", 4, 4, init=[1, 2, 3, 4])
        b.output("rd", mem.read(addr))
        sim = Simulator(b.build())
        assert sim.step({"addr": 1})["rd"] == 2

    def test_init_length_checked(self):
        b = ModuleBuilder("t")
        with pytest.raises(CircuitError):
            b.mem("m", 4, 8, init=[1, 2])

    def test_depth_one_memory(self):
        b = ModuleBuilder("t")
        addr = b.input("addr", 1)
        data = b.input("data", 8)
        wen = b.input("wen", 1)
        mem = b.mem("m", 1, 8, init=[42])
        b.output("rd", mem.read(addr))
        mem.write(addr, data, wen)
        sim = Simulator(b.build())
        assert sim.step({"addr": 0, "data": 0, "wen": 0})["rd"] == 42
        sim.step({"addr": 0, "data": 7, "wen": 1})
        assert sim.step({"addr": 1, "data": 0, "wen": 0})["rd"] == 7

    def test_word_access_is_register(self):
        b = ModuleBuilder("t")
        mem = b.mem("m", 2, 4, init=[9, 5])
        b.output("w0", mem.word(0))
        sim = Simulator(b.build())
        assert sim.step({})["w0"] == 9


class TestWidthChecking:
    def test_mux_arm_width_mismatch(self):
        b = ModuleBuilder("t")
        s = b.input("s", 1)
        a = b.input("a", 4)
        c = b.input("c", 5)
        with pytest.raises(CircuitError):
            b.mux(s, a, c)

    def test_mux_wide_selector_rejected(self):
        b = ModuleBuilder("t")
        s = b.input("s", 2)
        a = b.input("a", 4)
        with pytest.raises(CircuitError):
            b.mux(s, a, a)

    def test_mux_two_int_arms_rejected(self):
        b = ModuleBuilder("t")
        s = b.input("s", 1)
        with pytest.raises(CircuitError):
            b.mux(s, 1, 2)

    def test_register_next_width_mismatch(self):
        b = ModuleBuilder("t")
        r = b.reg("r", 4)
        v = b.input("v", 5)
        with pytest.raises(CircuitError):
            r.drive(v)

    def test_constant_too_wide(self):
        b = ModuleBuilder("t")
        with pytest.raises(CircuitError):
            b.const(16, 4)

    def test_negative_constant_wraps(self):
        b = ModuleBuilder("t")
        b.output("o", b.const(-1, 4))
        assert Simulator(b.build()).step({})["o"] == 0xF

    def test_slice_reversed_bounds(self):
        b = ModuleBuilder("t")
        a = b.input("a", 8)
        with pytest.raises(ValueError):
            a[2:5]


class TestScopeNesting:
    def test_deeply_nested_paths(self):
        b = ModuleBuilder("t")
        with b.scope("a"):
            with b.scope("b"):
                with b.scope("c"):
                    r = b.reg("r", 1)
                    r.drive(r)
        circ = b.build()
        assert "a.b.c.r" in circ.signals
        assert circ.signal("a.b.c.r").module == "a.b.c"
        assert {"a", "a.b", "a.b.c"} <= circ.module_paths() | {"a", "a.b"}

    def test_scope_restored_after_exception(self):
        b = ModuleBuilder("t")
        with pytest.raises(RuntimeError):
            with b.scope("m"):
                raise RuntimeError("boom")
        assert b.current_module == ""

    def test_at_scope_restores(self):
        b = ModuleBuilder("t")
        with b.scope("outer"):
            with b.at_scope("elsewhere"):
                assert b.current_module == "elsewhere"
            assert b.current_module == "outer"

    def test_output_constant_needs_width(self):
        b = ModuleBuilder("t")
        with pytest.raises(CircuitError):
            b.output("o", 3)
        b.output("ok", 3, width=4)
        assert Simulator(b.build()).step({})["ok"] == 3

"""CLI smoke tests (fast subcommands only; heavy flows are covered by
the integration suite and examples)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("verify", "leak-check", "overhead", "simulate",
                        "export", "tables"):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_core(self):
        with pytest.raises(SystemExit):
            main(["verify", "--core", "Pentium"])


class TestTables:
    def test_tables_prints_both(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "CellIFT" in out
        assert "Compass" in out


class TestSimulate:
    def test_runs_workload_self_checked(self, capsys):
        assert main(["simulate", "--core", "Sodor", "--workload", "median"]) == 0
        out = capsys.readouterr().out
        assert "median on Sodor" in out
        assert "self-checked" in out


class TestExport:
    def test_verilog_export(self, tmp_path):
        out_file = tmp_path / "core.v"
        code = main(["export", "--core", "Sodor", "--xlen", "4", "--imem", "4",
                     "--dmem", "4", "--secret-words", "1",
                     "--format", "verilog", "-o", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("module")
        assert "endmodule" in text

    def test_json_export_reloads(self, tmp_path):
        from repro.hdl.serialize import load

        out_file = tmp_path / "core.json"
        code = main(["export", "--core", "Sodor", "--xlen", "4", "--imem", "4",
                     "--dmem", "4", "--secret-words", "1",
                     "--format", "json", "-o", str(out_file), "--no-shadow"])
        assert code == 0
        with open(out_file) as handle:
            circuit = load(handle)
        assert circuit.registers
        json.loads(out_file.read_text())  # valid JSON document

"""CLI smoke tests (fast subcommands only; heavy flows are covered by
the integration suite and examples)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("verify", "leak-check", "overhead", "simulate",
                        "export", "lint", "tables"):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_core(self):
        with pytest.raises(SystemExit):
            main(["verify", "--core", "Pentium"])


class TestTables:
    def test_tables_prints_both(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "CellIFT" in out
        assert "Compass" in out


class TestSimulate:
    def test_runs_workload_self_checked(self, capsys):
        assert main(["simulate", "--core", "Sodor", "--workload", "median"]) == 0
        out = capsys.readouterr().out
        assert "median on Sodor" in out
        assert "self-checked" in out


class TestLint:
    def test_selftest_passes(self, capsys):
        assert main(["lint", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "PASS unsound custom handler" in out
        assert "PASS combinational loop" in out

    def test_core_lints_clean(self, capsys):
        assert main(["lint", "Sodor", "--min-severity", "error"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output(self, capsys):
        assert main(["lint", "Sodor", "--json", "--no-semantic"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counts"]["error"] == 0
        assert doc["circuit"] == "sodor"

    def test_netlist_file_with_loop_exits_nonzero(self, tmp_path, capsys):
        from repro.hdl import ModuleBuilder
        from repro.hdl.serialize import circuit_to_dict

        b = ModuleBuilder("t")
        a = b.input("a", 1)
        b.output("o", a & a)
        doc = circuit_to_dict(b.build())
        # Rewire the AND cell to consume its own output: a loop.
        cell = next(c for c in doc["cells"] if c["op"] == "and")
        cell["ins"] = [cell["out"], cell["out"]]
        path = tmp_path / "loop.json"
        path.write_text(json.dumps(doc))
        assert main(["lint", str(path)]) == 1
        assert "comb-loop" in capsys.readouterr().out

    def test_waive_and_disable_flags(self, capsys):
        code = main(["lint", "Sodor", "--disable", "dead-logic",
                     "--waive", "stuck-register:*", "--no-semantic"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0 warning(s)" in out

    def test_missing_design_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert main(["lint", "NoSuchCoreOrFile"]) == 2

    def test_malformed_waive_is_usage_error(self, capsys):
        assert main(["lint", "Sodor", "--waive", "no-glob-part"]) == 2
        assert "RULE:GLOB" in capsys.readouterr().err

    def test_corrupt_netlist_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("not json{")
        assert main(["lint", str(path)]) == 2
        assert "not a readable netlist" in capsys.readouterr().err


class TestExport:
    def test_verilog_export(self, tmp_path):
        out_file = tmp_path / "core.v"
        code = main(["export", "--core", "Sodor", "--xlen", "4", "--imem", "4",
                     "--dmem", "4", "--secret-words", "1",
                     "--format", "verilog", "-o", str(out_file)])
        assert code == 0
        text = out_file.read_text()
        assert text.startswith("module")
        assert "endmodule" in text

    def test_json_export_reloads(self, tmp_path):
        from repro.hdl.serialize import load

        out_file = tmp_path / "core.json"
        code = main(["export", "--core", "Sodor", "--xlen", "4", "--imem", "4",
                     "--dmem", "4", "--secret-words", "1",
                     "--format", "json", "-o", str(out_file), "--no-shadow"])
        assert code == 0
        with open(out_file) as handle:
            circuit = load(handle)
        assert circuit.registers
        json.loads(out_file.read_text())  # valid JSON document

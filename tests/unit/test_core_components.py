"""Unit tests for the shared core building blocks."""

import pytest

from repro.hdl import ModuleBuilder
from repro.sim import Simulator
from repro.cores.common import (
    Btb,
    CoreConfig,
    MulDiv,
    Regfile,
    alu,
    decode_instruction,
    resize_signed,
)
from repro.cores.isa import AluFn, Instr, Op, encode


class TestCoreConfig:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            CoreConfig(imem_depth=6)
        with pytest.raises(ValueError):
            CoreConfig(dmem_depth=12)

    def test_secret_words_bounds(self):
        with pytest.raises(ValueError):
            CoreConfig(dmem_depth=8, secret_words=8)
        with pytest.raises(ValueError):
            CoreConfig(secret_words=0)

    def test_derived_widths(self):
        cfg = CoreConfig(imem_depth=16, dmem_depth=8)
        assert cfg.pc_width == 4
        assert cfg.dmem_addr_width == 3
        assert cfg.secret_addresses == (6, 7)

    def test_presets(self):
        assert CoreConfig.formal().xlen == 8
        sim = CoreConfig.simulation()
        assert sim.xlen == 16 and sim.dmem_depth == 32


class TestRegfile:
    def _build(self):
        cfg = CoreConfig()
        b = ModuleBuilder("t")
        raddr = b.input("raddr", 3)
        waddr = b.input("waddr", 3)
        wdata = b.input("wdata", 8)
        wen = b.input("wen", 1)
        rf = Regfile(b, cfg)
        b.output("rdata", rf.read(raddr))
        rf.write(waddr, wdata, wen)
        return Simulator(b.build())

    def test_read_after_write(self):
        sim = self._build()
        sim.step({"raddr": 0, "waddr": 3, "wdata": 99, "wen": 1})
        out = sim.step({"raddr": 3, "waddr": 0, "wdata": 0, "wen": 0})
        assert out["rdata"] == 99

    def test_r0_reads_zero_even_after_write(self):
        sim = self._build()
        sim.step({"raddr": 0, "waddr": 0, "wdata": 55, "wen": 1})
        out = sim.step({"raddr": 0, "waddr": 0, "wdata": 0, "wen": 0})
        assert out["rdata"] == 0

    def test_write_disabled_holds(self):
        sim = self._build()
        sim.step({"raddr": 0, "waddr": 2, "wdata": 7, "wen": 1})
        sim.step({"raddr": 0, "waddr": 2, "wdata": 9, "wen": 0})
        out = sim.step({"raddr": 2, "waddr": 0, "wdata": 0, "wen": 0})
        assert out["rdata"] == 7


class TestAlu:
    def _run(self, fn, a, b_val, xlen=8):
        cfg = CoreConfig(xlen=xlen)
        b = ModuleBuilder("t")
        ai = b.input("a", xlen)
        bi = b.input("b", xlen)
        f = b.input("f", 3)
        b.output("o", alu(b, cfg, f, ai, bi))
        sim = Simulator(b.build())
        return sim.step({"a": a, "b": b_val, "f": int(fn)})["o"]

    @pytest.mark.parametrize("fn,a,b,expected", [
        (AluFn.ADD, 200, 100, 44),
        (AluFn.SUB, 5, 9, 252),
        (AluFn.AND, 0xF0, 0x3C, 0x30),
        (AluFn.OR, 0xF0, 0x0C, 0xFC),
        (AluFn.XOR, 0xFF, 0x0F, 0xF0),
        (AluFn.SLT, 3, 9, 1),
        (AluFn.SLT, 9, 3, 0),
        (AluFn.SLL, 1, 3, 8),
        (AluFn.SRL, 0x80, 4, 8),
        (AluFn.SLL, 1, 200, 0),   # shift >= xlen
    ])
    def test_functions(self, fn, a, b, expected):
        assert self._run(fn, a, b) == expected


class TestMulDiv:
    def _build(self):
        cfg = CoreConfig()
        b = ModuleBuilder("t")
        start = b.input("start", 1)
        a = b.input("a", 8)
        bb = b.input("b", 8)
        md = MulDiv(b, cfg)
        stall, done, result = md.connect(start, a, bb)
        b.output("stall", stall)
        b.output("done", done)
        b.output("result", result)
        return Simulator(b.build())

    def _multiply(self, a, b_val, max_cycles=20):
        sim = self._build()
        for cycle in range(max_cycles):
            out = sim.step({"start": 1, "a": a, "b": b_val})
            if out["done"]:
                return out["result"], cycle
        raise AssertionError("multiplier never finished")

    @pytest.mark.parametrize("a,b", [(3, 5), (0, 9), (9, 0), (255, 255), (7, 1)])
    def test_products(self, a, b):
        result, _ = self._multiply(a, b)
        assert result == (a * b) & 0xFF

    def test_early_exit_latency_depends_on_b(self):
        _, fast = self._multiply(7, 1)
        _, slow = self._multiply(7, 0x80)
        assert slow > fast


class TestDecode:
    def _decode(self, instr):
        cfg = CoreConfig(imem_depth=16)
        b = ModuleBuilder("t")
        word = b.input("w", 16)
        dec = decode_instruction(b, word, cfg)
        for name in ("is_lw", "is_sw", "is_branch", "is_mul", "writes_rd"):
            b.output(name, getattr(dec, name))
        b.output("imm", dec.imm)
        b.output("branch_off", dec.branch_off)
        sim = Simulator(b.build())
        return sim.step({"w": encode(instr)})

    def test_load_classified(self):
        out = self._decode(Instr(Op.LW, rd=1, rs1=2, imm=-3))
        assert out["is_lw"] == 1 and out["is_sw"] == 0
        assert out["writes_rd"] == 1
        assert out["imm"] == (-3) & 0xFF

    def test_branch_offset_sign_extended(self):
        out = self._decode(Instr(Op.BNE, rs1=1, rs2=2, imm=-2))
        assert out["is_branch"] == 1
        assert out["branch_off"] == (-2) & 0xF  # pc_width == 4

    def test_store_does_not_write_rd(self):
        out = self._decode(Instr(Op.SW, rd=1, rs1=2, imm=0))
        assert out["writes_rd"] == 0

    def test_mul_flag(self):
        assert self._decode(Instr(Op.MUL, rd=1, rs1=2, rs2=3))["is_mul"] == 1


class TestBtb:
    def _build(self):
        cfg = CoreConfig(imem_depth=16)
        b = ModuleBuilder("t")
        pc = b.input("pc", 4)
        resolve = b.input("resolve", 1)
        rpc = b.input("rpc", 4)
        taken = b.input("taken", 1)
        target = b.input("target", 4)
        btb = Btb(b, cfg)
        hit, pred = btb.predict(pc)
        btb.update(resolve, rpc, taken, target)
        b.output("hit", hit)
        b.output("pred", pred)
        return Simulator(b.build())

    def test_learns_taken_branch(self):
        sim = self._build()
        idle = {"pc": 5, "resolve": 0, "rpc": 0, "taken": 0, "target": 0}
        assert sim.step(idle)["hit"] == 0
        sim.step({"pc": 5, "resolve": 1, "rpc": 5, "taken": 1, "target": 9})
        out = sim.step(idle)
        assert out["hit"] == 1 and out["pred"] == 9

    def test_not_taken_invalidates(self):
        sim = self._build()
        sim.step({"pc": 5, "resolve": 1, "rpc": 5, "taken": 1, "target": 9})
        sim.step({"pc": 5, "resolve": 1, "rpc": 5, "taken": 0, "target": 0})
        out = sim.step({"pc": 5, "resolve": 0, "rpc": 0, "taken": 0, "target": 0})
        assert out["hit"] == 0

    def test_tag_mismatch_misses(self):
        sim = self._build()
        sim.step({"pc": 0, "resolve": 1, "rpc": 5, "taken": 1, "target": 9})
        # pc=7 maps to the same entry (index pc&1) but tag differs
        out = sim.step({"pc": 7, "resolve": 0, "rpc": 0, "taken": 0, "target": 0})
        assert out["hit"] == 0


class TestResizeSigned:
    def test_extend_and_truncate(self):
        b = ModuleBuilder("t")
        v = b.input("v", 6)
        b.output("wide", resize_signed(b, v, 8))
        b.output("narrow", resize_signed(b, v, 3))
        sim = Simulator(b.build())
        out = sim.step({"v": 0b111110})  # -2 in 6 bits
        assert out["wide"] == 0b11111110
        assert out["narrow"] == 0b110
